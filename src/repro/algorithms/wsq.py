"""Chase-Lev and Cilk-THE work-stealing queues (paper §2, Table 2).

Both are written in the original publications' shape:

* Chase-Lev (SPAA'05): put/take at the tail, steal at the head, CAS on the
  head in both take (last-item race) and steal.  Note: we use the original
  restore-*after*-CAS take, not the paper's Fig. 1 simplification whose
  retry loop admits a non-linearizable history even under SC (see
  EXPERIMENTS.md, observation O4).
* Cilk's THE protocol (PLDI'98): take is optimistic with a locked slow
  path, steal is fully locked.  Famously *not* linearizable with a
  deterministic sequential spec, while still operation-level SC — the
  engine reproduces this as a ``cannot_fix`` outcome.
"""

from .base import AlgorithmBundle
from ..spec.sequential import WSQDequeSpec

_CHASE_LEV_SOURCE = """
// Chase-Lev work-stealing deque (original SPAA'05 structure).
const EMPTY = 0 - 1;
int H;              // head index (thieves CAS this)
int T;              // tail index (owner only)
int items[16];

void put(int task) {
  int t = T;
  items[t] = task;
  T = t + 1;
}

int take() {
  int t = T - 1;
  T = t;
  int h = H;
  if (t < h) {               // deque was empty
    T = h;
    return EMPTY;
  }
  int task = items[t];
  if (t > h) {
    return task;             // fast path: more than one item
  }
  if (!cas(&H, h, h + 1)) {  // last item: race the thieves
    task = EMPTY;
  }
  T = h + 1;
  return task;
}

int steal() {
  while (1) {
    int h = H;
    int t = T;
    if (h >= t) {
      return EMPTY;
    }
    int task = items[h];
    if (cas(&H, h, h + 1)) {
      return task;
    }
  }
  return EMPTY;
}

void thief1() { steal(); }
void thief2() { steal(); steal(); }

int client0() {
  put(10);
  int tid = fork(thief1);
  take();
  join(tid);
  return 0;
}

int client1() {
  put(11);
  put(12);
  int tid = fork(thief2);
  take();
  take();
  join(tid);
  return 0;
}

int client2() {
  int tid = fork(thief1);
  put(13);
  take();
  join(tid);
  return 0;
}

int client3() {
  put(14);
  int tid = fork(thief1);
  join(tid);
  take();
  return 0;
}

int client4() {
  put(15);
  put(16);
  put(17);
  int tid = fork(thief2);
  take();
  take();
  join(tid);
  return 0;
}

int done;
void thief_wait() {
  while (done == 0) {}
  steal();
}

int client5() {
  int tid = fork(thief_wait);
  put(18);
  done = 1;
  join(tid);
  take();
  return 0;
}

int client6() {
  int tid = fork(thief2);
  put(19);
  put(20);
  take();
  join(tid);
  return 0;
}
"""

CHASE_LEV = AlgorithmBundle(
    name="chase_lev",
    description="Chase-Lev work-stealing deque [7]: put/take at the tail, "
                "steal at the head, CAS in take and steal",
    source=_CHASE_LEV_SOURCE,
    entries=("client0", "client1", "client2", "client3", "client4",
             "client5", "client6"),
    operations=("put", "take", "steal"),
    seq_spec=WSQDequeSpec,
    supports=("memory_safety", "sc", "lin"),
    flush_prob={"tso": 0.1, "pso": 0.2},
    notes="Paper expectation (Table 3): SC needs F1 on TSO, F1+F2 on PSO; "
          "linearizability needs F1+F2 on TSO, F1+F2+F3 on PSO.",
)

_CILK_THE_SOURCE = """
// Cilk-5 THE work-stealing protocol (core of the Cilk runtime) [12].
const EMPTY = 0 - 1;
int H;              // head: only advanced by thieves (under lock)
int T;              // tail: owner only
int L;              // the THE lock
int items[16];

void put(int task) {
  int t = T;
  items[t] = task;
  T = t + 1;
}

int take() {
  int t = T - 1;
  T = t;                      // optimistic decrement
  int h = H;
  if (h > t) {                // conflict with a thief is possible
    T = t + 1;                // restore
    lock(&L);
    t = T - 1;
    T = t;
    h = H;
    if (h > t) {              // deque really is empty
      T = t + 1;
      unlock(&L);
      return EMPTY;
    }
    unlock(&L);
  }
  return items[t];
}

int steal() {
  lock(&L);
  int h = H;
  H = h + 1;                  // THE handshake: bump H before reading T
  int t = T;
  if (h + 1 > t) {
    H = h;                    // lost: back off
    unlock(&L);
    return EMPTY;
  }
  int task = items[h];
  unlock(&L);
  return task;
}

void thief1() { steal(); }
void thief2() { steal(); steal(); }

int client0() {
  put(10);
  int tid = fork(thief1);
  take();
  join(tid);
  return 0;
}

int client1() {
  put(11);
  put(12);
  int tid = fork(thief2);
  take();
  take();
  join(tid);
  return 0;
}

int client2() {
  int tid = fork(thief1);
  put(13);
  take();
  join(tid);
  return 0;
}

int client3() {
  put(14);
  int tid = fork(thief1);
  join(tid);
  take();
  return 0;
}

int client4() {
  put(15);
  put(16);
  put(17);
  int tid = fork(thief2);
  take();
  take();
  join(tid);
  return 0;
}

int done;
void thief_wait() {
  while (done == 0) {}
  steal();
}

int client5() {
  int tid = fork(thief_wait);
  put(18);
  done = 1;
  join(tid);
  take();
  return 0;
}

int client6() {
  int tid = fork(thief2);
  put(19);
  put(20);
  take();
  join(tid);
  return 0;
}
"""

CILK_THE = AlgorithmBundle(
    name="cilk_the",
    description="Cilk's THE work-stealing protocol [12]: optimistic take "
                "with a locked slow path, locked steal",
    source=_CILK_THE_SOURCE,
    entries=("client0", "client1", "client2", "client3", "client4",
             "client5", "client6"),
    operations=("put", "take", "steal"),
    seq_spec=WSQDequeSpec,
    supports=("memory_safety", "sc", "lin"),
    flush_prob={"tso": 0.1, "pso": 0.2},
    notes="Paper expectation: SC fences in put and take on TSO, plus steal "
          "on PSO; NOT linearizable with a deterministic sequential spec "
          "even under SC (engine reports cannot_fix).",
)
