"""Michael-Scott queues (PODC'96): two-lock (MS2) and non-blocking (MSN).

Both are linked-list queues with a dummy head node.  MS2 protects the two
ends with separate locks; with the paper's fenced lock/unlock treatment it
needs no additional fences on either model.  MSN is the classic lock-free
queue (CAS link-in, CAS tail swing, CAS head advance); on PSO the
node-initialisation stores can be overtaken by the publishing CAS, which
is the (enqueue, E3:E4) fence of Table 3.
"""

from .base import AlgorithmBundle
from ..spec.sequential import QueueSpec

_COMMON_CLIENTS = """
void consumer1() { dequeue(); }
void consumer2() { dequeue(); dequeue(); }
void producer1() { enqueue(31); }

int client0() {
  qinit();
  enqueue(10);
  int tid = fork(consumer1);
  enqueue(11);
  join(tid);
  dequeue();
  return 0;
}

int client1() {
  qinit();
  enqueue(12);
  enqueue(13);
  int tid = fork(consumer2);
  dequeue();
  join(tid);
  return 0;
}

int client2() {
  qinit();
  int tid = fork(producer1);
  enqueue(14);
  dequeue();
  dequeue();
  join(tid);
  return 0;
}

int client3() {
  qinit();
  enqueue(15);
  int tid = fork(consumer1);
  join(tid);
  dequeue();
  return 0;
}
"""

_MS2_SOURCE = """
// Michael-Scott two-lock queue [23]: head lock + tail lock, dummy node.
const EMPTY = 0 - 1;

struct Node {
  int value;
  struct Node* next;
};

struct Node* QHead;
struct Node* QTail;
int HLock;
int TLock;

void qinit() {
  struct Node* dummy = pagealloc(sizeof(struct Node));
  dummy->value = 0;
  dummy->next = 0;
  QHead = dummy;
  QTail = dummy;
}

void enqueue(int v) {
  struct Node* node = pagealloc(sizeof(struct Node));
  node->value = v;
  node->next = 0;
  lock(&TLock);
  QTail->next = node;
  QTail = node;
  unlock(&TLock);
}

int dequeue() {
  lock(&HLock);
  struct Node* node = QHead;
  struct Node* nh = node->next;
  if (nh == 0) {
    unlock(&HLock);
    return EMPTY;
  }
  int v = nh->value;
  QHead = nh;
  unlock(&HLock);
  return v;
}
""" + _COMMON_CLIENTS

_MSN_SOURCE = """
// Michael-Scott non-blocking queue [23]: CAS-based, dummy node.
const EMPTY = 0 - 1;

struct Node {
  int value;
  struct Node* next;
};

struct Node* QHead;
struct Node* QTail;

void qinit() {
  struct Node* dummy = pagealloc(sizeof(struct Node));
  dummy->value = 0;
  dummy->next = 0;
  QHead = dummy;
  QTail = dummy;
}

void enqueue(int v) {
  struct Node* node = pagealloc(sizeof(struct Node));
  node->value = v;
  node->next = 0;
  while (1) {
    struct Node* t = QTail;
    struct Node* next = t->next;
    if (t == QTail) {
      if (next == 0) {
        if (cas(&t->next, 0, node)) {     // link the new node
          cas(&QTail, t, node);            // swing the tail
          return;
        }
      } else {
        cas(&QTail, t, next);              // help the other enqueuer
      }
    }
  }
}

int dequeue() {
  while (1) {
    struct Node* h = QHead;
    struct Node* t = QTail;
    struct Node* next = h->next;
    if (h == QHead) {
      if (h == t) {
        if (next == 0) {
          return EMPTY;
        }
        cas(&QTail, t, next);              // tail is lagging: help
      } else {
        int v = next->value;
        if (cas(&QHead, h, next)) {
          return v;
        }
      }
    }
  }
  return EMPTY;
}
""" + _COMMON_CLIENTS

MS2_QUEUE = AlgorithmBundle(
    name="ms2_queue",
    description="Michael-Scott two-lock queue [23]: separate head and "
                "tail locks over a linked list with a dummy node",
    source=_MS2_SOURCE,
    entries=("client0", "client1", "client2", "client3"),
    operations=("enqueue", "dequeue"),
    seq_spec=QueueSpec,
    supports=("memory_safety", "sc", "lin"),
    flush_prob={"tso": 0.1, "pso": 0.2},
    notes="Paper: no fences needed on any model/spec (locks carry their "
          "own fences).",
)

MSN_QUEUE = AlgorithmBundle(
    name="msn_queue",
    description="Michael-Scott non-blocking queue [23]: CAS link-in, "
                "tail swing, head advance",
    source=_MSN_SOURCE,
    entries=("client0", "client1", "client2", "client3"),
    operations=("enqueue", "dequeue"),
    seq_spec=QueueSpec,
    supports=("memory_safety", "sc", "lin"),
    flush_prob={"tso": 0.1, "pso": 0.2},
    notes="Paper: no fences on TSO; (enqueue, E3:E4) on PSO — the node "
          "value store must flush before the link-in CAS publishes.",
)
