"""Sorted linked-list sets: LazyList (lock-based) and Harris (lock-free).

* **LazyList** (Heller et al., OPODIS'05): add/remove lock the two
  affected nodes and re-validate; contains is wait-free and never locks.
  A node is logically deleted by its ``marked`` flag before being
  unlinked.  Nodes are created and initialised *before* the locks are
  taken, so the lock's fences publish them — no extra fences needed,
  matching Table 3.
* **Harris** (DISC'01): fully CAS-based; deletion marks the low bit of
  the victim's ``next`` pointer, traversals strip marks and unlinking is
  a separate CAS.  On PSO the node-initialisation stores can be overtaken
  by the insert CAS — the paper's (insert, 8:9) fence.

Sentinel nodes hold keys -1000000 / +1000000; client keys stay inside.
"""

from .base import AlgorithmBundle
from ..spec.sequential import SetSpec

_COMMON_CLIENTS = """
void worker_a() { add(5); remove(5); }
void worker_b() { contains(5); add(7); }
void worker_c() { add(5); contains(3); }

int client0() {
  sinit();
  int tid = fork(worker_a);
  contains(5);
  add(3);
  join(tid);
  return 0;
}

int client1() {
  sinit();
  add(5);
  int tid = fork(worker_b);
  remove(5);
  contains(7);
  join(tid);
  return 0;
}

int client2() {
  sinit();
  add(1);
  int tid = fork(worker_c);
  add(5);
  remove(1);
  contains(5);
  join(tid);
  return 0;
}

int client3() {
  sinit();
  int tid = fork(worker_c);
  contains(5);
  contains(5);
  join(tid);
  return 0;
}
"""

_LAZY_LIST_SOURCE = """
// LazyList sorted set [13]: hand-over-hand locking with lazy deletion.
const KEYMIN = 0 - 1000000;
const KEYMAX = 1000000;

struct Node {
  int key;
  struct Node* next;
  int marked;
  int lk;
};

struct Node* SHead;

void sinit() {
  struct Node* tailn = pagealloc(sizeof(struct Node));
  tailn->key = KEYMAX;
  tailn->next = 0;
  struct Node* headn = pagealloc(sizeof(struct Node));
  headn->key = KEYMIN;
  headn->next = tailn;
  SHead = headn;
}

int validate(struct Node* pred, struct Node* curr) {
  return !pred->marked && !curr->marked && pred->next == curr;
}

int add(int key) {
  while (1) {
    struct Node* pred = SHead;
    struct Node* curr = pred->next;
    while (curr->key < key) {
      pred = curr;
      curr = curr->next;
    }
    // Create the node before locking: the lock fences publish it.
    struct Node* node = pagealloc(sizeof(struct Node));
    node->key = key;
    node->next = curr;
    node->marked = 0;
    node->lk = 0;
    lock(&pred->lk);
    lock(&curr->lk);
    if (validate(pred, curr)) {
      if (curr->key == key) {
        unlock(&curr->lk);
        unlock(&pred->lk);
        return 0;
      }
      pred->next = node;
      unlock(&curr->lk);
      unlock(&pred->lk);
      return 1;
    }
    unlock(&curr->lk);
    unlock(&pred->lk);
  }
  return 0;
}

int remove(int key) {
  while (1) {
    struct Node* pred = SHead;
    struct Node* curr = pred->next;
    while (curr->key < key) {
      pred = curr;
      curr = curr->next;
    }
    lock(&pred->lk);
    lock(&curr->lk);
    if (validate(pred, curr)) {
      if (curr->key != key) {
        unlock(&curr->lk);
        unlock(&pred->lk);
        return 0;
      }
      curr->marked = 1;            // logical delete
      pred->next = curr->next;     // physical unlink
      unlock(&curr->lk);
      unlock(&pred->lk);
      return 1;
    }
    unlock(&curr->lk);
    unlock(&pred->lk);
  }
  return 0;
}

int contains(int key) {
  struct Node* curr = SHead;
  while (curr->key < key) {
    curr = curr->next;
  }
  return curr->key == key && !curr->marked;
}
""" + _COMMON_CLIENTS

_HARRIS_SOURCE = """
// Harris's lock-free sorted set [8]: marked next-pointers (low bit).
const KEYMIN = 0 - 1000000;
const KEYMAX = 1000000;
const UNMARK = 0 - 2;

struct Node {
  int key;
  struct Node* next;
};

struct Node* SHead;

void sinit() {
  struct Node* tailn = pagealloc(sizeof(struct Node));
  tailn->key = KEYMAX;
  tailn->next = 0;
  struct Node* headn = pagealloc(sizeof(struct Node));
  headn->key = KEYMIN;
  headn->next = tailn;
  SHead = headn;
}

int add(int key) {
  while (1) {
    struct Node* pred = SHead;
    struct Node* curr = pred->next & UNMARK;
    while (1) {
      int succ = curr->next;
      if (succ & 1) {                 // curr is logically deleted: skip
        curr = succ & UNMARK;
      } else {
        if (curr->key < key) {
          pred = curr;
          curr = succ & UNMARK;
        } else {
          break;
        }
      }
    }
    if (curr->key == key) {
      return 0;
    }
    struct Node* node = pagealloc(sizeof(struct Node));
    node->key = key;
    node->next = curr;
    if (cas(&pred->next, curr, node)) {
      return 1;
    }
  }
  return 0;
}

int remove(int key) {
  while (1) {
    struct Node* pred = SHead;
    struct Node* curr = pred->next & UNMARK;
    while (1) {
      int succ = curr->next;
      if (succ & 1) {
        curr = succ & UNMARK;
      } else {
        if (curr->key < key) {
          pred = curr;
          curr = succ & UNMARK;
        } else {
          break;
        }
      }
    }
    if (curr->key != key) {
      return 0;
    }
    int succ = curr->next;
    if (succ & 1) {
      continue;                        // someone else is deleting it
    }
    if (cas(&curr->next, succ, succ | 1)) {   // logical delete
      cas(&pred->next, curr, succ);           // best-effort unlink
      return 1;
    }
  }
  return 0;
}

int contains(int key) {
  struct Node* curr = SHead;
  while (curr->key < key) {
    curr = curr->next & UNMARK;
  }
  return curr->key == key && !(curr->next & 1);
}
""" + _COMMON_CLIENTS

LAZY_LIST = AlgorithmBundle(
    name="lazy_list",
    description="LazyList sorted set [13]: two-node locking with "
                "validation, lazy deletion, wait-free contains",
    source=_LAZY_LIST_SOURCE,
    entries=("client0", "client1", "client2", "client3"),
    operations=("add", "remove", "contains"),
    seq_spec=SetSpec,
    supports=("memory_safety", "sc", "lin"),
    flush_prob={"tso": 0.1, "pso": 0.2},
    notes="Paper: no fences needed on any model/spec.",
)

HARRIS_SET = AlgorithmBundle(
    name="harris_set",
    description="Harris's lock-free sorted set [8]: CAS insertion and "
                "mark-then-unlink deletion",
    source=_HARRIS_SOURCE,
    entries=("client0", "client1", "client2", "client3"),
    operations=("add", "remove", "contains"),
    seq_spec=SetSpec,
    supports=("memory_safety", "sc", "lin"),
    flush_prob={"tso": 0.1, "pso": 0.2},
    notes="Paper: no fences on TSO; (insert, 8:9) on PSO — node "
          "initialisation must flush before the insert CAS publishes.",
)
