"""The paper's §6.6 future-work experiment, implemented.

The paper observes that plain memory-safety checking is too weak for the
work-stealing queues (losing or duplicating a task does not crash) and
proposes a trick: *store pointers to freshly allocated memory in the
queue, and have the client free each pointer right after fetching it* —
then a duplicated task becomes a double-free / use-after-free, which the
memory-safety checker catches directly.  The authors "leave this
experiment as future work"; here it is.

``CHASE_LEV_PTR`` is the de-fenced Chase-Lev queue with pointer-payload
clients.  Under plain memory safety (no history checking at all), the
F1-style duplicate-return bug now crashes as a double free, so the tool
infers the same fences (F1 on TSO; F1+F2 on PSO) that otherwise need the
sequential-consistency specification — confirming the paper's conjecture.
"""

from .base import AlgorithmBundle
from .wsq import _CHASE_LEV_SOURCE

_PTR_CLIENTS = """
// ---- pointer-payload clients (the section 6.6 trick) -----------------

void consume(int p) {
  if (p != EMPTY) {
    pagefree(p);       // a duplicated task means a double free: trap
  }
}

void ptr_thief1() { consume(steal()); }
void ptr_thief2() { consume(steal()); consume(steal()); }

int ptr_client0() {
  put(pagealloc(2));
  int tid = fork(ptr_thief1);
  consume(take());
  join(tid);
  return 0;
}

int ptr_client1() {
  put(pagealloc(2));
  put(pagealloc(2));
  int tid = fork(ptr_thief2);
  consume(take());
  consume(take());
  join(tid);
  return 0;
}

int ptr_client2() {
  put(pagealloc(2));
  put(pagealloc(2));
  put(pagealloc(2));
  int tid = fork(ptr_thief2);
  consume(take());
  consume(take());
  join(tid);
  return 0;
}
"""

CHASE_LEV_PTR = AlgorithmBundle(
    name="chase_lev_ptr",
    description="Chase-Lev WSQ with pointer payloads freed on fetch: the "
                "paper's proposed client that turns duplicate returns "
                "into memory-safety violations",
    source=_CHASE_LEV_SOURCE + _PTR_CLIENTS,
    entries=("ptr_client0", "ptr_client1", "ptr_client2"),
    operations=("put", "take", "steal"),
    supports=("memory_safety",),
    flush_prob={"tso": 0.1, "pso": 0.2},
    notes="Left as future work in the paper (section 6.6); plain memory "
          "safety should now infer the take fence that otherwise needs "
          "the SC specification.",
)
