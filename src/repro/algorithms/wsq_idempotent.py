"""Idempotent work-stealing queues (Michael, Vechev, Saraswat, PPoPP'09).

Idempotent semantics: each put task is extracted *at least* once — duplicate
extraction is allowed, which lets the owner avoid expensive synchronisation.
Following the paper, these are checked against memory safety plus the
"no garbage tasks returned" specification (duplicates allowed, invented
values not); SC/linearizability need idempotent sequential specs and are
out of scope, as in the paper.

All three shapes are implemented:

* **LIFO**: put/take/steal all at the top; the (tail, tag) pair is packed
  into one ``anchor`` word, updated by plain stores by the owner and CAS
  by thieves.
* **FIFO**: put at the tail, take/steal at the head; the owner's take
  advances head with a plain store.
* **Anchor** (double-ended): put/take at the tail via the packed anchor,
  steal at the head via CAS.
"""

from .base import AlgorithmBundle
from ..spec.specifications import GarbageFreeSpec


def _garbage_spec():
    # Idempotent queues may return a task several times, but never a value
    # that was not put.
    return GarbageFreeSpec(multiplicity=None)


_COMMON_CLIENTS = """
void thief1() { steal(); }
void thief2() { steal(); steal(); }

int client0() {
  put(10);
  int tid = fork(thief1);
  take();
  join(tid);
  return 0;
}

int client1() {
  put(11);
  put(12);
  int tid = fork(thief2);
  take();
  take();
  join(tid);
  return 0;
}

int client2() {
  int tid = fork(thief1);
  put(13);
  take();
  join(tid);
  return 0;
}

int client3() {
  put(14);
  put(15);
  int tid = fork(thief2);
  put(16);
  take();
  join(tid);
  return 0;
}

int client4() {
  int tid = fork(thief2);
  put(17);
  put(18);
  take();
  join(tid);
  return 0;
}
"""

_LIFO_SOURCE = """
// Idempotent LIFO work-stealing queue: anchor packs (tail, tag).
const EMPTY = 0 - 1;
int anchor;              // (t << 8) | g
int tasks[16];

void put(int task) {
  int a = anchor;
  int t = a >> 8;
  int g = a & 255;
  tasks[t] = task;
  anchor = ((t + 1) << 8) | ((g + 1) & 255);
}

int take() {
  int a = anchor;
  int t = a >> 8;
  int g = a & 255;
  if (t == 0) {
    return EMPTY;
  }
  int task = tasks[t - 1];
  anchor = ((t - 1) << 8) | g;
  return task;
}

int steal() {
  while (1) {
    int a = anchor;
    int t = a >> 8;
    int g = a & 255;
    if (t == 0) {
      return EMPTY;
    }
    int task = tasks[t - 1];
    if (cas(&anchor, a, ((t - 1) << 8) | g)) {
      return task;
    }
  }
  return EMPTY;
}
""" + _COMMON_CLIENTS

_FIFO_SOURCE = """
// Idempotent FIFO work-stealing queue: owner puts at the tail and takes
// at the head with plain stores; thieves CAS the head.
const EMPTY = 0 - 1;
const SIZE = 16;
int head;
int tail;
int tasks[16];

void put(int task) {
  int t = tail;
  tasks[t % SIZE] = task;
  tail = t + 1;
}

int take() {
  int h = head;
  int t = tail;
  if (h == t) {
    return EMPTY;
  }
  int task = tasks[h % SIZE];
  head = h + 1;
  return task;
}

int steal() {
  while (1) {
    int h = head;
    int t = tail;
    if (h == t) {
      return EMPTY;
    }
    int task = tasks[h % SIZE];
    if (cas(&head, h, h + 1)) {
      return task;
    }
  }
  return EMPTY;
}
""" + _COMMON_CLIENTS

_ANCHOR_SOURCE = """
// Idempotent double-ended ("anchor") work-stealing queue: put/take at the
// tail through the packed anchor, steal at the head through CAS.
const EMPTY = 0 - 1;
int anchor;              // (t << 8) | g
int head;
int tasks[16];

void put(int task) {
  int a = anchor;
  int t = a >> 8;
  int g = a & 255;
  tasks[t] = task;
  anchor = ((t + 1) << 8) | ((g + 1) & 255);
}

int take() {
  int a = anchor;
  int t = a >> 8;
  int g = a & 255;
  int h = head;
  if (t <= h) {
    return EMPTY;
  }
  int task = tasks[t - 1];
  anchor = ((t - 1) << 8) | g;
  return task;
}

int steal() {
  while (1) {
    int a = anchor;
    int t = a >> 8;
    int h = head;
    if (h >= t) {
      return EMPTY;
    }
    int task = tasks[h];
    if (cas(&head, h, h + 1)) {
      return task;
    }
  }
  return EMPTY;
}
""" + _COMMON_CLIENTS

LIFO_IWSQ = AlgorithmBundle(
    name="lifo_iwsq",
    description="Idempotent LIFO work-stealing queue [24]: packed "
                "(tail, tag) anchor, CAS only in steal",
    source=_LIFO_SOURCE,
    entries=("client0", "client1", "client2", "client3", "client4"),
    operations=("put", "take", "steal"),
    garbage_spec=_garbage_spec,
    supports=("memory_safety",),
    flush_prob={"tso": 0.1, "pso": 0.3},
    notes="Paper: PSO needs (put, 3:4) and an inter-operation store-store "
          "fence at the end of take; TSO needs none.",
)

FIFO_IWSQ = AlgorithmBundle(
    name="fifo_iwsq",
    description="Idempotent FIFO work-stealing queue [24]: plain-store "
                "owner operations, CAS only in steal",
    source=_FIFO_SOURCE,
    entries=("client0", "client1", "client2", "client3", "client4"),
    operations=("put", "take", "steal"),
    garbage_spec=_garbage_spec,
    supports=("memory_safety",),
    flush_prob={"tso": 0.1, "pso": 0.3},
    notes="Paper: PSO needs (put, 4:5), end-of-put and end-of-take "
          "fences; TSO needs none.",
)

ANCHOR_IWSQ = AlgorithmBundle(
    name="anchor_iwsq",
    description="Idempotent double-ended work-stealing queue [24]: anchor "
                "at the tail, CAS only in steal",
    source=_ANCHOR_SOURCE,
    entries=("client0", "client1", "client2", "client3", "client4"),
    operations=("put", "take", "steal"),
    garbage_spec=_garbage_spec,
    supports=("memory_safety",),
    flush_prob={"tso": 0.1, "pso": 0.3},
    notes="Paper: PSO needs (put, 3:4) and an end-of-take fence; TSO none.",
)
