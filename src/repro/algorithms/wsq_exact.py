"""Exact (non-idempotent) LIFO / FIFO / Anchor work-stealing queues.

The paper derives these from the idempotent shapes by adding CAS to the
remaining operations (Table 2): each task is extracted exactly once, so
the full SC/linearizability specifications apply.

The headline §6.6 finding lives here: **FIFO WSQ needs no fences on TSO
under sequential consistency** — weakening linearizability to SC yields a
fence-free algorithm on TSO.
"""

from .base import AlgorithmBundle
from ..spec.sequential import WSQDequeSpec, WSQFifoSpec, WSQLifoSpec

_COMMON_CLIENTS = """
void thief1() { steal(); }
void thief2() { steal(); steal(); }

int client0() {
  put(10);
  int tid = fork(thief1);
  take();
  join(tid);
  return 0;
}

int client1() {
  put(11);
  put(12);
  int tid = fork(thief2);
  take();
  take();
  join(tid);
  return 0;
}

int client2() {
  int tid = fork(thief1);
  put(13);
  take();
  join(tid);
  return 0;
}

int client3() {
  put(14);
  int tid = fork(thief1);
  join(tid);
  take();
  return 0;
}

int client4() {
  put(15);
  put(16);
  put(17);
  int tid = fork(thief2);
  take();
  take();
  join(tid);
  return 0;
}

int done;
void thief_wait() {
  while (done == 0) {}
  steal();
}

int client5() {
  int tid = fork(thief_wait);
  put(18);
  done = 1;
  join(tid);
  take();
  return 0;
}

int client6() {
  int tid = fork(thief2);
  put(19);
  put(20);
  take();
  join(tid);
  return 0;
}
"""

_LIFO_WSQ_SOURCE = """
// Exact LIFO work-stealing queue: like LIFO iWSQ but every operation
// updates the (tail, tag) anchor with CAS.
const EMPTY = 0 - 1;
int anchor;              // (t << 8) | g
int tasks[16];

void put(int task) {
  while (1) {
    int a = anchor;
    int t = a >> 8;
    int g = a & 255;
    tasks[t] = task;
    if (cas(&anchor, a, ((t + 1) << 8) | ((g + 1) & 255))) {
      return;
    }
  }
}

int take() {
  while (1) {
    int a = anchor;
    int t = a >> 8;
    int g = a & 255;
    if (t == 0) {
      return EMPTY;
    }
    int task = tasks[t - 1];
    if (cas(&anchor, a, ((t - 1) << 8) | g)) {
      return task;
    }
  }
  return EMPTY;
}

int steal() {
  while (1) {
    int a = anchor;
    int t = a >> 8;
    int g = a & 255;
    if (t == 0) {
      return EMPTY;
    }
    int task = tasks[t - 1];
    if (cas(&anchor, a, ((t - 1) << 8) | g)) {
      return task;
    }
  }
  return EMPTY;
}
""" + _COMMON_CLIENTS

_FIFO_WSQ_SOURCE = """
// Exact FIFO work-stealing queue: like FIFO iWSQ but take uses CAS on the
// head, making every extraction exclusive.
const EMPTY = 0 - 1;
const SIZE = 16;
int head;
int tail;
int tasks[16];

void put(int task) {
  int t = tail;
  tasks[t % SIZE] = task;
  tail = t + 1;
}

int take() {
  while (1) {
    int h = head;
    int t = tail;
    if (h == t) {
      return EMPTY;
    }
    int task = tasks[h % SIZE];
    if (cas(&head, h, h + 1)) {
      return task;
    }
  }
  return EMPTY;
}

int steal() {
  while (1) {
    int h = head;
    int t = tail;
    if (h == t) {
      return EMPTY;
    }
    int task = tasks[h % SIZE];
    if (cas(&head, h, h + 1)) {
      return task;
    }
  }
  return EMPTY;
}
""" + _COMMON_CLIENTS

_ANCHOR_WSQ_SOURCE = """
// Exact double-ended work-stealing queue: Chase-Lev logic over a packed
// (tail, tag) anchor; the owner publishes anchor updates with CAS and
// races thieves on the head for the last item.
const EMPTY = 0 - 1;
int anchor;              // (t << 8) | g
int head;
int tasks[16];

void put(int task) {
  while (1) {
    int a = anchor;
    int t = a >> 8;
    int g = a & 255;
    tasks[t] = task;
    if (cas(&anchor, a, ((t + 1) << 8) | ((g + 1) & 255))) {
      return;
    }
  }
}

int take() {
  int a = anchor;
  int t = (a >> 8) - 1;
  int g = a & 255;
  cas(&anchor, a, (t << 8) | g);         // optimistic decrement
  int h = head;
  if (t < h) {                            // empty: restore
    cas(&anchor, (t << 8) | g, (h << 8) | g);
    return EMPTY;
  }
  int task = tasks[t];
  if (t > h) {
    return task;
  }
  if (!cas(&head, h, h + 1)) {            // last item: race thieves
    task = EMPTY;
  }
  cas(&anchor, (t << 8) | g, ((h + 1) << 8) | g);
  return task;
}

int steal() {
  while (1) {
    int h = head;
    int a = anchor;
    int t = a >> 8;
    if (h >= t) {
      return EMPTY;
    }
    int task = tasks[h];
    if (cas(&head, h, h + 1)) {
      return task;
    }
  }
  return EMPTY;
}
""" + _COMMON_CLIENTS

LIFO_WSQ = AlgorithmBundle(
    name="lifo_wsq",
    description="Exact LIFO work-stealing queue: all operations CAS the "
                "packed anchor",
    source=_LIFO_WSQ_SOURCE,
    entries=("client0", "client1", "client2", "client3", "client4",
             "client5", "client6"),
    operations=("put", "take", "steal"),
    seq_spec=WSQLifoSpec,
    supports=("memory_safety", "sc", "lin"),
    flush_prob={"tso": 0.1, "pso": 0.3},
    notes="Paper: no fences on TSO; (put, 3:4) on PSO for both SC and "
          "linearizability.",
)

FIFO_WSQ = AlgorithmBundle(
    name="fifo_wsq",
    description="Exact FIFO work-stealing queue: take and steal CAS the "
                "head; put is plain owner stores",
    source=_FIFO_WSQ_SOURCE,
    entries=("client0", "client1", "client2", "client3", "client4",
             "client5", "client6"),
    operations=("put", "take", "steal"),
    seq_spec=WSQFifoSpec,
    supports=("memory_safety", "sc", "lin"),
    flush_prob={"tso": 0.1, "pso": 0.3},
    notes="Paper highlight: fence-free on TSO under SC; fences in put "
          "appear on PSO, and linearizability adds a put fence on TSO.",
)

ANCHOR_WSQ = AlgorithmBundle(
    name="anchor_wsq",
    description="Exact double-ended work-stealing queue: Chase-Lev logic "
                "with a CAS-published packed anchor",
    source=_ANCHOR_WSQ_SOURCE,
    entries=("client0", "client1", "client2", "client3", "client4",
             "client5", "client6"),
    operations=("put", "take", "steal"),
    seq_spec=WSQDequeSpec,
    supports=("memory_safety", "sc", "lin"),
    flush_prob={"tso": 0.1, "pso": 0.3},
    notes="Paper: no fences on TSO; (put, 3:4) on PSO for both SC and "
          "linearizability.",
)
