"""Extra algorithms beyond the paper's Table 2.

Three classics that exercise the engine on different synchronisation
idioms:

* **Dekker's** and **Peterson's** mutual-exclusion algorithms — the
  canonical store→load-fence clients (the original motivation for delay
  set analysis): both threads write their flag and must *see* the other's
  flag, so TSO already breaks them without fences.  Mutual exclusion is
  expressed as an assertion (two threads in the critical section at once
  crash), so plain memory safety drives the inference.
* **Treiber's stack** — the minimal CAS-published data structure; on PSO
  the node-initialisation store needs a fence before the publishing CAS,
  like MSN/Harris.

These bundles are exported separately (not part of ``ALGORITHMS``) so the
Table-2/3 reproduction stays exactly the paper's 13.
"""

from .base import AlgorithmBundle
from ..spec.sequential import StackSpec

_DEKKER_SOURCE = """
// Dekker's mutual exclusion (2 threads), with an in-critical-section
// collision detector: IN counts threads inside, and the assert fires if
// mutual exclusion is violated.
int flag0;
int flag1;
int turn;
int IN;

void enter0() {
  flag0 = 1;
  while (flag1 == 1) {
    if (turn != 0) {
      flag0 = 0;
      while (turn != 0) {}
      flag0 = 1;
    }
  }
}

void exit0() {
  turn = 1;
  flag0 = 0;
}

void enter1() {
  flag1 = 1;
  while (flag0 == 1) {
    if (turn != 1) {
      flag1 = 0;
      while (turn != 1) {}
      flag1 = 1;
    }
  }
}

void exit1() {
  turn = 0;
  flag1 = 0;
}

void critical() {
  IN = IN + 1;
  assert(IN == 1);
  IN = IN - 1;
}

void contender() {
  enter1();
  critical();
  exit1();
}

int client0() {
  int t = fork(contender);
  enter0();
  critical();
  exit0();
  join(t);
  return 0;
}

int client1() {
  int t = fork(contender);
  for (int i = 0; i < 2; i = i + 1) {
    enter0();
    critical();
    exit0();
  }
  join(t);
  return 0;
}
"""

_PETERSON_SOURCE = """
// Peterson's mutual exclusion (2 threads) with a collision detector.
int flag0;
int flag1;
int victim;
int IN;

void enter0() {
  flag0 = 1;
  victim = 0;
  while (flag1 == 1 && victim == 0) {}
}

void exit0() {
  flag0 = 0;
}

void enter1() {
  flag1 = 1;
  victim = 1;
  while (flag0 == 1 && victim == 1) {}
}

void exit1() {
  flag1 = 0;
}

void critical() {
  IN = IN + 1;
  assert(IN == 1);
  IN = IN - 1;
}

void contender() {
  enter1();
  critical();
  exit1();
}

int client0() {
  int t = fork(contender);
  enter0();
  critical();
  exit0();
  join(t);
  return 0;
}

int client1() {
  int t = fork(contender);
  for (int i = 0; i < 2; i = i + 1) {
    enter0();
    critical();
    exit0();
  }
  join(t);
  return 0;
}
"""

_TREIBER_SOURCE = """
// Treiber's lock-free stack.
const EMPTY = 0 - 1;

struct Node {
  int value;
  struct Node* next;
};

struct Node* Top;

void push(int v) {
  struct Node* node = pagealloc(sizeof(struct Node));
  node->value = v;
  while (1) {
    struct Node* top = Top;
    node->next = top;
    if (cas(&Top, top, node)) {
      return;
    }
  }
}

int pop() {
  while (1) {
    struct Node* top = Top;
    if (top == 0) {
      return EMPTY;
    }
    struct Node* next = top->next;
    if (cas(&Top, top, next)) {
      return top->value;
    }
  }
  return EMPTY;
}

void worker1() { pop(); push(30); pop(); }
void worker2() { pop(); pop(); }

int client0() {
  push(10);
  int tid = fork(worker1);
  push(11);
  pop();
  pop();
  join(tid);
  return 0;
}

int client1() {
  int tid = fork(worker2);
  push(20);
  push(21);
  pop();
  join(tid);
  return 0;
}

int client2() {
  push(22);
  push(23);
  int tid = fork(worker2);
  push(24);
  join(tid);
  pop();
  return 0;
}
"""

DEKKER = AlgorithmBundle(
    name="dekker",
    description="Dekker's mutual exclusion: flag/turn handshake; the "
                "canonical store-load-fence client",
    source=_DEKKER_SOURCE,
    entries=("client0", "client1"),
    operations=(),
    supports=("memory_safety",),
    flush_prob={"tso": 0.1, "pso": 0.15},
    notes="Needs store-load fences after the flag stores on TSO and PSO "
          "(plus turn/flag ordering on PSO).",
)

PETERSON = AlgorithmBundle(
    name="peterson",
    description="Peterson's mutual exclusion: flag/victim handshake",
    source=_PETERSON_SOURCE,
    entries=("client0", "client1"),
    operations=(),
    supports=("memory_safety",),
    flush_prob={"tso": 0.1, "pso": 0.15},
    notes="Needs store-load fences between the flag/victim stores and "
          "the other thread's flag load.",
)

TREIBER_STACK = AlgorithmBundle(
    name="treiber_stack",
    description="Treiber's lock-free stack: CAS-published nodes",
    source=_TREIBER_SOURCE,
    entries=("client0", "client1", "client2"),
    operations=("push", "pop"),
    seq_spec=StackSpec,
    supports=("memory_safety", "sc", "lin"),
    flush_prob={"tso": 0.1, "pso": 0.3},
    notes="No fences on TSO; on PSO the node value store must flush "
          "before the publishing CAS (like MSN enqueue).",
)
