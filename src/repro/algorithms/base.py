"""Benchmark algorithm bundles.

An :class:`AlgorithmBundle` packages everything the engine and the
benchmark harness need to process one of the paper's 13 concurrent C
algorithms: the MiniC source (algorithm + clients), the client entry
points, the operation names to record, the sequential specification, and
which specification columns of Table 3 apply.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.module import Module
from ..minic.lower import compile_source
from ..spec.sequential import SequentialSpec
from ..spec.specifications import (
    GarbageFreeSpec,
    LinearizabilitySpec,
    MemorySafetySpec,
    SequentialConsistencySpec,
    Specification,
)


class AlgorithmBundle:
    """One benchmark algorithm plus its clients and specification."""

    def __init__(self, name: str, description: str, source: str,
                 entries: Sequence[str], operations: Sequence[str],
                 seq_spec: Optional[Callable[[], SequentialSpec]] = None,
                 garbage_spec: Optional[Callable[[], Specification]] = None,
                 supports: Sequence[str] = ("memory_safety", "sc", "lin"),
                 flush_prob: Optional[Dict[str, float]] = None,
                 notes: str = "") -> None:
        self.name = name
        self.description = description
        self.source = source
        self.entries = tuple(entries)
        self.operations = tuple(operations)
        self.seq_spec = seq_spec
        self.garbage_spec = garbage_spec
        self.supports = tuple(supports)
        #: Per-model flush probability overrides (paper: ~0.1 TSO, ~0.5 PSO).
        self.flush_prob = flush_prob or {"tso": 0.1, "pso": 0.5}
        self.notes = notes
        self._module: Optional[Module] = None

    def compile(self) -> Module:
        """Compile (once) and return a pristine module; callers clone."""
        if self._module is None:
            self._module = compile_source(self.source, self.name)
        return self._module.clone()

    def spec(self, kind: str) -> Specification:
        """Instantiate the specification for a Table 3 column.

        ``kind`` is one of ``memory_safety``, ``sc``, ``lin``,
        ``garbage`` (memory safety is implied by all of them, as in the
        paper).
        """
        if kind == "memory_safety":
            if self.garbage_spec is not None:
                # The paper's Memory Safety column for the iWSQs includes
                # the "no garbage tasks returned" property.
                return self.garbage_spec()
            return MemorySafetySpec()
        if kind == "garbage":
            if self.garbage_spec is None:
                raise ValueError("%s has no garbage spec" % self.name)
            return self.garbage_spec()
        if self.seq_spec is None:
            raise ValueError("%s has no sequential spec (%s unsupported)"
                             % (self.name, kind))
        if kind == "sc":
            return SequentialConsistencySpec(self.seq_spec())
        if kind == "lin":
            return LinearizabilitySpec(self.seq_spec())
        if kind == "qc":
            from ..spec.quiescent import QuiescentConsistencySpec
            return QuiescentConsistencySpec(self.seq_spec())
        raise ValueError("unknown spec kind %r" % kind)

    def __repr__(self) -> str:
        return "<AlgorithmBundle %s>" % self.name
