"""The paper's 13 concurrent benchmark algorithms (Table 2), in MiniC.

``ALGORITHMS`` maps name → :class:`~repro.algorithms.base.AlgorithmBundle`
in the order of Table 2/3.
"""

from .allocator import MICHAEL_ALLOCATOR
from .base import AlgorithmBundle
from .extras import DEKKER, PETERSON, TREIBER_STACK
from .future_work import CHASE_LEV_PTR
from .queues import MS2_QUEUE, MSN_QUEUE
from .sets import HARRIS_SET, LAZY_LIST
from .wsq import CHASE_LEV, CILK_THE
from .wsq_exact import ANCHOR_WSQ, FIFO_WSQ, LIFO_WSQ
from .wsq_idempotent import ANCHOR_IWSQ, FIFO_IWSQ, LIFO_IWSQ

#: All benchmarks, keyed by name, in the paper's Table 2 order.
ALGORITHMS = {
    bundle.name: bundle
    for bundle in (
        CHASE_LEV,
        CILK_THE,
        FIFO_IWSQ,
        LIFO_IWSQ,
        ANCHOR_IWSQ,
        FIFO_WSQ,
        LIFO_WSQ,
        ANCHOR_WSQ,
        MS2_QUEUE,
        MSN_QUEUE,
        LAZY_LIST,
        HARRIS_SET,
        MICHAEL_ALLOCATOR,
    )
}

__all__ = [
    "ALGORITHMS",
    "CHASE_LEV_PTR",
    "DEKKER",
    "PETERSON",
    "TREIBER_STACK",
    "ANCHOR_IWSQ",
    "ANCHOR_WSQ",
    "AlgorithmBundle",
    "CHASE_LEV",
    "CILK_THE",
    "FIFO_IWSQ",
    "FIFO_WSQ",
    "HARRIS_SET",
    "LAZY_LIST",
    "LIFO_IWSQ",
    "LIFO_WSQ",
    "MICHAEL_ALLOCATOR",
    "MS2_QUEUE",
    "MSN_QUEUE",
]
