"""Michael's scalable lock-free memory allocator (PLDI'04), scaled down.

The structure follows the original: per-size-class descriptors whose
``anchor`` word packs (tag, count, avail) and is updated by CAS; an
``Active`` descriptor pointer; superblocks carved into blocks whose first
cell stores either the free-list link (while free) or the owning
descriptor pointer (while allocated); a retired-descriptor free list
(``DescAvail``) maintained by DescAlloc/DescRetire.

The scaled-down deltas (documented in DESIGN.md): one size class, no
credits on Active, a one-slot ``Partial`` cache instead of the per-heap
partial list, and ``pagealloc`` standing in for mmap.  All four fence sites the paper reports live in retained
code paths:

* **MallocFromNewSB** — superblock/descriptor initialisation must flush
  before the CAS publishing ``Active``;
* **DescAlloc / DescRetire** — descriptor free-list link stores vs. the
  publishing CAS;
* **free** — the freed block's link store must flush before the anchor
  CAS makes the block available (the paper finds this one only under
  SC/linearizability: a stale link yields duplicate allocation, not an
  immediate crash).

Clients follow the paper's §6.7 workload: ``mmmfff | mfmf`` with frees
targeting the oldest live allocation of the same thread.
"""

from .base import AlgorithmBundle
from ..spec.sequential import AllocatorSpec

_ALLOCATOR_SOURCE = """
// Michael's lock-free allocator [21], one size class.
const NBLOCKS = 8;      // blocks per superblock
const BLK = 2;          // cells per block: [header][payload]

struct Desc {
  int anchor;           // (tag << 16) | (count << 8) | avail
  int* sb;              // superblock base
  struct Desc* next;    // retired-descriptor list link
  int maxcount;
};

struct Desc* Active;
struct Desc* Partial;      // one-slot cache of a reusable superblock
struct Desc* DescAvail;

struct Desc* DescAlloc() {
  while (1) {
    struct Desc* d = DescAvail;
    if (d != 0) {
      struct Desc* nxt = d->next;
      if (cas(&DescAvail, d, nxt)) {
        return d;
      }
    } else {
      d = pagealloc(sizeof(struct Desc));
      return d;
    }
  }
  return 0;
}

void DescRetire(struct Desc* d) {
  while (1) {
    struct Desc* old = DescAvail;
    d->next = old;
    if (cas(&DescAvail, old, d)) {
      return;
    }
  }
}

struct Desc* GetPartial() {
  while (1) {
    struct Desc* d = Partial;
    if (d == 0) {
      return 0;
    }
    if (cas(&Partial, d, 0)) {
      return d;
    }
  }
  return 0;
}

void PutPartial(struct Desc* d) {
  cas(&Partial, 0, d);     // best effort: drop if the slot is taken
}

int* MallocFromNewSB() {
  struct Desc* d = DescAlloc();
  int* sb = pagealloc(NBLOCKS * BLK);
  d->sb = sb;
  d->maxcount = NBLOCKS;
  int i = 1;
  while (i < NBLOCKS) {
    sb[i * BLK] = i + 1;             // thread the block free list
    i = i + 1;
  }
  // Reserve block 0 for the caller: avail=1, count=NBLOCKS-1, tag=1.
  d->anchor = (1 << 16) | ((NBLOCKS - 1) << 8) | 1;
  if (cas(&Active, 0, d)) {
    sb[0] = d;                       // block header -> descriptor
    return sb + 1;
  }
  pagefree(sb);
  DescRetire(d);
  return 0;
}

int* malloc() {
  while (1) {
    struct Desc* desc = Active;
    if (desc != 0) {
      // MallocFromActive
      int a = desc->anchor;
      int avail = a & 255;
      int count = (a >> 8) & 255;
      int tag = a >> 16;
      if (count == 0) {
        cas(&Active, desc, 0);       // superblock exhausted
        continue;
      }
      int* sb = desc->sb;
      int nextavail = sb[avail * BLK];
      if (cas(&desc->anchor, a,
              ((tag + 1) << 16) | ((count - 1) << 8) | nextavail)) {
        int* block = sb + avail * BLK;
        block[0] = desc;             // block header -> descriptor
        return block + 1;
      }
    } else {
      // MallocFromPartial: reactivate a superblock that regained blocks.
      struct Desc* d = GetPartial();
      if (d != 0) {
        int pa = d->anchor;
        if (((pa >> 8) & 255) > 0) {
          if (!cas(&Active, 0, d)) {
            PutPartial(d);           // lost the race: stash it back
          }
          continue;
        }
        continue;                    // still full: drop it, free() returns it
      }
      int* p = MallocFromNewSB();
      if (p != 0) {
        return p;
      }
    }
  }
  return 0;
}

void free(int* p) {
  int* block = p - 1;
  struct Desc* desc = block[0];
  int* sb = desc->sb;
  int idx = (block - sb) / BLK;
  while (1) {
    int a = desc->anchor;
    int count = (a >> 8) & 255;
    int tag = a >> 16;
    block[0] = a & 255;              // link the block onto the free list
    if (cas(&desc->anchor, a,
            ((tag + 1) << 16) | ((count + 1) << 8) | idx)) {
      if (count == 0 && desc != Active) {
        // The superblock was full and is inactive: make it reusable.
        PutPartial(desc);
      }
      return;
    }
  }
}

int slots[8];              // pointer parking for the stress client

// ---- clients: the paper's  mmmfff | mfmf  workload -------------------

void worker_mfmf() {
  int* p1 = malloc();
  *p1 = 101;
  free(p1);
  int* p2 = malloc();
  *p2 = 102;
  free(p2);
}

void worker_mmff() {
  int* p1 = malloc();
  int* p2 = malloc();
  *p1 = 201;
  *p2 = 202;
  free(p1);
  free(p2);
}

int client0() {
  int tid = fork(worker_mfmf);
  int* a = malloc();
  int* b = malloc();
  int* c = malloc();
  *a = 1;
  *b = 2;
  *c = 3;
  free(a);
  free(b);
  free(c);
  join(tid);
  return 0;
}

int client1() {
  int tid = fork(worker_mmff);
  int* a = malloc();
  *a = 4;
  free(a);
  int* b = malloc();
  *b = 5;
  free(b);
  join(tid);
  return 0;
}

int client2() {
  int* a = malloc();
  int tid = fork(worker_mfmf);
  free(a);
  int* b = malloc();
  int* c = malloc();
  free(c);
  free(b);
  join(tid);
  return 0;
}

void worker_stress() {
  int* a = malloc();
  int* b = malloc();
  *a = 301;
  free(a);
  int* c = malloc();
  *b = 302;
  *c = 303;
  free(b);
  free(c);
}

int client3() {
  // Exhausts the first superblock (NBLOCKS=8) under contention, forcing
  // deactivation, a fresh superblock, and partial-superblock reuse.
  int tid = fork(worker_stress);
  for (int i = 0; i < 6; i = i + 1) {
    slots[i] = malloc();
  }
  for (int i = 0; i < 6; i = i + 1) {
    free(slots[i]);
  }
  join(tid);
  return 0;
}
"""

MICHAEL_ALLOCATOR = AlgorithmBundle(
    name="michael_allocator",
    description="Michael's scalable lock-free memory allocator [21]: "
                "CAS-packed anchors, Active descriptor, descriptor "
                "retirement list",
    source=_ALLOCATOR_SOURCE,
    entries=("client0", "client1", "client2", "client3"),
    operations=("malloc", "free"),
    seq_spec=AllocatorSpec,
    supports=("memory_safety", "sc", "lin"),
    notes="Paper: TSO needs nothing; PSO memory safety needs fences in "
          "MallocFromNewSB, DescAlloc and DescRetire; SC/linearizability "
          "add one more in free.",
)
