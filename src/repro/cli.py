"""Command-line interface — the reproduction's ``dfence`` front door.

Three modes:

* named benchmarks::

      python -m repro --algorithm chase_lev --model pso --spec sc

* user MiniC files (with an explicit sequential spec for history
  checking, or plain memory safety)::

      python -m repro myqueue.c --model pso --spec memory_safety \\
          --entries client0,client1

* the differential fuzzing campaign (random programs through the
  cross-model oracle suite)::

      python -m repro fuzz --seed 0 --iters 50 --model tso --model pso

Prints a round-by-round summary, the synthesized fence placements, and —
for MiniC inputs — the source annotated with the inserted fences.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .algorithms import ALGORITHMS
from .minic import compile_source
from .obs import ProgressReporter, Recorder, SpanTracer
from .spec import (
    LinearizabilitySpec,
    MemorySafetySpec,
    QueueSpec,
    SequentialConsistencySpec,
    SetSpec,
    StackSpec,
    WSQDequeSpec,
)
from .synth import (
    SynthesisConfig,
    SynthesisEngine,
    annotate_source,
    format_metrics,
    summarize,
)

#: Named sequential specs available from the command line.
SEQ_SPECS = {
    "queue": QueueSpec,
    "stack": StackSpec,
    "set": SetSpec,
    "wsq": WSQDequeSpec,
}


def _workers_arg(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            "must be 0 (one per CPU) or a positive worker count")
    return value


def _nonnegative_arg(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic fence synthesis for relaxed memory models "
                    "(PLDI 2012 reproduction)")
    parser.add_argument("source", nargs="?",
                        help="MiniC source file (omit when using "
                             "--algorithm)")
    parser.add_argument("--algorithm", "-a", choices=sorted(ALGORITHMS),
                        help="run a built-in Table-2 benchmark")
    parser.add_argument("--model", "-m", default="pso",
                        choices=["sc", "tso", "pso"],
                        help="memory model (default: pso)")
    parser.add_argument("--spec", "-s", default="memory_safety",
                        help="memory_safety, sc or lin (default: "
                             "memory_safety)")
    parser.add_argument("--seq-spec", choices=sorted(SEQ_SPECS),
                        help="sequential spec for sc/lin checking of a "
                             "MiniC file (queue/stack/set/wsq)")
    parser.add_argument("--entries", default="main",
                        help="comma-separated client entry functions "
                             "(default: main)")
    parser.add_argument("--operations", default="",
                        help="comma-separated operation names to record")
    parser.add_argument("--executions", "-k", type=int, default=400,
                        help="executions per round (default: 400)")
    parser.add_argument("--rounds", type=int, default=12,
                        help="maximum repair rounds (default: 12)")
    parser.add_argument("--flush-prob", type=float, default=None,
                        help="scheduler flush probability (default: "
                             "algorithm tuning, or 0.1/0.3 by model)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", "-j", type=_workers_arg, default=None,
                        help="worker processes for round execution "
                             "(default: in-process serial; 0 = one per "
                             "CPU; results are identical either way)")
    parser.add_argument("--witness-limit", type=_nonnegative_arg,
                        default=5, metavar="N",
                        help="violation witnesses kept per round "
                             "(default: 5; 0 disables)")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a Chrome trace-event JSON of the run "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics block (counters, "
                             "histograms, timing) after the summary")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="live round-by-round progress on stderr")
    parser.add_argument("--annotate", action="store_true",
                        help="print the source annotated with fences")
    parser.add_argument("--check-only", action="store_true",
                        help="only report violations; do not repair")
    parser.add_argument("--explore", action="store_true",
                        help="exhaustively enumerate schedules of a MiniC "
                             "file (or a litmus catalog name) and print "
                             "the exact outcome set per memory model")
    parser.add_argument("--max-paths", type=int, default=20_000,
                        metavar="N",
                        help="path budget per --explore enumeration "
                             "(default: 20000); an exhausted budget is "
                             "reported loudly — the outcome set is then "
                             "only a lower bound")
    parser.add_argument("--reduction", default="sleep+cache",
                        choices=["none", "sleep", "sleep+cache"],
                        help="partial-order reduction level for --explore "
                             "(default: sleep+cache; every level yields "
                             "the same outcome set — 'none' mirrors the "
                             "replay baseline path-for-path)")
    parser.add_argument("--explore-workers", type=_workers_arg,
                        default=None, metavar="N",
                        help="worker processes for --explore subtree "
                             "fan-out (default: serial; 0 = one per CPU)")
    parser.add_argument("--no-compile", action="store_true",
                        help="run the audited generic interpreter instead "
                             "of the closure-compiled VM (slower; results "
                             "are identical)")
    parser.add_argument("--profile", action="store_true",
                        help="run the command under cProfile and append "
                             "the top-20 cumulative entries to the report")
    return parser


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Differential fuzzing: generate random concurrent "
                    "MiniC programs and cross-check the semantics, the "
                    "explorer, the random scheduler, and the synthesis "
                    "engine against each other")
    parser.add_argument("--seed", type=int, default=0,
                        help="first generator seed (default: 0)")
    parser.add_argument("--iters", "-n", type=int, default=50,
                        help="number of programs, consecutive seeds "
                             "(default: 50)")
    parser.add_argument("--model", action="append", dest="models",
                        choices=["tso", "pso"], metavar="MODEL",
                        help="relaxed model(s) to differentiate against "
                             "SC; repeatable (default: tso and pso)")
    parser.add_argument("--max-paths", type=int, default=None, metavar="N",
                        help="path budget per exploration (default: "
                             "50000)")
    parser.add_argument("--max-total-paths", type=int, default=None,
                        metavar="N",
                        help="path budget for one program's whole oracle "
                             "suite (default: 250000)")
    parser.add_argument("--reduction", default="sleep+cache",
                        choices=["none", "sleep", "sleep+cache"],
                        help="partial-order reduction level for oracle "
                             "explorations (default: sleep+cache)")
    parser.add_argument("--explore-workers", type=_workers_arg,
                        default=None, metavar="N",
                        help="worker processes per exploration (default: "
                             "serial; 0 = one per CPU)")
    parser.add_argument("--corpus-dir", metavar="DIR",
                        help="write shrunk reproducers of failing seeds "
                             "into DIR (e.g. tests/corpus)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging failures (faster, "
                             "bigger reproducers)")
    parser.add_argument("--no-compile", action="store_true",
                        help="run the audited generic interpreter instead "
                             "of the closure-compiled VM (slower; results "
                             "are identical)")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="per-seed progress on stderr")
    return parser


def _select_interpreter() -> None:
    """Make the generic interpreter the process-wide default backend.

    Also exports ``REPRO_NO_COMPILE`` so multiprocess workers spawned
    later (which re-read the environment default) follow suit.
    """
    import os

    from .vm.compile import set_compiled_default

    set_compiled_default(False)
    os.environ["REPRO_NO_COMPILE"] = "1"


def _profiled(fn, args) -> int:
    """Run *fn(args)* under cProfile; append the top-20 entries."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(fn, args)
    finally:
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(20)
        print("profile (top 20 by cumulative time):")
        print(stream.getvalue().rstrip())


def _fuzz(argv: List[str]) -> int:
    from .fuzz import OracleConfig, run_campaign

    args = build_fuzz_parser().parse_args(argv)
    if args.no_compile:
        _select_interpreter()
    oracle_kwargs = {}
    if args.models:
        oracle_kwargs["models"] = tuple(dict.fromkeys(args.models))
    if args.max_paths is not None:
        oracle_kwargs["max_paths"] = args.max_paths
    if args.max_total_paths is not None:
        oracle_kwargs["max_total_paths"] = args.max_total_paths
    oracle_kwargs["reduction"] = args.reduction
    oracle_kwargs["explore_workers"] = args.explore_workers

    progress = None
    if args.verbose:
        def progress(iteration, program, oracle_report):
            print("  seed %d: %d stmts, %d threads, %s"
                  % (program.seed, program.statement_count(),
                     len(program.threads), oracle_report),
                  file=sys.stderr)

    report = run_campaign(
        seed=args.seed, iters=args.iters,
        oracle_config=OracleConfig(**oracle_kwargs),
        corpus_dir=args.corpus_dir,
        shrink_failures=not args.no_shrink,
        progress=progress)
    print(report.summary())
    return 0 if report.ok else 1


def _spec_for(args, bundle) -> object:
    if bundle is not None:
        return bundle.spec(args.spec)
    if args.spec == "memory_safety":
        return MemorySafetySpec()
    if args.seq_spec is None:
        raise SystemExit("--spec %s needs --seq-spec for a MiniC file"
                         % args.spec)
    seq = SEQ_SPECS[args.seq_spec]()
    if args.spec == "sc":
        return SequentialConsistencySpec(seq)
    if args.spec == "lin":
        return LinearizabilitySpec(seq)
    raise SystemExit("unknown spec %r (memory_safety/sc/lin)" % args.spec)


def _explore(args) -> int:
    from .litmus import LITMUS_TESTS, thread_results
    from .sched.explorer import explore

    if args.source in LITMUS_TESTS:
        module = LITMUS_TESTS[args.source].compile()
        print("litmus %r: %s" % (args.source,
                                 LITMUS_TESTS[args.source].description))
    elif args.source:
        with open(args.source) as handle:
            module = compile_source(handle.read(), args.source)
    else:
        raise SystemExit("--explore needs a MiniC file or a litmus name "
                         "(%s)" % ", ".join(sorted(LITMUS_TESTS)))

    truncated = []
    for model in ("sc", "tso", "pso"):
        result = explore(module, model, outcome_fn=thread_results,
                         max_paths=args.max_paths,
                         reduction=args.reduction,
                         workers=args.explore_workers)
        status = "exact" if result.complete else "BUDGET EXHAUSTED"
        outcomes = ", ".join(str(o) for o in sorted(result.outcomes))
        print("%-4s (%6d paths, %s): %s"
              % (model.upper(), result.paths, status, outcomes))
        stats = result.stats
        if stats is not None and stats.estimated_unreduced > stats.paths:
            print("     reduction: >=%d unreduced paths (%.1fx; "
                  "%d slept, %d cache hits)"
                  % (stats.estimated_unreduced,
                     stats.estimated_unreduced / max(1, stats.paths),
                     stats.pruned, stats.cache_hits))
        for violation in sorted(result.violations):
            print("     violation: %s" % violation[:100])
        if not result.complete:
            truncated.append(model.upper())
    if truncated:
        print("warning: path budget (%d) exhausted under %s — those "
              "outcome sets are lower bounds, not exact; rerun with a "
              "larger --max-paths" % (args.max_paths, ", ".join(truncated)),
              file=sys.stderr)
        return 3
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        return _fuzz(argv[1:])
    args = build_parser().parse_args(argv)
    if args.no_compile:
        _select_interpreter()
    if args.profile:
        return _profiled(_run_command, args)
    return _run_command(args)


def _run_command(args) -> int:
    """The parsed command body (separate so --profile can wrap it)."""
    if args.explore:
        return _explore(args)
    if (args.source is None) == (args.algorithm is None):
        raise SystemExit("give exactly one of a MiniC file or --algorithm")

    if args.algorithm:
        bundle = ALGORITHMS[args.algorithm]
        module = bundle.compile()
        entries = bundle.entries
        operations = bundle.operations
        flush_prob = args.flush_prob
        if flush_prob is None:
            flush_prob = bundle.flush_prob.get(args.model, 0.3)
    else:
        bundle = None
        with open(args.source) as handle:
            module = compile_source(handle.read(), args.source)
        entries = tuple(e for e in args.entries.split(",") if e)
        operations = tuple(o for o in args.operations.split(",") if o)
        flush_prob = args.flush_prob
        if flush_prob is None:
            flush_prob = 0.1 if args.model == "tso" else 0.3

    spec = _spec_for(args, bundle)
    config = SynthesisConfig(
        memory_model=args.model, flush_prob=flush_prob,
        executions_per_round=args.executions, max_rounds=args.rounds,
        seed=args.seed, workers=args.workers,
        witness_limit=args.witness_limit,
        compiled=False if args.no_compile else None)
    recorder = _make_recorder(args)
    engine = SynthesisEngine(config, recorder=recorder)

    if args.check_only:
        stats = engine.test_program(
            module, spec, entries=entries, operations=operations)
        print("%d violations in %d executions (%d discarded)"
              % (stats.violations, stats.runs, stats.discarded))
        if stats.example:
            print("e.g. %s" % stats.example)
        _emit_observability(args, recorder)
        return 1 if stats.violations else 0

    result = engine.synthesize(module, spec, entries=entries,
                               operations=operations)
    metrics = recorder.snapshot() if args.metrics else None
    print(summarize(result, metrics=metrics))
    if args.annotate and result.program.source:
        print()
        print(annotate_source(result))
    _emit_observability(args, recorder, metrics_done=True)
    return 0 if result.outcome.value == "clean" else 2


def _make_recorder(args) -> Optional[Recorder]:
    """Build the observability recorder the flags ask for (or None)."""
    if not (args.trace or args.metrics or args.verbose):
        return None
    return Recorder(
        tracer=SpanTracer() if args.trace else None,
        progress=ProgressReporter(sys.stderr) if args.verbose else None)


def _emit_observability(args, recorder: Optional[Recorder],
                        metrics_done: bool = False) -> None:
    """Flush recorder outputs: the trace file and a metrics block."""
    if recorder is None:
        return
    if args.metrics and not metrics_done:
        print(format_metrics(recorder.snapshot()))
    if args.trace:
        recorder.write_trace(args.trace)
        if args.verbose:
            print("trace written to %s" % args.trace, file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
