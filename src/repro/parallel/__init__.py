"""Parallel execution backends for the synthesis engine.

The engine's cost is dominated by rounds of independent executions under
the flush-delaying scheduler; this package fans those rounds out across
worker processes while keeping results byte-identical to the serial
backend (summaries are merged in execution-index order).
"""

from .pool import ExecutionPool, Job, make_pool, resolve_workers
from .process import ProcessPool
from .serial import SerialPool, run_jobs
from .summary import ExecutionSummary, summarize_execution

__all__ = [
    "ExecutionPool", "ExecutionSummary", "Job", "ProcessPool",
    "SerialPool", "make_pool", "resolve_workers", "run_jobs",
    "summarize_execution",
]
