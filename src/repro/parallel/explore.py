"""Parallel subtree fan-out for the snapshot explorer.

The exhaustive choice tree splits naturally at the top: the parent
expands a shallow *frontier* of subtree roots (choice-index prefixes,
each carrying the sleep set the serial DFS would reach it with, so
cross-subtree sleep pruning survives the split), ships one task per
subtree root to a ``ProcessPoolExecutor``, and merges results in
submission (tree) order — the same deterministic-merge contract as
:class:`~repro.parallel.process.ProcessPool`.

Because sleep sets flow strictly *down* the tree, exploring the subtrees
in separate processes visits exactly the interleavings the serial
sleep-set DFS would: outcome and violation sets are identical for
complete runs.  The state cache (``sleep+cache``) is per-worker, so a
parallel run may explore more paths than a serial cached run — never
fewer outcomes.

Payloads must cross a process boundary: if the module, a custom model
factory, or a custom outcome function cannot be pickled, ``run_parallel``
returns ``None`` and the caller falls back to the serial engine.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Set, Tuple

from .pool import resolve_workers
from .process import _mp_context

#: Target number of subtree tasks per worker: >1 for load balancing
#: (subtree sizes are wildly uneven), small enough that the parent's
#: frontier expansion stays a negligible fraction of the search.
SUBTREES_PER_WORKER = 4

#: Never split deeper than this many choices: the frontier is expanded
#: by replaying prefixes, which is O(depth) per node.
MAX_SPLIT_DEPTH = 6


def plan_workers(workers: Optional[int]) -> int:
    """Map the ``workers`` knob to a process count for the explorer.

    ``None`` or ``1`` → serial; ``0`` → one per CPU; ``n`` → exactly n.
    """
    if workers is None:
        return 1
    return resolve_workers(workers) or 1


def _run_subtree(payload):
    from ..sched.explorer import explore_subtree
    return explore_subtree(*payload)


def run_parallel(module, model_factory, model_name, entry, outcome_fn,
                 outcome_globals, reduction, max_paths, max_steps,
                 count, stats, outcomes: Set[Tuple],
                 violations: Set[str],
                 compiled: Optional[bool] = None):
    """Explore by fanning top-level subtrees across *count* processes.

    Mutates *stats*/*outcomes*/*violations* and returns an
    :class:`~repro.sched.exhaustive.ExplorationResult`, or ``None`` when
    the fan-out is not applicable (unpicklable payload, tree too small,
    broken pool) — in which case the shared accumulators are untouched
    and the caller runs serially.

    The path budget is per-subtree (each task gets the full
    ``max_paths``), so a truncated parallel run can report more paths
    than a serial one; complete runs report exact counts.
    """
    from ..memory.models import make_model
    from ..sched.exhaustive import ExplorationResult
    from ..sched.explorer import (
        ExploreStats,
        _expand_frontier,
        _make_outcome_fn,
    )

    try:
        pickle.dumps((module, model_factory, outcome_fn),
                     protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None

    if model_factory is None:
        parent_factory = lambda: make_model(model_name)  # noqa: E731
    else:
        parent_factory = model_factory
    parent_outcome = outcome_fn or _make_outcome_fn(outcome_globals)

    front_stats = ExploreStats()
    front_outcomes: Set[Tuple] = set()
    front_violations: Set[str] = set()
    tasks = _expand_frontier(
        module, parent_factory, entry, parent_outcome, max_steps,
        count * SUBTREES_PER_WORKER, MAX_SPLIT_DEPTH,
        reduction != "none", front_stats, front_outcomes, front_violations,
        compiled=compiled)
    if len(tasks) <= 1:
        return None  # tree too small to split; serial recomputes it

    payloads = [
        (module, model_factory, model_name, entry, outcome_fn,
         tuple(outcome_globals), prefix, sleep_items, reduction,
         max_paths, max_steps, compiled)
        for prefix, sleep_items in tasks
    ]
    try:
        with ProcessPoolExecutor(max_workers=min(count, len(tasks)),
                                 mp_context=_mp_context()) as executor:
            futures = [executor.submit(_run_subtree, payload)
                       for payload in payloads]
            results = [future.result() for future in futures]
    except Exception:
        return None  # broken pool / worker crash: serial fallback

    # Index-ordered deterministic merge (submission order == tree order).
    stats.merge(front_stats)
    outcomes |= front_outcomes
    violations |= front_violations
    complete = True
    for sub_outcomes, sub_violations, _paths, sub_complete, sub_stats in results:
        outcomes |= sub_outcomes
        violations |= sub_violations
        stats.merge(sub_stats)
        complete = complete and sub_complete
    stats.subtrees = len(tasks)
    return ExplorationResult(outcomes, stats.paths, complete, violations,
                             stats=stats)
