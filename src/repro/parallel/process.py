"""The multiprocess execution backend.

Built on :class:`concurrent.futures.ProcessPoolExecutor`:

* A per-worker initializer installs the static run configuration (memory
  model name, flush probability, POR, step budget) and allocates one
  long-lived :class:`StoreBufferModel` + :class:`PredicateSink` pair that
  every execution in that worker reuses.
* The engine broadcasts the module under repair (and the spec) as one
  pickled blob per round; each *batch* submission carries the blob plus
  its version, and a worker deserializes it only when the version moved —
  i.e. once per worker per round, re-broadcast after every ``enforce()``.
* Jobs are shipped in batches (chunks) to amortize IPC, and come back as
  compact :class:`ExecutionSummary` records, never live VM objects.

``run`` yields summaries in execution-index order regardless of worker
scheduling: batches are submitted in index order and their futures are
consumed in submission order.  Closing the generator early cancels every
batch that has not started yet.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Iterator, List, Optional, Sequence

from ..ir.module import Module
from ..memory.models import make_model
from ..memory.predicates import PredicateSink
from ..spec.specifications import Specification
from ..vm.interp import DEFAULT_MAX_STEPS
from .pool import ExecutionPool, Job
from .serial import run_jobs
from .summary import ExecutionSummary

#: Target number of batches per worker: >1 so a slow batch cannot stall
#: the round (load balancing), small enough to amortize per-batch IPC.
BATCHES_PER_WORKER = 4

# ----------------------------------------------------------------------
# Worker-side state (one copy per worker process)

_worker_state: dict = {}


def _init_worker(model_name: str, flush_prob: float, por: bool,
                 max_steps: int, compiled: Optional[bool] = None) -> None:
    """Per-worker initializer: static config + reusable model and sink."""
    _worker_state.clear()
    _worker_state.update(
        model=make_model(model_name),
        sink=PredicateSink(),
        flush_prob=flush_prob,
        por=por,
        max_steps=max_steps,
        compiled=compiled,
        version=None,
        module=None,
        spec=None,
        operations=(),
        worker="pid%d" % os.getpid(),
    )


def _run_batch(version: int, blob: bytes,
               jobs: List[Job]) -> List[ExecutionSummary]:
    """Execute one batch of jobs against the blob's module snapshot."""
    state = _worker_state
    if state.get("version") != version:
        module, spec, operations = pickle.loads(blob)
        state["version"] = version
        state["module"] = module
        state["spec"] = spec
        state["operations"] = operations
    return list(run_jobs(jobs, state["module"], state["spec"],
                         state["operations"], state["model"], state["sink"],
                         state["flush_prob"], state["por"],
                         state["max_steps"], worker=state["worker"],
                         compiled=state.get("compiled")))


def _mp_context():
    """Prefer fork (cheap workers, no re-import) where it exists."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ----------------------------------------------------------------------


class ProcessPool(ExecutionPool):
    """Fans rounds of executions out to worker processes."""

    def __init__(self, workers: int, model_name: str, flush_prob: float,
                 por: bool = True, max_steps: int = DEFAULT_MAX_STEPS,
                 chunk_size: Optional[int] = None,
                 compiled: Optional[bool] = None) -> None:
        if workers < 1:
            raise ValueError("ProcessPool needs at least one worker")
        self.workers = workers
        self.model_name = model_name
        self.flush_prob = flush_prob
        self.por = por
        self.max_steps = max_steps
        self.chunk_size = chunk_size
        self.compiled = compiled
        self._executor: Optional[ProcessPoolExecutor] = None
        self._version = 0
        self._blob: Optional[bytes] = None

    # -- lifecycle -----------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=_mp_context(),
                initializer=_init_worker,
                initargs=(self.model_name, self.flush_prob, self.por,
                          self.max_steps, self.compiled))
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- round protocol ------------------------------------------------

    def broadcast(self, module: Module, spec: Specification,
                  operations: Sequence[str] = ()) -> None:
        """Pickle the module snapshot once; workers deserialize lazily."""
        self._version += 1
        self._blob = pickle.dumps(
            (module, spec, tuple(operations)),
            protocol=pickle.HIGHEST_PROTOCOL)

    def _chunk(self, jobs: List[Job]) -> List[List[Job]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(jobs) // (self.workers * BATCHES_PER_WORKER)))
        return [jobs[i:i + size] for i in range(0, len(jobs), size)]

    def run(self, jobs: Iterable[Job]) -> Iterator[ExecutionSummary]:
        if self._blob is None:
            raise RuntimeError("broadcast() must be called before run()")
        job_list = list(jobs)
        return self._run_batches(job_list)

    def _run_batches(self, job_list: List[Job]
                     ) -> Iterator[ExecutionSummary]:
        if not job_list:
            return
        executor = self._ensure_executor()
        futures = [executor.submit(_run_batch, self._version, self._blob,
                                   batch)
                   for batch in self._chunk(job_list)]
        try:
            for future in futures:
                for summary in future.result():
                    yield summary
        finally:
            # Early generator close (engine round decided, test_program
            # early stop): drop every batch that has not started.
            for future in futures:
                future.cancel()
