"""The :class:`ExecutionPool` abstraction and its factory.

A pool runs *rounds* of independent executions — the inner loop of the
paper's Algorithm 1 — against a broadcast snapshot of the module under
repair.  Two implementations exist:

* :class:`~repro.parallel.serial.SerialPool` — runs jobs in-process, in
  order.  Zero dependencies, zero IPC; the default.
* :class:`~repro.parallel.process.ProcessPool` — fans batches of jobs out
  to ``concurrent.futures.ProcessPoolExecutor`` workers.

Both yield :class:`~repro.parallel.summary.ExecutionSummary` records in
strict execution-index order, which is the determinism contract: the
engine folds summaries in index order, so ``SynthesisResult`` (outcome,
example violations, witness caps, clause order, chosen repair) does not
depend on worker scheduling.  A property test asserts serial ≡ parallel.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from ..ir.module import Module
from ..spec.specifications import Specification
from ..vm.interp import DEFAULT_MAX_STEPS
from .summary import ExecutionSummary

#: One execution job: ``(index, entry_function, scheduler_seed)``.
Job = Tuple[int, str, int]


class ExecutionPool:
    """Runs rounds of executions against a broadcast module snapshot.

    Lifecycle::

        pool.broadcast(module, spec, operations)   # before each round /
                                                   # after each enforce()
        for summary in pool.run(jobs):             # index-ordered
            ...
        pool.close()

    ``run`` returns a generator; closing it early (e.g. ``break``) cancels
    outstanding work where the backend supports cancellation.
    """

    def broadcast(self, module: Module, spec: Specification,
                  operations: Sequence[str] = ()) -> None:
        """Publish the (possibly repaired) module and spec to workers."""
        raise NotImplementedError

    def run(self, jobs: Iterable[Job]) -> Iterator[ExecutionSummary]:
        """Execute *jobs*, yielding summaries in execution-index order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "ExecutionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def resolve_workers(workers: Optional[int]) -> int:
    """Map the ``workers`` knob to a process count.

    ``None`` → 0 (serial backend); ``0`` → one worker per CPU;
    ``n >= 1`` → exactly n workers.
    """
    if workers is None:
        return 0
    if workers < 0:
        raise ValueError("workers must be None, 0, or positive")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def make_pool(workers: Optional[int], model_name: str,
              flush_prob: float, por: bool = True,
              max_steps: int = DEFAULT_MAX_STEPS,
              chunk_size: Optional[int] = None,
              compiled: Optional[bool] = None) -> ExecutionPool:
    """Build the execution backend selected by *workers*.

    ``None`` selects :class:`SerialPool`; ``0`` selects a
    :class:`ProcessPool` sized to ``os.cpu_count()``; a positive integer
    selects a :class:`ProcessPool` with exactly that many workers.
    """
    from .process import ProcessPool
    from .serial import SerialPool

    count = resolve_workers(workers)
    if count == 0:
        return SerialPool(model_name, flush_prob, por=por,
                          max_steps=max_steps, compiled=compiled)
    return ProcessPool(count, model_name, flush_prob, por=por,
                       max_steps=max_steps, chunk_size=chunk_size,
                       compiled=compiled)
