"""Compact, picklable per-execution records.

Worker processes cannot (cheaply) ship live VM objects back to the
engine, so each execution is condensed into an :class:`ExecutionSummary`:
plain tuples and strings only, small enough that a round of hundreds of
executions costs little IPC.  The summary carries everything the merge
step needs — status, the spec verdict, the ``avoid(p)`` predicate tuples,
the operation history events, and the (entry, seed) pair that makes the
execution reproducible as a :class:`~repro.sched.replay.Witness`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ir.instructions import FenceKind
from ..memory.predicates import OrderingPredicate
from ..vm.driver import ExecutionResult, ExecutionStatus
from ..vm.events import History

#: ``(store_label, access_label, fence_kind_value)``
PredicateTuple = Tuple[int, int, str]

#: ``(tid, name, args, result, call_seq, ret_seq)``
OperationTuple = Tuple[int, str, Tuple[int, ...], Optional[int],
                       int, Optional[int]]

_UNUSABLE = (ExecutionStatus.TIMEOUT.value, ExecutionStatus.DEADLOCK.value)


#: Per-execution metric payload: ``(flushes, max_buffer_depth)``.
MetricsTuple = Tuple[int, int]


class ExecutionSummary:
    """One execution, flattened for IPC and deterministic merging.

    ``index`` is the execution's global position in its round; the merge
    step folds summaries in increasing index order, which is what makes
    the parallel backend byte-compatible with the serial one.

    ``metrics`` carries the deterministic per-execution observability
    counters (a :data:`MetricsTuple`); ``worker`` tags which backend
    worker ran the job.  The worker tag is transport metadata — it
    differs between backends by construction, so it is excluded from
    equality and never feeds the deterministic metric aggregates.
    """

    __slots__ = ("index", "entry", "seed", "status", "error", "steps",
                 "predicates", "operations", "violation", "metrics",
                 "worker")

    #: Slots compared by ``__eq__`` — everything except ``worker``.
    _PAYLOAD_SLOTS = ("index", "entry", "seed", "status", "error", "steps",
                      "predicates", "operations", "violation", "metrics")

    def __init__(self, index: int, entry: str, seed: int, status: str,
                 error: Optional[str], steps: int,
                 predicates: Tuple[PredicateTuple, ...],
                 operations: Tuple[OperationTuple, ...],
                 violation: Optional[str],
                 metrics: MetricsTuple = (0, 0),
                 worker: Optional[str] = None) -> None:
        self.index = index
        self.entry = entry
        self.seed = seed
        self.status = status            # ExecutionStatus value string
        self.error = error
        self.steps = steps
        self.predicates = predicates
        self.operations = operations
        self.violation = violation      # spec.check message, None if OK
        self.metrics = metrics
        self.worker = worker

    # -- pickling (needed explicitly because of __slots__) -------------

    def __reduce__(self):
        return (ExecutionSummary,
                (self.index, self.entry, self.seed, self.status, self.error,
                 self.steps, self.predicates, self.operations,
                 self.violation, self.metrics, self.worker))

    # -- derived views -------------------------------------------------

    @property
    def usable(self) -> bool:
        """True if the run is meaningful for checking (not cut off)."""
        return self.status not in _UNUSABLE

    def predicate_objects(self) -> List[OrderingPredicate]:
        """Rebuild the ``avoid(p)`` disjunction, in recorded order."""
        return [OrderingPredicate(l, k, FenceKind(kind))
                for (l, k, kind) in self.predicates]

    def history(self) -> History:
        """Rebuild the operation history (debugging / reporting)."""
        history = History()
        for (tid, name, args, result, call_seq, ret_seq) in self.operations:
            op = history.begin(tid, name, args, call_seq)
            op.result = result
            op.ret_seq = ret_seq
        return history

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecutionSummary):
            return NotImplemented
        return all(getattr(self, slot) == getattr(other, slot)
                   for slot in ExecutionSummary._PAYLOAD_SLOTS)

    def __hash__(self) -> int:
        return hash((self.index, self.entry, self.seed, self.status))

    def __repr__(self) -> str:
        return "<ExecutionSummary #%d %s/%d %s%s>" % (
            self.index, self.entry, self.seed, self.status,
            " VIOLATION" if self.violation else "")


def summarize_execution(index: int, entry: str, seed: int,
                        result: ExecutionResult,
                        violation: Optional[str],
                        worker: Optional[str] = None) -> ExecutionSummary:
    """Flatten one :class:`ExecutionResult` into a summary record."""
    predicates = tuple((p.store_label, p.access_label, p.kind.value)
                       for p in result.predicates)
    operations = tuple((op.tid, op.name, op.args, op.result,
                        op.call_seq, op.ret_seq)
                       for op in result.history)
    return ExecutionSummary(index, entry, seed, result.status.value,
                            result.error, result.steps, predicates,
                            operations, violation,
                            metrics=(result.flushes,
                                     result.max_buffer_depth),
                            worker=worker)
