"""The in-process execution backend (current behaviour, no dependencies).

One memory-model instance and one predicate sink are allocated per pool
and reused across every execution — the same worker-loop discipline the
process backend applies per worker, so the two backends share one code
path for the actual run+check step (:func:`run_jobs`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..ir.module import Module
from ..memory.models import StoreBufferModel, make_model
from ..memory.predicates import PredicateSink
from ..sched.flush_random import FlushDelayScheduler
from ..spec.specifications import Specification
from ..vm.driver import run_execution
from ..vm.interp import DEFAULT_MAX_STEPS
from .pool import ExecutionPool, Job
from .summary import ExecutionSummary, summarize_execution


def run_jobs(jobs: Iterable[Job], module: Module, spec: Specification,
             operations: Sequence[str], model: StoreBufferModel,
             sink: PredicateSink, flush_prob: float, por: bool,
             max_steps: int,
             worker: Optional[str] = None,
             compiled: Optional[bool] = None) -> Iterator[ExecutionSummary]:
    """Run each job and yield its summary — the shared worker loop.

    The model and sink are reused across jobs (``run_execution`` resets
    them); every job gets a fresh scheduler seeded from the job itself, so
    results depend only on the job, never on loop position or backend.
    ``worker`` tags each summary with the identity of the loop that ran
    it (per-worker job-count metrics); it never affects results.
    """
    for (index, entry, seed) in jobs:
        scheduler = FlushDelayScheduler(seed=seed, flush_prob=flush_prob,
                                        por=por)
        result = run_execution(module, model, scheduler, entry=entry,
                               operations=operations, max_steps=max_steps,
                               sink=sink, compiled=compiled)
        violation = spec.check(result) if result.usable else None
        yield summarize_execution(index, entry, seed, result, violation,
                                  worker=worker)


class SerialPool(ExecutionPool):
    """Runs every job in the calling process, in submission order."""

    def __init__(self, model_name: str, flush_prob: float, por: bool = True,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 compiled: Optional[bool] = None) -> None:
        self.model_name = model_name
        self.flush_prob = flush_prob
        self.por = por
        self.max_steps = max_steps
        self.compiled = compiled
        self._model = make_model(model_name)
        self._sink = PredicateSink()
        self._module: Optional[Module] = None
        self._spec: Optional[Specification] = None
        self._operations: Sequence[str] = ()

    def broadcast(self, module: Module, spec: Specification,
                  operations: Sequence[str] = ()) -> None:
        self._module = module
        self._spec = spec
        self._operations = tuple(operations)

    def run(self, jobs: Iterable[Job]) -> Iterator[ExecutionSummary]:
        if self._module is None or self._spec is None:
            raise RuntimeError("broadcast() must be called before run()")
        return run_jobs(jobs, self._module, self._spec, self._operations,
                        self._model, self._sink, self.flush_prob, self.por,
                        self.max_steps, worker="serial",
                        compiled=self.compiled)
