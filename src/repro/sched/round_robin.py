"""A deterministic round-robin scheduler (testing / baseline).

Threads step in tid order, ``quantum`` instructions at a time; buffers are
flushed eagerly whenever a thread's quantum ends.  Under this scheduler a
data-race-free program behaves sequentially-consistently, which makes it a
useful control when testing the algorithms themselves.
"""

from __future__ import annotations

from ..vm.interp import VM
from .base import Scheduler


class RoundRobinScheduler(Scheduler):
    """Step threads in tid order with eager flushing."""

    def __init__(self, quantum: int = 1) -> None:
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum

    def run(self, vm: VM) -> None:
        while True:
            enabled = vm.enabled_tids()
            if not enabled:
                self._check_deadlock(vm)
                self._finish(vm)
                return
            for tid in sorted(enabled):
                for _ in range(self.quantum):
                    if tid not in vm.enabled_tids():
                        break
                    vm.step(tid)
                vm.model.drain(tid)
