"""Scheduler plug-ins controlling thread interleaving and flushing.

The paper's key exploration device is the *flush-delaying demonic
scheduler* (:class:`FlushDelayScheduler`): it randomly interleaves threads
and, whenever the selected thread has buffered stores, flushes with a
user-supplied *flush probability* — low probabilities keep stores buffered
long and expose relaxed behaviours, high probabilities approach SC.
"""

from .base import Scheduler
from .exhaustive import ExplorationResult
from .exhaustive import explore as explore_replay
from .explorer import REDUCTIONS, ExploreStats, explore
from .flush_random import FlushDelayScheduler
from .replay import ReplayScheduler, TracingScheduler, Witness
from .round_robin import RoundRobinScheduler

__all__ = ["ExplorationResult", "ExploreStats", "FlushDelayScheduler",
           "REDUCTIONS", "ReplayScheduler", "RoundRobinScheduler",
           "Scheduler", "TracingScheduler", "Witness", "explore",
           "explore_replay"]
