"""Exhaustive schedule exploration for litmus-sized programs.

The random flush-delaying scheduler samples the schedule space; this
module *enumerates* it.  A schedule is a sequence of choices, each either
"step thread t" or "flush one entry of (t, addr)".  The explorer performs
a stateless depth-first search over choice sequences: each path re-runs
the program from scratch following a choice prefix, then branches on
every decision point past the prefix (the standard replay-based DFS used
by stateless model checkers).

This is exact but exponential — use it on litmus tests and toy programs
to validate the memory-model semantics (see tests/test_exhaustive.py),
not on the Table-2 benchmarks.  The search honours a path budget and
reports whether it completed.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..ir.module import Module
from ..memory.models import StoreBufferModel, make_model
from ..vm.compile import make_vm
from ..vm.errors import SpecViolationError, StepLimitExceeded
from ..vm.interp import VM

#: Builds a fresh memory-model instance for one explored path.
ModelFactory = Callable[[], StoreBufferModel]

#: Per-call budget handed to ``VM.run_local`` while advancing local
#: instructions (the burst is repeated until no thread makes progress,
#: so the value only bounds work per call, not total local progress).
_LOCAL_BURST = 4096

#: A choice: ("step", tid) or ("flush", tid, addr_or_None).
Choice = Tuple

#: Outcome extractor: maps a finished VM to a hashable outcome.
OutcomeFn = Callable[[VM], Tuple]


class ExplorationResult:
    """Outcome set of an exhaustive exploration.

    ``stats`` is ``None`` for the replay baseline; the snapshot explorer
    (:mod:`repro.sched.explorer`) attaches an
    :class:`~repro.sched.explorer.ExploreStats` with reduction counters.
    """

    def __init__(self, outcomes: Set[Tuple], paths: int,
                 complete: bool, violations: Set[str],
                 stats=None) -> None:
        self.outcomes = outcomes
        self.paths = paths
        self.complete = complete
        self.violations = violations
        self.stats = stats

    def __repr__(self) -> str:
        return "<ExplorationResult %d outcomes, %d paths%s, %d violations>" \
            % (len(self.outcomes), self.paths,
               "" if self.complete else " (budget hit)",
               len(self.violations))


def _advance_local(vm: VM) -> None:
    """Eagerly run register-only instructions of every thread.

    Local steps commute with all other threads' actions, so executing
    them without branching preserves the reachable outcome set while
    collapsing the search tree (the explorer's partial-order reduction).
    Each thread's local run is executed to completion before moving to
    the next thread (rather than one op per thread round-robin) — the
    commutativity that justifies the reduction also makes the two orders
    reach the same state at every decision point, and depth-first runs
    let the compiled VM use superinstructions.
    """
    progress = True
    while progress:
        progress = False
        for tid in vm.enabled_tids():
            if vm.run_local(tid, _LOCAL_BURST, with_assert=True):
                progress = True


def _decision_options(vm: VM) -> List[Choice]:
    """All choices available in the current VM state."""
    options: List[Choice] = [("step", tid) for tid in vm.enabled_tids()]
    for tid in vm.tids_with_pending():
        if vm.model.name == "pso":
            for addr in vm.model.pending_addrs(tid):
                options.append(("flush", tid, addr))
        else:
            options.append(("flush", tid, None))
    return options


def _apply(vm: VM, choice: Choice) -> None:
    if choice[0] == "step":
        vm.step(choice[1])
    else:
        vm.flush_one(choice[1], choice[2])


def _run_with_prefix(module: Module, model_factory: ModelFactory,
                     entry: str, prefix: Sequence[int], max_steps: int,
                     outcome_fn: OutcomeFn,
                     compiled: Optional[bool] = None):
    """Replay *prefix*, then default (first option) to completion.

    Returns (choices_taken, option_counts, outcome, violation).
    """
    model = model_factory()
    vm = make_vm(module, model, compiled=compiled, entry=entry,
                 max_steps=max_steps)
    taken: List[int] = []
    counts: List[int] = []
    violation: Optional[str] = None
    outcome: Optional[Tuple] = None
    try:
        while True:
            _advance_local(vm)
            options = _decision_options(vm)
            if not options:
                break
            index = prefix[len(taken)] if len(taken) < len(prefix) else 0
            if index >= len(options):
                # A prefix recorded by a previous run must replay
                # identically (the VM is deterministic given the choice
                # sequence), so an out-of-range index means the replay
                # diverged — silently taking option 0 here would corrupt
                # the search invisibly.  Fail loudly instead.
                raise RuntimeError(
                    "stale replay branch: prefix index %d at depth %d but "
                    "only %d options — deterministic replay diverged"
                    % (index, len(taken), len(options)))
            taken.append(index)
            counts.append(len(options))
            _apply(vm, options[index])
        outcome = outcome_fn(vm)
    except SpecViolationError as exc:
        violation = str(exc)
    except StepLimitExceeded:
        violation = None  # unbounded path (e.g. spin loop): prune
    return taken, counts, outcome, violation


def explore(module: Module, model_name: str = "sc", entry: str = "main",
            outcome_globals: Sequence[str] = (),
            outcome_fn: Optional[OutcomeFn] = None,
            max_paths: int = 20_000,
            max_steps: int = 2_000,
            model_factory: Optional[ModelFactory] = None,
            compiled: Optional[bool] = None) -> ExplorationResult:
    """Enumerate schedules of *module* under *model_name*.

    Outcomes are tuples of the named globals' final values (or whatever
    ``outcome_fn`` extracts).  Paths that crash with a spec violation are
    collected separately in ``violations``.

    ``model_factory`` overrides how the per-path memory model is built
    (default: ``make_model(model_name)``).  The differential fuzzing
    oracles use it to run the explorer against deliberately broken model
    variants; the factory's models must keep the ``name`` of the model
    family they mimic, since flush-choice enumeration keys on it.
    """
    if model_factory is None:
        def model_factory():
            return make_model(model_name)
    if outcome_fn is None:
        def outcome_fn(vm: VM) -> Tuple:
            return tuple(vm.memory.read(vm.memory.global_addr[g])
                         for g in outcome_globals)

    outcomes: Set[Tuple] = set()
    violations: Set[str] = set()
    stack: List[List[int]] = [[]]
    paths = 0
    complete = True

    while stack:
        if paths >= max_paths:
            complete = False
            break
        prefix = stack.pop()
        taken, counts, outcome, violation = _run_with_prefix(
            module, model_factory, entry, prefix, max_steps, outcome_fn,
            compiled=compiled)
        paths += 1
        if outcome is not None:
            outcomes.add(outcome)
        if violation is not None:
            violations.add(violation)
        # Branch on every decision point at or past the prefix length.
        for i in range(len(prefix), len(taken)):
            for alternative in range(1, counts[i]):
                stack.append(taken[:i] + [alternative])

    return ExplorationResult(outcomes, paths, complete, violations)
