"""Snapshot-based incremental DFS explorer with partial-order reduction.

The replay-based explorer in :mod:`repro.sched.exhaustive` re-executes the
program from scratch for every path — O(depth) work per path.  This module
walks the same choice tree by *fork-and-backtrack*: at each decision point
with more than one live branch it captures a :class:`~repro.vm.interp.VMSnapshot`,
executes the first branch in place, and restores the snapshot for each
sibling — one VM step per tree edge.

On top of the incremental walk it layers two sound reductions:

* **Sleep sets** (Godefroid).  After a branch ``c`` is fully explored at a
  node, every sibling subtree carries ``c`` in its *sleep set* for as long
  as only actions independent of ``c`` execute; a slept action is never
  branched on, because the interleaving it would start is a commuted copy
  of one already explored.  Independence comes from action *footprints*
  (read/write address sets): thread-local steps, buffered stores (which
  touch only the issuing thread's own buffer), and flushes/accesses of
  disjoint addresses all commute.  Sleep sets alone still visit every
  reachable state, so outcome and violation sets are preserved exactly.
* **State caching**.  Distinct interleavings frequently converge on the
  same state (same thread frames, memory, and buffers).  A canonical hash
  of the state dedupes re-exploration, with the standard sleep-set
  proviso: a cached state only covers a revisit whose sleep set is a
  superset of the one it was first explored with.

``reduction`` selects the level: ``"none"`` (exact mirror of the replay
tree, for differential validation), ``"sleep"``, or ``"sleep+cache"``
(default).  ``workers`` > 1 additionally fans top-level subtrees out
across processes (see :mod:`repro.parallel.explore`) with an
index-ordered deterministic merge.

Caveats (documented, not enforced): the state cache keys on threads,
memory, buffers, and spawn counter — not on the step count — so if
``max_steps`` is small enough to truncate *finite* paths, a cached run
may explore outcomes past a step horizon the replay baseline stops at.
All catalog litmus tests and generated fuzz programs have bounded loops,
where budget ``max_steps`` is never the binding constraint.
"""

from __future__ import annotations

import pickle
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..ir import instructions as ins
from ..ir.module import Module
from ..memory.models import make_model
from ..obs.recorder import NULL_RECORDER
from ..vm.compile import make_vm
from ..vm.errors import SpecViolationError, StepLimitExceeded
from ..vm.interp import VM, VMSnapshot
from .exhaustive import (
    ExplorationResult,
    ModelFactory,
    OutcomeFn,
    _advance_local,
)

#: Supported reduction levels, weakest first.
REDUCTIONS = ("none", "sleep", "sleep+cache")

#: An action footprint: (is_global, reads, writes).  Global actions
#: (fences, CAS, fork/join, allocation, calls/returns — anything whose
#: commutativity we do not prove) conflict with everything.
Footprint = Tuple[bool, FrozenSet[int], FrozenSet[int]]

_EMPTY: FrozenSet[int] = frozenset()
_GLOBAL_FP: Footprint = (True, _EMPTY, _EMPTY)
#: A buffered store: appends to the issuing thread's own FIFO buffer,
#: invisible to every other thread until a *flush* commits it — so it
#: commutes with everything except that thread's own actions (which are
#: never candidates for each other's sleep sets anyway).
_LOCAL_FP: Footprint = (False, _EMPTY, _EMPTY)


class ExploreStats:
    """Reduction and snapshot counters for one exploration."""

    __slots__ = ("paths", "pruned", "cache_hits", "cache_states",
                 "snapshots", "restores", "snapshot_bytes", "subtrees")

    def __init__(self) -> None:
        self.paths = 0            # leaves reached (terminal/violation/limit)
        self.pruned = 0           # branches skipped because slept
        self.cache_hits = 0       # nodes skipped as already-explored states
        self.cache_states = 0     # distinct states entered into the cache
        self.snapshots = 0
        self.restores = 0
        self.snapshot_bytes = 0   # pickled size of the first snapshot taken
        self.subtrees = 0         # parallel fan-out tasks (0 = serial)

    def merge(self, other: "ExploreStats") -> None:
        self.paths += other.paths
        self.pruned += other.pruned
        self.cache_hits += other.cache_hits
        self.cache_states += other.cache_states
        self.snapshots += other.snapshots
        self.restores += other.restores
        if self.snapshot_bytes == 0:
            self.snapshot_bytes = other.snapshot_bytes
        self.subtrees += other.subtrees

    @property
    def estimated_unreduced(self) -> int:
        """Lower bound on the replay-baseline path count: every pruned
        branch and cache hit stands for at least one whole subtree."""
        return self.paths + self.pruned + self.cache_hits

    def as_dict(self) -> dict:
        return {
            "paths": self.paths,
            "pruned_branches": self.pruned,
            "cache_hits": self.cache_hits,
            "cache_states": self.cache_states,
            "snapshots": self.snapshots,
            "restores": self.restores,
            "snapshot_bytes": self.snapshot_bytes,
            "subtrees": self.subtrees,
            "estimated_unreduced": self.estimated_unreduced,
        }

    def __repr__(self) -> str:
        return ("<ExploreStats paths=%d pruned=%d cache_hits=%d "
                "snapshots=%d>" % (self.paths, self.pruned,
                                   self.cache_hits, self.snapshots))


# ----------------------------------------------------------------------
# Footprints and independence

def _step_footprint(vm: VM, tid: int, instr) -> Footprint:
    """The shared-state footprint of thread *tid*'s next step."""
    if instr is None:
        # Blocked-join completion: drains the target's buffers and
        # changes scheduling state — treat as global.
        return _GLOBAL_FP
    cls = instr.__class__
    if cls is ins.Load:
        addr = vm._value(instr.addr, vm.threads[tid].top)
        return (False, frozenset((addr,)), _EMPTY)
    if cls is ins.Store:
        if vm.model.name == "sc":
            # SC commits immediately: a real shared write.
            addr = vm._value(instr.addr, vm.threads[tid].top)
            return (False, _EMPTY, frozenset((addr,)))
        return _LOCAL_FP
    return _GLOBAL_FP


def _flush_footprint(addr: Optional[int]) -> Footprint:
    if addr is None:
        return _GLOBAL_FP  # unknown target: be conservative
    return (False, _EMPTY, frozenset((addr,)))


def _conflict(a: Footprint, b: Footprint) -> bool:
    """Two actions are *dependent* iff their footprints conflict."""
    if a[0] or b[0]:
        return True
    return bool(a[2] & b[2]) or bool(a[2] & b[1]) or bool(a[1] & b[2])


#: One branch option: (choice-to-apply, stable identity, footprint).
#: The identity is what sleep sets are keyed on; it must stay meaningful
#: while the action is deferred.  ("step", tid) is stable because a slept
#: thread cannot move; a TSO flush is applied as ("flush", tid, None) but
#: identified by its head address, which is pinned while slept (only the
#: thread's own global actions could drain it, and those conflict).
Option = Tuple[Tuple, Tuple, Footprint]


def _options(vm: VM) -> List[Option]:
    """Branch options in the exact order of the replay baseline's
    ``_decision_options`` (enabled tids ascending, then flushes)."""
    opts: List[Option] = []
    for tid in vm.enabled_tids():
        ident = ("step", tid)
        opts.append((ident, ident,
                     _step_footprint(vm, tid, vm.peek(tid))))
    model = vm.model
    if model.name == "pso":
        for tid in vm.tids_with_pending():
            for addr in model.pending_addrs(tid):
                ident = ("flush", tid, addr)
                opts.append((ident, ident, _flush_footprint(addr)))
    else:
        for tid in vm.tids_with_pending():
            head = model.head_addr(tid)
            opts.append((("flush", tid, None), ("flush", tid, head),
                         _flush_footprint(head)))
    return opts


# ----------------------------------------------------------------------
# State canonicalisation (dedup cache)

def _state_key(vm: VM) -> Tuple:
    """Canonical hashable encoding of the full execution state.

    Deliberately excludes the step/seq counters so interleavings that
    converge on the same state dedupe (see module caveat on
    ``max_steps``), and the history (outcome extraction for explored
    programs depends on globals and thread results only).
    """
    threads = tuple(
        (tid, thread.status.value, thread.join_target, thread.result,
         tuple((frame.fn.name, frame.ip, tuple(sorted(frame.regs.items())))
               for frame in thread.frames))
        for tid, thread in sorted(vm.threads.items()))
    return (threads, vm._next_tid, vm.memory.fingerprint(),
            vm.model.fingerprint())


# ----------------------------------------------------------------------
# The DFS core

class _Node:
    """One open interior node of the DFS tree."""

    __slots__ = ("snap", "branch", "index", "sleep", "needs_restore")

    def __init__(self, snap: Optional[VMSnapshot], branch: List[Option],
                 sleep: Dict[Tuple, Footprint]) -> None:
        self.snap = snap
        self.branch = branch
        self.index = 0
        self.sleep = sleep          # mutated: explored siblings added
        self.needs_restore = False  # first child runs on the live state


class _Search:
    """Iterative fork-and-backtrack DFS over one VM's choice tree."""

    def __init__(self, vm: VM, outcome_fn: OutcomeFn, max_paths: int,
                 use_sleep: bool, cache: Optional[dict],
                 stats: ExploreStats, outcomes: Set[Tuple],
                 violations: Set[str]) -> None:
        self.vm = vm
        self.outcome_fn = outcome_fn
        self.max_paths = max_paths
        self.use_sleep = use_sleep
        self.cache = cache
        self.stats = stats
        self.outcomes = outcomes
        self.violations = violations
        self.stack: List[_Node] = []

    def run(self, sleep: Dict[Tuple, Footprint]) -> bool:
        """Explore the subtree rooted at the VM's current state.

        Returns True iff the subtree was fully explored within budget.
        """
        vm = self.vm
        stats = self.stats
        if not self._root(sleep):
            return True
        stack = self.stack
        while stack:
            if stats.paths >= self.max_paths:
                return False
            node = stack[-1]
            if node.index >= len(node.branch):
                stack.pop()
                continue
            choice, ident, fp = node.branch[node.index]
            node.index += 1
            if node.needs_restore:
                vm.restore(node.snap, consume=node.index >= len(node.branch))
                stats.restores += 1
            node.needs_restore = True
            if self.use_sleep:
                child_sleep = {i: f for i, f in node.sleep.items()
                               if not _conflict(f, fp)}
                node.sleep[ident] = fp
            else:
                child_sleep = node.sleep
            if self._edge(choice):
                self._visit(child_sleep)
        return True

    def _root(self, sleep: Dict[Tuple, Footprint]) -> bool:
        """Advance local steps and open the root node.  Returns False if
        the root itself is a leaf (nothing pushed)."""
        try:
            _advance_local(self.vm)
        except SpecViolationError as exc:
            self.violations.add(str(exc))
            self.stats.paths += 1
            return False
        except StepLimitExceeded:
            self.stats.paths += 1
            return False
        self._visit(dict(sleep))
        return bool(self.stack)

    def _edge(self, choice: Tuple) -> bool:
        """Execute one choice plus eager local steps.  Returns False when
        the edge terminates the path (violation or step limit)."""
        vm = self.vm
        try:
            if choice[0] == "step":
                vm.step(choice[1])
            else:
                vm.flush_one(choice[1], choice[2])
            _advance_local(vm)
        except SpecViolationError as exc:
            self.violations.add(str(exc))
            self.stats.paths += 1
            return False
        except StepLimitExceeded:
            self.stats.paths += 1  # unbounded path (e.g. spin loop): prune
            return False
        return True

    def _visit(self, sleep: Dict[Tuple, Footprint]) -> None:
        """Classify the VM's current state: leaf, pruned, cached, or a
        new interior node pushed onto the stack."""
        vm = self.vm
        stats = self.stats
        options = _options(vm)
        if not options:
            self.outcomes.add(self.outcome_fn(vm))
            stats.paths += 1
            return
        if sleep:
            branch = [o for o in options if o[1] not in sleep]
            stats.pruned += len(options) - len(branch)
            if not branch:
                return  # fully slept: every continuation already covered
        else:
            branch = options
        cache = self.cache
        if cache is not None:
            key = _state_key(vm)
            slept = frozenset(sleep)
            stored = cache.get(key)
            if stored is None:
                cache[key] = [slept]
                stats.cache_states += 1
            else:
                # This state covers the revisit only if it was explored
                # with a sleep set no larger than ours (it explored at
                # least every branch we would).
                for prev in stored:
                    if prev <= slept:
                        stats.cache_hits += 1
                        return
                stored[:] = [p for p in stored if not slept <= p]
                stored.append(slept)
        snap = None
        if len(branch) > 1:
            snap = vm.snapshot()
            stats.snapshots += 1
            if stats.snapshot_bytes == 0:
                stats.snapshot_bytes = _snapshot_size(snap)
        self.stack.append(_Node(snap, branch, sleep))


def _snapshot_size(snap: VMSnapshot) -> int:
    try:
        payload = tuple(getattr(snap, slot) for slot in VMSnapshot.__slots__)
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return -1  # unpicklable snapshot contents: size unknown


# ----------------------------------------------------------------------
# Entry points

def _make_outcome_fn(outcome_globals: Sequence[str]) -> OutcomeFn:
    def outcome_fn(vm: VM) -> Tuple:
        return tuple(vm.memory.read(vm.memory.global_addr[g])
                     for g in outcome_globals)
    return outcome_fn


def _replay_prefix(vm: VM, prefix: Sequence[int]) -> None:
    """Drive *vm* down a recorded choice-index prefix (parallel workers
    and frontier expansion).  Raises like normal execution."""
    _advance_local(vm)
    for index in prefix:
        options = _options(vm)
        if index >= len(options):
            raise RuntimeError(
                "stale subtree prefix: index %d of %d options — "
                "deterministic replay diverged" % (index, len(options)))
        choice = options[index][0]
        if choice[0] == "step":
            vm.step(choice[1])
        else:
            vm.flush_one(choice[1], choice[2])
        _advance_local(vm)


def explore_subtree(module: Module, model_factory: Optional[ModelFactory],
                    model_name: str, entry: str,
                    outcome_fn: Optional[OutcomeFn],
                    outcome_globals: Sequence[str],
                    prefix: Sequence[int],
                    sleep_items: Sequence[Tuple[Tuple, Footprint]],
                    reduction: str, max_paths: int, max_steps: int,
                    compiled: Optional[bool] = None):
    """Explore one subtree (identified by a choice-index prefix) to
    completion.  This is the unit of work shipped to parallel workers;
    it is also used in-process for the picklability fallback.

    Returns ``(outcomes, violations, paths, complete, stats)``.
    """
    if model_factory is None:
        def model_factory():
            return make_model(model_name)
    if outcome_fn is None:
        outcome_fn = _make_outcome_fn(outcome_globals)
    stats = ExploreStats()
    outcomes: Set[Tuple] = set()
    violations: Set[str] = set()
    vm = make_vm(module, model_factory(), compiled=compiled, entry=entry,
                 max_steps=max_steps)
    try:
        _replay_prefix(vm, prefix)
    except SpecViolationError as exc:
        violations.add(str(exc))
        stats.paths += 1
        return outcomes, violations, stats.paths, True, stats
    except StepLimitExceeded:
        stats.paths += 1
        return outcomes, violations, stats.paths, True, stats
    cache = {} if reduction == "sleep+cache" else None
    search = _Search(vm, outcome_fn, max_paths, reduction != "none",
                     cache, stats, outcomes, violations)
    complete = search.run(dict(sleep_items))
    return outcomes, violations, stats.paths, complete, stats


def _expand_frontier(module: Module, model_factory: ModelFactory,
                     entry: str, outcome_fn: OutcomeFn, max_steps: int,
                     target: int, max_depth: int, use_sleep: bool,
                     stats: ExploreStats, outcomes: Set[Tuple],
                     violations: Set[str],
                     compiled: Optional[bool] = None):
    """Breadth-first expand the top of the choice tree into >= *target*
    subtree tasks (or fewer if the tree is small).

    Shallow leaves are folded directly into ``outcomes``/``violations``.
    Returns a list of ``(prefix, sleep_items)`` tasks in deterministic
    left-to-right tree order.
    """
    tasks: List[Tuple[Tuple[int, ...], Tuple]] = []
    queue: List[Tuple[Tuple[int, ...], Tuple]] = [((), ())]
    while queue:
        prefix, sleep_items = queue.pop(0)
        if (len(tasks) + len(queue) + 1 >= target
                or len(prefix) >= max_depth):
            tasks.append((prefix, sleep_items))
            continue
        vm = make_vm(module, model_factory(), compiled=compiled,
                     entry=entry, max_steps=max_steps)
        try:
            _replay_prefix(vm, prefix)
        except SpecViolationError as exc:
            violations.add(str(exc))
            stats.paths += 1
            continue
        except StepLimitExceeded:
            stats.paths += 1
            continue
        options = _options(vm)
        if not options:
            outcomes.add(outcome_fn(vm))
            stats.paths += 1
            continue
        sleep: Dict[Tuple, Footprint] = dict(sleep_items)
        if sleep:
            branch = [(i, o) for i, o in enumerate(options)
                      if o[1] not in sleep]
            stats.pruned += len(options) - len(branch)
        else:
            branch = list(enumerate(options))
        for i, (_choice, ident, fp) in branch:
            if use_sleep:
                child = tuple((i2, f2) for i2, f2 in sleep.items()
                              if not _conflict(f2, fp))
                queue.append((prefix + (i,), child))
                sleep[ident] = fp
            else:
                queue.append((prefix + (i,), ()))
    return tasks


def explore(module: Module, model_name: str = "sc", entry: str = "main",
            outcome_globals: Sequence[str] = (),
            outcome_fn: Optional[OutcomeFn] = None,
            max_paths: int = 20_000,
            max_steps: int = 2_000,
            model_factory: Optional[ModelFactory] = None,
            reduction: str = "sleep+cache",
            workers: Optional[int] = None,
            recorder=NULL_RECORDER,
            compiled: Optional[bool] = None) -> ExplorationResult:
    """Enumerate schedules of *module* under *model_name*.

    Drop-in replacement for :func:`repro.sched.exhaustive.explore` with
    the same outcome/violation semantics; ``reduction="none"`` visits the
    identical tree (identical ``paths`` count) one VM step per edge.
    The result carries an :class:`ExploreStats` in ``.stats``.

    ``workers``: ``None``/``1`` explores serially; ``n > 1`` splits
    top-level subtrees across ``n`` processes; ``0`` means one per CPU.
    Parallel runs fall back to serial transparently when the module,
    model factory, or outcome function cannot be pickled.
    """
    if reduction not in REDUCTIONS:
        raise ValueError("unknown reduction %r (expected one of %s)"
                         % (reduction, ", ".join(REDUCTIONS)))
    stats = ExploreStats()
    outcomes: Set[Tuple] = set()
    violations: Set[str] = set()
    if max_paths <= 0:
        return ExplorationResult(outcomes, 0, False, violations, stats=stats)

    from ..parallel.explore import plan_workers, run_parallel
    count = plan_workers(workers)
    if count > 1:
        # Pass the *user's* factory/outcome_fn (possibly None) through:
        # workers rebuild the defaults locally, so default explorations
        # stay picklable.
        result = run_parallel(
            module, model_factory, model_name, entry, outcome_fn,
            outcome_globals, reduction, max_paths, max_steps, count,
            stats, outcomes, violations, compiled=compiled)
        if result is not None:
            recorder.explore(stats)
            return result

    if model_factory is None:
        def model_factory():
            return make_model(model_name)
    if outcome_fn is None:
        outcome_fn = _make_outcome_fn(outcome_globals)
    vm = make_vm(module, model_factory(), compiled=compiled, entry=entry,
                 max_steps=max_steps)
    cache = {} if reduction == "sleep+cache" else None
    search = _Search(vm, outcome_fn, max_paths, reduction != "none",
                     cache, stats, outcomes, violations)
    complete = search.run({})
    recorder.explore(stats)
    return ExplorationResult(outcomes, stats.paths, complete, violations,
                             stats=stats)
