"""The flush-delaying demonic scheduler (paper §5.2).

At each scheduling point:

* an enabled thread is selected uniformly at random;
* if the selected thread has buffered stores, the scheduler flushes one of
  them with probability ``flush_prob`` (for PSO, choosing a random
  per-variable buffer), otherwise the thread executes its next instruction;
* partial-order reduction: once selected, a thread keeps running while its
  next instruction only touches thread-local state (registers / control
  flow), since such steps commute with every other thread.

Low ``flush_prob`` keeps stores buffered for long stretches, exposing
relaxed-memory violations; a value near 1.0 makes the run effectively SC.
The paper's tuned defaults are ~0.1 for TSO and ~0.5 for PSO.
"""

from __future__ import annotations

import random
from typing import Optional

from ..vm.interp import VM
from .base import Scheduler

#: Cap on consecutive local steps, so register-only loops cannot starve
#: the scheduler (real programs always reach a shared access or branch out).
MAX_LOCAL_RUN = 64


class FlushDelayScheduler(Scheduler):
    """Random demonic scheduler with delayed flushing.

    Args:
        seed: RNG seed (every execution is reproducible from its seed).
        flush_prob: probability of flushing (vs stepping) when the selected
            thread has pending buffered stores.
        por: enable the local-access partial-order reduction.
    """

    def __init__(self, seed: int = 0, flush_prob: float = 0.5,
                 por: bool = True, trace=None) -> None:
        if not 0.0 <= flush_prob <= 1.0:
            raise ValueError("flush_prob must be in [0, 1]")
        self.rng = random.Random(seed)
        self.flush_prob = flush_prob
        self.por = por
        #: Optional list collecting ("step", tid) / ("flush", tid, addr)
        #: events for deterministic replay (see repro.sched.replay).
        self.trace = trace

    def run(self, vm: VM) -> None:
        rng = self.rng
        while True:
            enabled = vm.enabled_tids()
            # Flushing is a memory-system action: any thread's buffers may
            # flush, including threads blocked in join or already finished
            # (otherwise a blocked producer could starve a spinning
            # consumer forever).
            pending = vm.tids_with_pending()
            if not enabled:
                if pending:
                    self._flush_step(vm, pending[rng.randrange(len(pending))])
                    continue
                self._check_deadlock(vm)
                self._finish(vm)
                return
            if pending and rng.random() < self.flush_prob:
                self._flush_step(vm, pending[rng.randrange(len(pending))])
                continue
            tid = enabled[rng.randrange(len(enabled))] \
                if len(enabled) > 1 else enabled[0]
            self._step(vm, tid)
            if self.por:
                self._run_local(vm, tid)

    def _step(self, vm: VM, tid: int) -> None:
        if self.trace is not None:
            self.trace.append(("step", tid))
        vm.step(tid)

    def _flush_step(self, vm: VM, tid: int) -> None:
        addrs = vm.model.pending_addrs(tid)
        if not addrs:
            return
        # PSO: pick a random per-variable buffer; TSO: pending_addrs lists
        # the FIFO queue, whose head is the only flushable entry.
        if vm.model.name == "pso":
            addr: Optional[int] = addrs[self.rng.randrange(len(addrs))]
        else:
            addr = None
        if vm.flush_one(tid, addr) and self.trace is not None:
            self.trace.append(("flush", tid, addr))

    def _run_local(self, vm: VM, tid: int) -> None:
        # The burst is budget-counted in underlying instructions on both
        # VM backends (the compiled VM executes it as superinstructions),
        # so schedules — and therefore RNG draws — are backend-independent.
        executed = vm.run_local(tid, MAX_LOCAL_RUN)
        if executed and self.trace is not None:
            self.trace.extend(("step", tid) for _ in range(executed))
