"""Schedule recording and deterministic replay.

A *trace* is the exact decision sequence of one execution — thread steps
and flush actions.  :class:`TracingScheduler` wraps the flush-delaying
scheduler and records the trace; :class:`ReplayScheduler` re-executes it
choice for choice, reproducing the execution exactly (our VM is
deterministic given the schedule).  This is the debugging workflow DFENCE
enables implicitly through seeds, made explicit: a violating execution
can be replayed, inspected, and re-checked after program edits that do
not change the decision structure.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..vm.errors import DeadlockError
from ..vm.interp import VM
from .base import Scheduler
from .flush_random import FlushDelayScheduler

#: ("step", tid) or ("flush", tid, addr_or_None)
TraceEvent = Tuple


class TracingScheduler(FlushDelayScheduler):
    """A flush-delaying scheduler that records every decision it makes.

    The recorded trace includes the partial-order-reduction steps, so a
    replay needs no knowledge of the POR policy.
    """

    def __init__(self, seed: int = 0, flush_prob: float = 0.5,
                 por: bool = True) -> None:
        super().__init__(seed=seed, flush_prob=flush_prob, por=por,
                         trace=[])


class ReplayScheduler(Scheduler):
    """Re-executes a recorded trace, decision for decision.

    After the trace is exhausted (e.g. the program under replay is
    shorter), any remaining threads run round-robin with eager flushing
    so the run still terminates.
    """

    def __init__(self, trace: List[TraceEvent]) -> None:
        self.trace = list(trace)

    def run(self, vm: VM) -> None:
        for event in self.trace:
            if event[0] == "step":
                tid = event[1]
                if tid in vm.enabled_tids():
                    vm.step(tid)
            else:
                vm.flush_one(event[1], event[2])
        # Tail: finish deterministically if the trace fell short.
        guard = 0
        while not vm.all_finished():
            enabled = vm.enabled_tids()
            if not enabled:
                if vm.tids_with_pending():
                    for tid in sorted(vm.tids_with_pending()):
                        vm.flush_one(tid)
                    continue
                raise DeadlockError("replay tail cannot make progress")
            for tid in sorted(enabled):
                vm.step(tid)
            guard += 1
            if guard > vm.max_steps:
                raise DeadlockError("replay tail did not terminate")
        self._finish(vm)


class Witness:
    """A reproducible violating execution: entry point + scheduler seed.

    Because every component is deterministic per seed, (entry, seed,
    flush_prob, por) pins down the full execution; :meth:`scheduler`
    rebuilds the exact scheduler that produced it.
    """

    def __init__(self, entry: str, seed: int, flush_prob: float,
                 message: str, por: bool = True) -> None:
        self.entry = entry
        self.seed = seed
        self.flush_prob = flush_prob
        self.message = message
        self.por = por

    def scheduler(self, record: bool = False) -> Scheduler:
        if record:
            return TracingScheduler(seed=self.seed,
                                    flush_prob=self.flush_prob,
                                    por=self.por)
        return FlushDelayScheduler(seed=self.seed,
                                   flush_prob=self.flush_prob,
                                   por=self.por)

    def __repr__(self) -> str:
        return "<Witness %s seed=%d p=%.2f: %s>" % (
            self.entry, self.seed, self.flush_prob, self.message[:60])
