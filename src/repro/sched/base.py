"""Scheduler interface.

A scheduler drives a :class:`~repro.vm.interp.VM` to completion, deciding
at each point which enabled thread steps and when buffered stores flush.
Spec violations surface as exceptions out of :meth:`Scheduler.run`; the
driver turns them into execution results.
"""

from __future__ import annotations

from ..vm.errors import DeadlockError
from ..vm.interp import VM


class Scheduler:
    """Base class for scheduler plug-ins."""

    def run(self, vm: VM) -> None:
        """Drive *vm* until every thread has finished.

        Implementations must terminate the run by draining all remaining
        buffers (so trailing buffered stores still hit the safety checker)
        and must raise :class:`DeadlockError` when no thread can proceed.
        """
        raise NotImplementedError

    def _finish(self, vm: VM) -> None:
        vm.drain_all()

    def _check_deadlock(self, vm: VM) -> None:
        if not vm.all_finished():
            raise DeadlockError(
                "no enabled threads; statuses: %r"
                % {tid: t.status.value for tid, t in vm.threads.items()})
