"""The recorder — the pipeline's single instrumentation entry point.

The synthesis engine (and the check-only path) talk to one object, a
*recorder*, at every phase boundary: round start/end, execution-batch
folding, SAT solving, fence enforcement, module broadcast.  Two
implementations:

* :data:`NULL_RECORDER` (a :class:`NullRecorder`) — every method is a
  no-op and ``span`` returns a shared do-nothing context manager.  This
  is the default everywhere, so an uninstrumented run pays one attribute
  lookup + call per hook and nothing else.
* :class:`Recorder` — aggregates deterministic metrics into a
  :class:`~repro.obs.metrics.MetricsRegistry`, optionally records spans
  into a :class:`~repro.obs.trace.SpanTracer` (Chrome trace JSON), and
  optionally drives a live :class:`~repro.obs.progress.ProgressReporter`.

Determinism: every value fed to ``inc``/``observe`` comes from
:class:`~repro.parallel.summary.ExecutionSummary` fields or SAT counters
that are functions of the (config, seed) alone, and summaries are folded
in execution-index order — so ``aggregates()`` is identical for serial
and multiprocess runs.  Wall-clock only ever lands in the ``timing`` and
``workers`` sections and in the trace file.
"""

from __future__ import annotations

import time
from typing import Optional

from .metrics import MetricsRegistry
from .progress import ProgressReporter
from .trace import SpanTracer


class _NullSpan:
    """A context manager that does nothing (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The do-nothing recorder; also the interface definition.

    ``enabled`` lets call sites skip building expensive arguments
    (e.g. SAT stat dicts) when no one is listening.
    """

    enabled = False

    def span(self, name: str, **args) -> "_NullSpan":
        """Time a phase: ``with recorder.span("sat_solve"): ...``."""
        return _NULL_SPAN

    def execution(self, summary) -> None:
        """Fold one execution summary's metrics (index order)."""

    def sat(self, stats: dict) -> None:
        """Fold one SAT-solving episode's counters."""

    def round_end(self, report, duration: float) -> None:
        """A round's report is final (counts, clauses, fences, timing)."""

    def run_end(self, outcome: str, rounds: int, fences: int,
                duration: float) -> None:
        """The synthesis (or check) run finished."""

    def explore(self, stats) -> None:
        """Fold one exhaustive-exploration run's reduction counters
        (an :class:`~repro.sched.explorer.ExploreStats`)."""

    def vm_compile(self, stats: dict) -> None:
        """Fold the template compiler's counters for this process (a
        ``repro.vm.compile.COMPILE_STATS`` snapshot delta): bodies
        compiled, superinstructions fused, cache hits, compile seconds.
        Per-process — workers of a multiprocess pool compile in their own
        processes — so these land in the machine-dependent sections."""

    def aggregates(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {}


#: The shared default recorder: instrumentation off.
NULL_RECORDER = NullRecorder()


class _Span:
    """An active timed span; emits a trace event and a timing sample."""

    __slots__ = ("_recorder", "name", "args", "_start")

    def __init__(self, recorder: "Recorder", name: str, args: dict) -> None:
        self._recorder = recorder
        self.name = name
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._recorder._clock()
        return self

    def __exit__(self, *exc) -> None:
        self._recorder._span_done(self.name, self._start,
                                  self._recorder._clock(), self.args)


class Recorder(NullRecorder):
    """Aggregating recorder: metrics + optional tracer + live progress."""

    enabled = True

    def __init__(self, tracer: Optional[SpanTracer] = None,
                 progress: Optional[ProgressReporter] = None,
                 clock=time.perf_counter) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = tracer
        self.progress = progress
        self._clock = clock
        self._t0 = clock()

    # -- spans ---------------------------------------------------------

    def span(self, name: str, **args) -> _Span:
        return _Span(self, name, args)

    def _span_done(self, name: str, start: float, end: float,
                   args: dict) -> None:
        duration = end - start
        self.metrics.observe_timing("span/%s" % name, duration)
        if self.tracer is not None:
            self.tracer.add(name, (start - self._t0) * 1e6,
                            duration * 1e6, args=args or None)

    # -- deterministic pipeline hooks ----------------------------------

    def execution(self, summary) -> None:
        m = self.metrics
        m.inc("exec/runs")
        m.inc("exec/steps", summary.steps)
        m.observe("exec/steps", summary.steps)
        flushes, depth_hwm = summary.metrics
        m.inc("exec/flushes", flushes)
        m.observe("exec/flushes", flushes)
        m.observe("exec/buffer_depth_hwm", depth_hwm)
        if not summary.usable:
            m.inc("exec/discarded")
        elif summary.violation is not None:
            m.inc("exec/violations")
        if summary.worker is not None:
            m.inc_worker(summary.worker)

    def sat(self, stats: dict) -> None:
        m = self.metrics
        m.inc("sat/solves", stats.get("solves", 0))
        m.inc("sat/decisions", stats.get("decisions", 0))
        m.inc("sat/conflicts", stats.get("conflicts", 0))
        m.inc("sat/propagations", stats.get("propagations", 0))
        m.inc("sat/learned", stats.get("learned", 0))

    def round_end(self, report, duration: float) -> None:
        m = self.metrics
        m.inc("engine/rounds")
        m.inc("engine/clauses", report.clauses)
        m.inc("engine/fences_inserted", len(report.inserted))
        m.inc("engine/unfixable", report.unfixable)
        m.observe("round/violations", report.violations)
        m.observe("round/discarded", report.discarded)
        m.observe("round/predicates", report.distinct_predicates)
        m.observe("round/clauses", report.clauses)
        m.observe_timing("round/duration", duration)
        if self.progress is not None:
            self.progress.round_end(report, duration)

    def run_end(self, outcome: str, rounds: int, fences: int,
                duration: float) -> None:
        self.metrics.observe_timing("run/duration", duration)
        if self.progress is not None:
            self.progress.run_end(outcome, rounds, fences, duration)

    def explore(self, stats) -> None:
        m = self.metrics
        m.inc("explore/runs")
        m.inc("explore/paths", stats.paths)
        m.inc("explore/pruned_branches", stats.pruned)
        m.inc("explore/cache_hits", stats.cache_hits)
        m.inc("explore/cache_states", stats.cache_states)
        m.inc("explore/snapshots", stats.snapshots)
        m.inc("explore/restores", stats.restores)
        if stats.snapshot_bytes > 0:
            m.observe("explore/snapshot_bytes", stats.snapshot_bytes)

    def vm_compile(self, stats: dict) -> None:
        m = self.metrics
        for key in ("functions", "recompiles", "instructions",
                    "superinstructions", "fused_ops", "cache_hits"):
            m.inc_process("vm/compile/%s" % key, stats.get(key, 0))
        m.observe_timing("vm/compile/seconds", stats.get("seconds", 0.0))

    # -- output --------------------------------------------------------

    def aggregates(self) -> dict:
        """Deterministic counters + histograms (serial ≡ parallel)."""
        return self.metrics.aggregates()

    def snapshot(self) -> dict:
        """All metric sections, as JSON-serialisable dicts."""
        return self.metrics.snapshot()

    def write_trace(self, destination) -> None:
        """Write the Chrome trace (no-op without a tracer)."""
        if self.tracer is not None:
            self.tracer.write(destination)
