"""Chrome trace-event output for the span tracer.

Spans recorded by the :class:`~repro.obs.recorder.Recorder` become
"complete" (``ph: "X"``) events in the Chrome trace-event JSON format —
the ``{"traceEvents": [...]}`` object understood by Perfetto
(https://ui.perfetto.dev), ``chrome://tracing``, and Speedscope.
Timestamps and durations are microseconds relative to tracer creation.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union


class SpanTracer:
    """Collects completed spans as Chrome trace events.

    ``add`` is called by the recorder when a span closes; ``write``
    serialises the accumulated events.  The tracer itself never touches
    the clock — the recorder supplies start/duration, so the tracer can
    be exercised deterministically in tests.
    """

    def __init__(self, pid: int = 0) -> None:
        self.pid = pid
        self.events: List[dict] = []

    def add(self, name: str, start_us: float, duration_us: float,
            tid: int = 0, args: Optional[dict] = None) -> None:
        event = {
            "name": name,
            "ph": "X",
            "ts": round(start_us, 3),
            "dur": round(duration_us, 3),
            "pid": self.pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, name: str, at_us: float,
                args: Optional[dict] = None) -> None:
        """A zero-duration marker (``ph: "i"``) — e.g. round boundaries."""
        event = {
            "name": name,
            "ph": "i",
            "ts": round(at_us, 3),
            "s": "p",
            "pid": self.pid,
            "tid": 0,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def to_json(self) -> dict:
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def write(self, destination: Union[str, IO[str]]) -> None:
        """Write the trace to a path or an open text stream."""
        if hasattr(destination, "write"):
            json.dump(self.to_json(), destination)
        else:
            with open(destination, "w") as handle:
                json.dump(self.to_json(), handle)
