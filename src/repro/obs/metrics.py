"""Counters and histograms for the synthesis pipeline.

A :class:`MetricsRegistry` holds named **counters** (monotone ints) and
**histograms** (count/sum/min/max over observed values).  Metrics come in
two determinism classes, kept in separate namespaces of the snapshot:

* ``counters`` / ``histograms`` — fed exclusively from per-execution data
  that rides back inside :class:`~repro.parallel.summary.ExecutionSummary`
  records and is folded in execution-index order.  These **aggregates are
  deterministic**: serial and multiprocess runs of the same config/seed
  produce identical values (asserted by ``tests/test_observability.py``).
* ``timing`` / ``workers`` — wall-clock span durations and per-worker job
  counts.  Inherently machine- and schedule-dependent; reported for
  humans, excluded from the determinism contract.
"""

from __future__ import annotations

from typing import Dict, Optional


class Histogram:
    """A streaming summary of observed values: count, sum, min, max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}

    def __repr__(self) -> str:
        return "<Histogram n=%d sum=%s min=%s max=%s>" % (
            self.count, self.total, self.min, self.max)


class MetricsRegistry:
    """Named counters and histograms, split by determinism class.

    ``inc``/``observe`` feed the deterministic sections; ``inc_worker``
    and ``observe_timing`` feed the machine-dependent ones.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.workers: Dict[str, int] = {}
        self.timing: Dict[str, Histogram] = {}
        #: Per-process counters (e.g. ``vm/compile/*``): they describe
        #: work done in *this* process, so the multiprocess backend —
        #: whose workers compile in their own processes — legitimately
        #: reports different values than a serial run.  Machine/backend
        #: dependent, excluded from the determinism contract.
        self.process: Dict[str, int] = {}

    # -- deterministic section -----------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- machine-dependent section -------------------------------------

    def inc_worker(self, worker: str, amount: int = 1) -> None:
        self.workers[worker] = self.workers.get(worker, 0) + amount

    def inc_process(self, name: str, amount: int = 1) -> None:
        self.process[name] = self.process.get(name, 0) + amount

    def observe_timing(self, name: str, seconds: float) -> None:
        hist = self.timing.get(name)
        if hist is None:
            hist = self.timing[name] = Histogram()
        hist.observe(seconds)

    # ------------------------------------------------------------------

    def aggregates(self) -> dict:
        """The deterministic sections only (counters + histograms)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {name: self.histograms[name].snapshot()
                           for name in sorted(self.histograms)},
        }

    def snapshot(self) -> dict:
        """Everything, as plain dicts (JSON-serialisable)."""
        snap = self.aggregates()
        snap["workers"] = dict(sorted(self.workers.items()))
        snap["timing"] = {name: self.timing[name].snapshot()
                          for name in sorted(self.timing)}
        snap["process"] = dict(sorted(self.process.items()))
        return snap
