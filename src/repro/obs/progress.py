"""Live round-by-round progress for the CLI (``--verbose``).

A :class:`ProgressReporter` is a recorder sink: the engine's recorder
calls it as each round completes and when the run ends.  Output goes to
stderr by default so it never pollutes machine-readable stdout (the
summary, annotated source, or piped trace paths).
"""

from __future__ import annotations

import sys
from typing import IO, Optional


class ProgressReporter:
    """Prints one line per synthesis round as it happens."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def round_end(self, report, duration: float) -> None:
        """Called by the recorder when a round's report is final."""
        rate = report.executions / duration if duration > 0 else 0.0
        line = ("[round %d] %d runs | %d violations "
                "(%d unfixable, %d discarded) | %d clauses / %d predicates"
                % (report.index, report.executions, report.violations,
                   report.unfixable, report.discarded, report.clauses,
                   report.distinct_predicates))
        if report.inserted:
            line += " | +%d fences" % len(report.inserted)
        line += " | %.2fs (%.0f exec/s)" % (duration, rate)
        print(line, file=self.stream, flush=True)

    def run_end(self, outcome: str, rounds: int, fences: int,
                duration: float) -> None:
        print("[done] %s after %d round(s), %d fence(s), %.2fs"
              % (outcome, rounds, fences, duration),
              file=self.stream, flush=True)
