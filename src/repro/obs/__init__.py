"""Observability: structured tracing, metrics, and live progress.

The instrumentation subsystem for the synthesis pipeline (see the
"Observability" section of README.md):

* :class:`Recorder` / :data:`NULL_RECORDER` — the single hook object the
  engine, SAT layer, and pools report into; the null recorder keeps the
  uninstrumented hot path at one no-op call per event.
* :class:`MetricsRegistry` / :class:`Histogram` — deterministic counters
  and histograms (identical for serial and multiprocess runs) plus
  machine-dependent timing/worker sections.
* :class:`SpanTracer` — round / execution-batch / SAT-solve / enforce /
  broadcast spans as Chrome trace-event JSON, loadable in Perfetto.
* :class:`ProgressReporter` — the live round-by-round CLI sink.
"""

from .metrics import Histogram, MetricsRegistry
from .progress import ProgressReporter
from .recorder import NULL_RECORDER, NullRecorder, Recorder
from .trace import SpanTracer

__all__ = [
    "Histogram", "MetricsRegistry", "NULL_RECORDER", "NullRecorder",
    "ProgressReporter", "Recorder", "SpanTracer",
]
