"""repro — a full reproduction of "Dynamic Synthesis for Relaxed Memory
Models" (Liu, Nedev, Prisadnikov, Vechev, Yahav; PLDI 2012).

The package rebuilds the DFENCE tool on a self-contained substrate:

* :mod:`repro.minic` — a C-like source language with a hand-written
  compiler front-end (replacing C + LLVM-GCC);
* :mod:`repro.ir` — DIR, a register-based IR (replacing LLVM bytecode);
* :mod:`repro.vm` — a multi-threaded interpreter (replacing extended lli);
* :mod:`repro.memory` — operational TSO/PSO store-buffer semantics with
  the paper's instrumented label buffers;
* :mod:`repro.sched` — the flush-delaying demonic scheduler;
* :mod:`repro.spec` — memory safety, operation-level sequential
  consistency, and linearizability checking against executable
  sequential specifications;
* :mod:`repro.sat` — a from-scratch CDCL SAT solver (replacing MiniSAT);
* :mod:`repro.synth` — the round-based dynamic fence-synthesis engine
  (Algorithms 1 and 2);
* :mod:`repro.algorithms` — the 13 benchmark algorithms of Table 2.

Quickstart::

    from repro import infer_fences
    result = infer_fences("chase_lev", memory_model="pso", spec="sc")
    print(result.fence_locations())
"""

from typing import Optional

from .synth.engine import (
    SynthesisConfig,
    SynthesisEngine,
    SynthesisResult,
)

__version__ = "1.0.0"


def infer_fences(algorithm: str, memory_model: str = "pso",
                 spec: str = "sc", executions_per_round: int = 300,
                 max_rounds: int = 12, seed: int = 0,
                 flush_prob: Optional[float] = None) -> SynthesisResult:
    """One-call fence inference for a named benchmark algorithm.

    Args:
        algorithm: a key of :data:`repro.algorithms.ALGORITHMS`.
        memory_model: "sc", "tso" or "pso".
        spec: "memory_safety", "sc" (operation-level sequential
            consistency) or "lin" (linearizability).
        executions_per_round: the paper's K parameter.
        max_rounds: bound on repair rounds.
        seed: RNG seed (results are reproducible per seed).
        flush_prob: scheduler flush probability; defaults to the
            algorithm bundle's per-model tuning (paper: ~0.1 TSO,
            ~0.5 PSO).

    Returns:
        The :class:`~repro.synth.engine.SynthesisResult`, whose
        ``program`` is the repaired module and ``fence_locations()``
        gives paper-style placement strings.
    """
    from .algorithms import ALGORITHMS

    bundle = ALGORITHMS[algorithm]
    if flush_prob is None:
        flush_prob = bundle.flush_prob.get(memory_model, 0.5)
    config = SynthesisConfig(
        memory_model=memory_model, flush_prob=flush_prob,
        executions_per_round=executions_per_round,
        max_rounds=max_rounds, seed=seed)
    engine = SynthesisEngine(config)
    return engine.synthesize(
        bundle.compile(), bundle.spec(spec),
        entries=bundle.entries, operations=bundle.operations)


__all__ = [
    "SynthesisConfig",
    "SynthesisEngine",
    "SynthesisResult",
    "__version__",
    "infer_fences",
]
