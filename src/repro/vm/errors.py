"""Execution-time error conditions raised by the VM.

:class:`MemorySafetyViolation` and :class:`AssertionViolation` are
*specification* violations — the synthesis engine treats executions raising
them as bad and repairs the program.  The remaining errors are execution
infrastructure conditions (step budget exhausted, real deadlock, malformed
programs) and are reported, not repaired.
"""

from __future__ import annotations

from typing import Optional


class VMError(Exception):
    """Base class for all VM-raised conditions."""


class SpecViolationError(VMError):
    """Base class for violations the engine is expected to repair."""

    def __init__(self, message: str, tid: Optional[int] = None,
                 label: Optional[int] = None) -> None:
        super().__init__(message)
        self.tid = tid
        self.label = label


class MemorySafetyViolation(SpecViolationError):
    """Out-of-bounds / freed / null shared-memory access (load, CAS or a
    store *flush*, per the paper's checking points)."""


class AssertionViolation(SpecViolationError):
    """A MiniC ``assert`` evaluated to zero."""


class StepLimitExceeded(VMError):
    """The execution ran past its step budget (e.g. livelocked CAS loops
    under an unlucky schedule); the driver discards such runs."""


class DeadlockError(VMError):
    """No thread is runnable but not all threads have finished."""


class InterpreterError(VMError):
    """Malformed program reached the interpreter (verifier should have
    caught it) or an internal invariant broke."""
