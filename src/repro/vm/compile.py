"""Closure-compiled DIR: a specializing template compiler for the VM.

The generic interpreter (:mod:`repro.vm.interp`) pays a per-instruction
tax on every step: an attribute chase through ``instr.dst``/``instr.a``,
an ``isinstance`` test per operand in ``_value``, a string-compare chain
in ``_apply_binop``, and a label→index lookup per branch.  The paper's
DFENCE amortizes the equivalent cost by riding LLVM ``lli``'s pre-decoded
bytecode; this module is the reproduction's analogue: each function body
is lowered *once* into a dense list of specialized Python closures —

* constants are inlined into the closure at compile time (and constant
  subexpressions folded when that cannot change error behaviour),
* register operands are pre-resolved to interned frame-dict keys, so a
  register access is a single hash probe with no operand dispatch,
* branch targets are pre-bound to instruction *offsets* instead of
  label lookups,
* straight-line runs of pure register ops (const/mov/binop/unop) are
  fused into *superinstruction* closures, executed back to back without
  re-entering the step loop.

Superinstructions never change what a scheduler can observe: only
thread-local register ops are fused, and they are only executed in bulk
inside :meth:`CompiledVM.run_local` — the partial-order-reduction burst
that both backends define as "run local instructions until the next
scheduler-visible action (load, store, CAS, fence, fork/join, operation
call/return) or the budget runs out".  ``step()`` itself always executes
exactly one instruction, so every existing call site (round-robin,
replay, explorer tree edges) keeps per-instruction semantics.  The
``steps``/``seq`` counters, coverage sets, and the step-limit check are
maintained per *underlying instruction*, which is what makes compiled
executions byte-identical to interpreted ones (outcomes, histories,
predicates, traces) — see ``tests/test_compile_equivalence.py``.

Compiled bodies are cached per ``(function, body_version)``:
:class:`~repro.ir.function.Function` bumps ``body_version`` on every
mutation, so a synthesis round that inserts a fence recompiles only the
repaired function while all untouched functions reuse their closures.

Known, documented divergences from the interpreted reference — none
observable through :class:`~repro.vm.driver.ExecutionResult`:

* If an :class:`InterpreterError` (division by zero) is raised from the
  middle of a superinstruction, ``vm.steps``/``vm.seq`` have already
  been bumped for the whole fused run.  The exception propagates out of
  the driver either way, identically on both backends.
* ``_advance_local`` (exploration) interleaves different threads' local
  runs depth-first per thread instead of one-op round-robin; local ops
  commute, so the state at every decision point is identical.
"""

from __future__ import annotations

import operator
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from ..ir import instructions as ins
from ..ir.function import Function
from ..ir.operands import Const, Reg, Sym
from .errors import AssertionViolation, InterpreterError, StepLimitExceeded
from .interp import LOCAL_OPS, LOCAL_OPS_ASSERT, VM, _DISPATCH
from .state import Frame, Thread, ThreadStatus

#: A compiled instruction: executes its op(s) and sets ``frame.ip``.
Closure = Callable[["CompiledVM", Thread, Frame], None]

#: Pure register-op classes eligible for superinstruction fusion.
_FUSABLE = frozenset((ins.ConstInstr, ins.Mov, ins.BinOp, ins.UnOp))


# ----------------------------------------------------------------------
# Backend selection (the --no-compile escape hatch)

def _env_default() -> bool:
    return os.environ.get("REPRO_NO_COMPILE", "") not in (
        "1", "true", "yes", "on")


#: Process-wide default backend: True → CompiledVM, False → generic VM.
_COMPILED_DEFAULT = _env_default()


def compiled_default() -> bool:
    """The process-wide default VM backend (True = compiled)."""
    return _COMPILED_DEFAULT


def set_compiled_default(value: bool) -> None:
    """Select the default backend for VMs built with ``compiled=None``.

    The CLI's ``--no-compile`` flag calls this (and exports
    ``REPRO_NO_COMPILE=1`` so worker processes inherit the choice).
    """
    global _COMPILED_DEFAULT
    _COMPILED_DEFAULT = bool(value)


def make_vm(module, model, compiled: Optional[bool] = None, **kwargs) -> VM:
    """Build a VM on the selected backend.

    ``compiled=None`` (the common case) uses the process default —
    compiled unless ``--no-compile``/``REPRO_NO_COMPILE`` turned the
    audited generic interpreter back on.
    """
    if compiled is None:
        compiled = _COMPILED_DEFAULT
    cls = CompiledVM if compiled else VM
    return cls(module, model, **kwargs)


# ----------------------------------------------------------------------
# Compile-time counters (surfaced as vm/compile/* recorder metrics)

class CompileStats:
    """Process-global template-compiler counters."""

    __slots__ = ("functions", "recompiles", "instructions",
                 "superinstructions", "fused_ops", "cache_hits", "seconds")

    def __init__(self) -> None:
        self.functions = 0          # bodies compiled (incl. recompiles)
        self.recompiles = 0         # of those, version-bump recompiles
        self.instructions = 0       # instructions lowered
        self.superinstructions = 0  # fused runs emitted
        self.fused_ops = 0          # instructions covered by fused runs
        self.cache_hits = 0         # code_for() calls served from cache
        self.seconds = 0.0          # wall-clock spent compiling

    def snapshot(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        return ("<CompileStats %d fns (%d recompiles), %d instrs, "
                "%d superinstrs>" % (self.functions, self.recompiles,
                                     self.instructions,
                                     self.superinstructions))


#: The shared counter instance (per process; worker processes have their
#: own — the recorder only ever folds the engine process's counters).
COMPILE_STATS = CompileStats()


def compile_stats_delta(before: dict) -> dict:
    """Counters accumulated since *before* (a ``snapshot()``)."""
    now = COMPILE_STATS.snapshot()
    return {key: now[key] - before.get(key, 0) for key in now}


# ----------------------------------------------------------------------
# Operand decoding (compile time only)

def _operand(operand) -> Tuple[str, object]:
    """Classify an operand once, at compile time."""
    if isinstance(operand, Reg):
        return "r", sys.intern(operand.name)
    if isinstance(operand, Const):
        return "c", operand.value
    if isinstance(operand, Sym):
        return "s", sys.intern(operand.name)
    raise InterpreterError("bad operand %r" % (operand,))


def _thunk(kind: str, payload):
    """A generic value getter for the rare operand shapes."""
    if kind == "r":
        name = payload

        def get(vm, frame):
            return frame.regs.get(name, 0)
    elif kind == "c":
        value = payload

        def get(vm, frame):
            return value
    else:
        sym = payload

        def get(vm, frame):
            return vm.memory.global_addr[sym]
    return get


def _value_thunk(operand):
    kind, payload = _operand(operand)
    return _thunk(kind, payload)


# ----------------------------------------------------------------------
# Operator tables (C-like semantics, matching interp._apply_binop/_unop)

def _div(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("modulo by zero")
    q = abs(a) % abs(b)
    return q if a >= 0 else -q


def _eq(a, b):
    return 1 if a == b else 0


def _ne(a, b):
    return 1 if a != b else 0


def _lt(a, b):
    return 1 if a < b else 0


def _le(a, b):
    return 1 if a <= b else 0


def _gt(a, b):
    return 1 if a > b else 0


def _ge(a, b):
    return 1 if a >= b else 0


_BINOP_FN = {
    "add": operator.add, "sub": operator.sub, "mul": operator.mul,
    "div": _div, "mod": _mod,
    "and": operator.and_, "or": operator.or_, "xor": operator.xor,
    "shl": operator.lshift, "shr": operator.rshift,
    "eq": _eq, "ne": _ne, "lt": _lt, "le": _le, "gt": _gt, "ge": _ge,
}

_UNOP_FN = {
    "neg": operator.neg,
    "not": lambda a: 1 if a == 0 else 0,
    "bnot": operator.invert,
}


# ----------------------------------------------------------------------
# Per-instruction templates.  Every closure ends by setting ``frame.ip``
# (branches to a pre-resolved offset, straight-line code to ``nxt``).

def _compile_const(instr: ins.ConstInstr, nxt: int) -> Closure:
    dst = sys.intern(instr.dst.name)
    value = instr.value

    def op(vm, thread, frame):
        frame.regs[dst] = value
        frame.ip = nxt
    return op


def _compile_mov(instr: ins.Mov, nxt: int) -> Closure:
    dst = sys.intern(instr.dst.name)
    kind, payload = _operand(instr.src)
    if kind == "r":
        src = payload

        def op(vm, thread, frame):
            regs = frame.regs
            regs[dst] = regs.get(src, 0)
            frame.ip = nxt
    elif kind == "c":
        value = payload

        def op(vm, thread, frame):
            frame.regs[dst] = value
            frame.ip = nxt
    else:
        sym = payload

        def op(vm, thread, frame):
            frame.regs[dst] = vm.memory.global_addr[sym]
            frame.ip = nxt
    return op


def _compile_binop(instr: ins.BinOp, nxt: int) -> Closure:
    dst = sys.intern(instr.dst.name)
    fn = _BINOP_FN[instr.binop]
    ka, a = _operand(instr.a)
    kb, b = _operand(instr.b)
    if ka == "c" and kb == "c":
        # Constant folding — but only when evaluation cannot raise
        # (div/mod by zero, negative shifts must fail at run time,
        # exactly like the interpreter).
        try:
            value = fn(a, b)
        except Exception:
            pass
        else:
            def op(vm, thread, frame):
                frame.regs[dst] = value
                frame.ip = nxt
            return op
    if ka == "r" and kb == "r":
        def op(vm, thread, frame):
            regs = frame.regs
            regs[dst] = fn(regs.get(a, 0), regs.get(b, 0))
            frame.ip = nxt
    elif ka == "r" and kb == "c":
        def op(vm, thread, frame):
            regs = frame.regs
            regs[dst] = fn(regs.get(a, 0), b)
            frame.ip = nxt
    elif ka == "c" and kb == "r":
        def op(vm, thread, frame):
            regs = frame.regs
            regs[dst] = fn(a, regs.get(b, 0))
            frame.ip = nxt
    else:
        ga, gb = _thunk(ka, a), _thunk(kb, b)

        def op(vm, thread, frame):
            frame.regs[dst] = fn(ga(vm, frame), gb(vm, frame))
            frame.ip = nxt
    return op


def _compile_unop(instr: ins.UnOp, nxt: int) -> Closure:
    dst = sys.intern(instr.dst.name)
    fn = _UNOP_FN[instr.unop]
    kind, payload = _operand(instr.a)
    if kind == "c":
        value = fn(payload)

        def op(vm, thread, frame):
            frame.regs[dst] = value
            frame.ip = nxt
    elif kind == "r":
        a = payload

        def op(vm, thread, frame):
            regs = frame.regs
            regs[dst] = fn(regs.get(a, 0))
            frame.ip = nxt
    else:
        ga = _thunk(kind, payload)

        def op(vm, thread, frame):
            frame.regs[dst] = fn(ga(vm, frame))
            frame.ip = nxt
    return op


def _compile_load(instr: ins.Load, nxt: int) -> Closure:
    dst = sys.intern(instr.dst.name)
    label = instr.label
    kind, payload = _operand(instr.addr)
    if kind == "r":
        a = payload

        def op(vm, thread, frame):
            regs = frame.regs
            addr = regs.get(a, 0)
            tid = thread.tid
            memory = vm.memory
            memory.check(addr, "load", tid, label)
            hit, value = vm.model.read(tid, addr, label)
            regs[dst] = value if hit else memory.read(addr)
            frame.ip = nxt
    else:
        ga = _thunk(kind, payload)

        def op(vm, thread, frame):
            addr = ga(vm, frame)
            tid = thread.tid
            memory = vm.memory
            memory.check(addr, "load", tid, label)
            hit, value = vm.model.read(tid, addr, label)
            frame.regs[dst] = value if hit else memory.read(addr)
            frame.ip = nxt
    return op


def _compile_store(instr: ins.Store, nxt: int) -> Closure:
    label = instr.label
    ka, a = _operand(instr.addr)
    ks, s = _operand(instr.src)
    if ka == "r" and ks == "r":
        def op(vm, thread, frame):
            regs = frame.regs
            vm.model.write(thread.tid, regs.get(a, 0), regs.get(s, 0),
                           label)
            frame.ip = nxt
    elif ka == "r" and ks == "c":
        def op(vm, thread, frame):
            vm.model.write(thread.tid, frame.regs.get(a, 0), s, label)
            frame.ip = nxt
    else:
        ga, gs = _thunk(ka, a), _thunk(ks, s)

        def op(vm, thread, frame):
            # Interpreter evaluation order: address, then value.
            addr = ga(vm, frame)
            vm.model.write(thread.tid, addr, gs(vm, frame), label)
            frame.ip = nxt
    return op


def _compile_cas(instr: ins.Cas, nxt: int) -> Closure:
    dst = sys.intern(instr.dst.name)
    label = instr.label
    ga = _value_thunk(instr.addr)
    ge = _value_thunk(instr.expected)
    gn = _value_thunk(instr.new)

    def op(vm, thread, frame):
        tid = thread.tid
        addr = ga(vm, frame)
        expected = ge(vm, frame)
        new = gn(vm, frame)
        vm.model.pre_cas(tid, addr, label)
        memory = vm.memory
        memory.check(addr, "cas", tid, label)
        if memory.read(addr) == expected:
            memory.write(addr, new)
            frame.regs[dst] = 1
        else:
            frame.regs[dst] = 0
        frame.ip = nxt
    return op


def _compile_fence(instr: ins.Fence, nxt: int) -> Closure:
    kind = instr.kind

    def op(vm, thread, frame):
        vm.model.fence(thread.tid, kind)
        frame.ip = nxt
    return op


def _compile_br(instr: ins.Br, fn: Function) -> Closure:
    target = fn.index_of(instr.target)

    def op(vm, thread, frame):
        frame.ip = target
    return op


def _compile_cbr(instr: ins.Cbr, fn: Function) -> Closure:
    then_ip = fn.index_of(instr.then_target)
    else_ip = fn.index_of(instr.else_target)
    kind, payload = _operand(instr.cond)
    if kind == "r":
        cond = payload

        def op(vm, thread, frame):
            frame.ip = then_ip if frame.regs.get(cond, 0) else else_ip
    elif kind == "c":
        target = then_ip if payload else else_ip

        def op(vm, thread, frame):
            frame.ip = target
    else:
        gc = _thunk(kind, payload)

        def op(vm, thread, frame):
            frame.ip = then_ip if gc(vm, frame) else else_ip
    return op


def _compile_selfid(instr: ins.SelfId, nxt: int) -> Closure:
    dst = sys.intern(instr.dst.name)

    def op(vm, thread, frame):
        frame.regs[dst] = thread.tid
        frame.ip = nxt
    return op


def _compile_addrof(instr: ins.AddrOf, nxt: int) -> Closure:
    dst = sys.intern(instr.dst.name)
    sym = sys.intern(instr.sym.name)

    def op(vm, thread, frame):
        frame.regs[dst] = vm.memory.global_addr[sym]
        frame.ip = nxt
    return op


def _compile_assert(instr: ins.Assert, nxt: int) -> Closure:
    label = instr.label
    message = instr.message or "assertion failed"
    kind, payload = _operand(instr.cond)
    if kind == "r":
        cond = payload

        def op(vm, thread, frame):
            if not frame.regs.get(cond, 0):
                raise AssertionViolation(message, tid=thread.tid,
                                         label=label)
            frame.ip = nxt
    else:
        gc = _thunk(kind, payload)

        def op(vm, thread, frame):
            if not gc(vm, frame):
                raise AssertionViolation(message, tid=thread.tid,
                                         label=label)
            frame.ip = nxt
    return op


def _compile_nop(instr: ins.Nop, nxt: int) -> Closure:
    def op(vm, thread, frame):
        frame.ip = nxt
    return op


def _compile_delegate(instr: ins.Instr) -> Closure:
    """Fallback template: reuse the audited generic handler.

    Used for the frame- and thread-shape-changing instructions
    (call/return, fork/join, page allocation) whose cost is dominated by
    the operation itself, not operand decoding — delegation keeps their
    semantics byte-for-byte the interpreter's by construction.
    """
    handler = _DISPATCH.get(instr.__class__)
    if handler is None:
        raise InterpreterError("unknown instruction %r" % (instr,))

    def op(vm, thread, frame):
        handler(vm, thread, frame, instr)
    return op


def _compile_instr(instr: ins.Instr, offset: int, fn: Function) -> Closure:
    nxt = offset + 1
    cls = instr.__class__
    if cls is ins.ConstInstr:
        return _compile_const(instr, nxt)
    if cls is ins.Mov:
        return _compile_mov(instr, nxt)
    if cls is ins.BinOp:
        return _compile_binop(instr, nxt)
    if cls is ins.UnOp:
        return _compile_unop(instr, nxt)
    if cls is ins.Load:
        return _compile_load(instr, nxt)
    if cls is ins.Store:
        return _compile_store(instr, nxt)
    if cls is ins.Cas:
        return _compile_cas(instr, nxt)
    if cls is ins.Fence:
        return _compile_fence(instr, nxt)
    if cls is ins.Br:
        return _compile_br(instr, fn)
    if cls is ins.Cbr:
        return _compile_cbr(instr, fn)
    if cls is ins.SelfId:
        return _compile_selfid(instr, nxt)
    if cls is ins.AddrOf:
        return _compile_addrof(instr, nxt)
    if cls is ins.Assert:
        return _compile_assert(instr, nxt)
    if cls is ins.Nop:
        return _compile_nop(instr, nxt)
    return _compile_delegate(instr)


# ----------------------------------------------------------------------
# Superinstruction fusion

def _fuse(parts: List[Closure]) -> Closure:
    """One closure executing a straight-line run of register ops.

    Small runs are unrolled (no loop machinery); longer ones iterate.
    Each part still sets ``frame.ip``, so an exception raised mid-run
    (division by zero) leaves the ip at the failing instruction, exactly
    like the interpreter.
    """
    n = len(parts)
    if n == 2:
        p0, p1 = parts

        def op(vm, thread, frame):
            p0(vm, thread, frame)
            p1(vm, thread, frame)
    elif n == 3:
        p0, p1, p2 = parts

        def op(vm, thread, frame):
            p0(vm, thread, frame)
            p1(vm, thread, frame)
            p2(vm, thread, frame)
    elif n == 4:
        p0, p1, p2, p3 = parts

        def op(vm, thread, frame):
            p0(vm, thread, frame)
            p1(vm, thread, frame)
            p2(vm, thread, frame)
            p3(vm, thread, frame)
    else:
        run = tuple(parts)

        def op(vm, thread, frame):
            for part in run:
                part(vm, thread, frame)
    return op


class CompiledCode:
    """One function body, lowered.  Immutable once built.

    Parallel arrays indexed by instruction offset:

    * ``code``    — preferred closure: a superinstruction at fused-run
      heads, the single-op closure everywhere else.  Offsets *inside* a
      fused run keep their single closure here, so a branch (or snapshot
      restore) landing mid-run resumes correctly, one op at a time.
    * ``singles`` — always the single-op closure (budget-exact stepping).
    * ``ops``     — how many instructions ``code[i]`` executes.
    * ``labels``  — the labels ``code[i]`` covers (coverage sets).
    * ``label_of``— the label at offset i.
    * ``local`` / ``local_assert`` — scheduler-locality flags per offset
      (the two POR variants; see :data:`repro.vm.interp.LOCAL_OPS`).
    """

    __slots__ = ("fn_name", "version", "code", "singles", "ops", "labels",
                 "label_of", "local", "local_assert")

    def __init__(self, fn: Function) -> None:
        body = fn.body
        self.fn_name = fn.name
        self.version = fn.body_version
        singles = [_compile_instr(instr, i, fn)
                   for i, instr in enumerate(body)]
        self.singles = singles
        self.label_of = tuple(instr.label for instr in body)
        self.local = tuple(instr.__class__ in LOCAL_OPS for instr in body)
        self.local_assert = tuple(instr.__class__ in LOCAL_OPS_ASSERT
                                  for instr in body)

        targets = set()
        for instr in body:
            for label in instr.jump_targets():
                targets.add(fn.index_of(label))

        code = list(singles)
        ops = [1] * len(body)
        labels: List[Tuple[int, ...]] = [(instr.label,) for instr in body]
        fused_runs = 0
        fused_ops = 0
        i = 0
        n = len(body)
        while i < n:
            if body[i].__class__ in _FUSABLE:
                j = i + 1
                while (j < n and body[j].__class__ in _FUSABLE
                       and j not in targets):
                    j += 1
                if j - i >= 2:
                    code[i] = _fuse(singles[i:j])
                    ops[i] = j - i
                    labels[i] = tuple(instr.label for instr in body[i:j])
                    fused_runs += 1
                    fused_ops += j - i
                i = j
            else:
                i += 1
        self.code = code
        self.ops = ops
        self.labels = tuple(labels)

        stats = COMPILE_STATS
        stats.instructions += n
        stats.superinstructions += fused_runs
        stats.fused_ops += fused_ops

    def __repr__(self) -> str:
        fused = sum(1 for n in self.ops if n > 1)
        return "<CompiledCode %s v%d: %d instrs, %d superinstrs>" % (
            self.fn_name, self.version, len(self.singles), fused)


#: Compiled-body cache: function → CompiledCode, validated against
#: ``body_version`` on every lookup.  Weak keys, so repaired-and-dropped
#: module clones do not accumulate; worker processes each hold their own.
_CACHE: "WeakKeyDictionary[Function, CompiledCode]" = WeakKeyDictionary()


def code_for(fn: Function) -> CompiledCode:
    """The compiled body for *fn*, (re)compiling if the body changed."""
    cached = _CACHE.get(fn)
    if cached is not None and cached.version == fn.body_version:
        COMPILE_STATS.cache_hits += 1
        return cached
    start = time.perf_counter()
    compiled = CompiledCode(fn)
    COMPILE_STATS.seconds += time.perf_counter() - start
    COMPILE_STATS.functions += 1
    if cached is not None:
        COMPILE_STATS.recompiles += 1
    _CACHE[fn] = compiled
    return compiled


# ----------------------------------------------------------------------
# The compiled VM

class CompiledVM(VM):
    """A :class:`VM` that executes closure-compiled bodies.

    Drop-in replacement: same constructor, same observable semantics
    (the differential sweep asserts byte-identical outcomes, histories,
    predicates, and synthesized fences).  ``snapshot()``/``restore()``
    are inherited unchanged — compiled code is pure per-function data
    shared across frames and snapshots, and every offset keeps a
    single-op closure, so a restore into the middle of a fused run
    resumes one op at a time.
    """

    def __init__(self, *args, **kwargs) -> None:
        self._fn_code: Dict[str, CompiledCode] = {}
        super().__init__(*args, **kwargs)

    def _code_for(self, fn: Function) -> CompiledCode:
        code = self._fn_code.get(fn.name)
        if code is None:
            code = self._fn_code[fn.name] = code_for(fn)
        return code

    def step(self, tid: int) -> None:
        """Execute exactly one instruction of thread *tid* (compiled)."""
        thread = self.threads[tid]
        if thread.status is ThreadStatus.FINISHED:
            raise InterpreterError("stepping finished thread %d" % tid)

        self.steps += 1
        if self.steps > self.max_steps:
            raise StepLimitExceeded(
                "execution exceeded %d steps" % self.max_steps)
        self.seq += 1

        if thread.status is ThreadStatus.BLOCKED_JOIN:
            self._complete_join(thread)
            return

        frame = thread.top
        code = frame.handlers
        if code is None:
            code = frame.handlers = self._code_for(frame.fn)
        ip = frame.ip
        if self.coverage is not None:
            self.coverage.add(code.label_of[ip])
        code.singles[ip](self, thread, frame)

    def run_local(self, tid: int, budget: int,
                  with_assert: bool = False) -> int:
        """Budget-exact local burst over compiled code.

        Executes the same underlying instruction sequence as the generic
        :meth:`VM.run_local`, but fused runs that fit the remaining
        budget go through one superinstruction closure; a run that would
        overshoot the budget falls back to single-op closures, so the
        burst never executes more instructions than the reference would.
        """
        thread = self.threads[tid]
        if thread.status is not ThreadStatus.RUNNABLE or not thread.frames:
            return 0
        frame = thread.top
        code = frame.handlers
        if code is None:
            code = frame.handlers = self._code_for(frame.fn)
        local = code.local_assert if with_assert else code.local
        preferred = code.code
        singles = code.singles
        ops = code.ops
        labels = code.labels
        coverage = self.coverage
        max_steps = self.max_steps
        executed = 0
        while executed < budget:
            ip = frame.ip
            if not local[ip]:
                break
            cl = preferred[ip]
            n = ops[ip]
            if n > budget - executed:
                cl = singles[ip]
                n = 1
            new_steps = self.steps + n
            if new_steps > max_steps:
                # The limit falls inside this batch: revert to exact
                # per-op accounting so the exception is raised at the
                # same instruction as the interpreter.
                while True:
                    self.steps += 1
                    if self.steps > max_steps:
                        raise StepLimitExceeded(
                            "execution exceeded %d steps" % max_steps)
                    self.seq += 1
                    if coverage is not None:
                        coverage.add(code.label_of[frame.ip])
                    singles[frame.ip](self, thread, frame)
            self.steps = new_steps
            self.seq += n
            if coverage is not None:
                coverage.update(labels[ip])
            cl(self, thread, frame)
            executed += n
        return executed
