"""Thread and frame state for the interpreter.

Mirrors the paper's ``ThreadStacks`` extension of lli: every thread owns a
list of execution contexts (frames); a thread is *enabled* while its frame
list is non-empty, and ``join`` completes only once the target's list is
empty (and, per the JOIN rule, its store buffers are drained).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from ..ir.function import Function
from .events import Operation


class ThreadStatus(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED_JOIN = "blocked_join"
    FINISHED = "finished"


class Frame:
    """One activation record: function, registers, instruction pointer."""

    __slots__ = ("fn", "regs", "ip", "ret_dst", "op_record", "handlers")

    def __init__(self, fn: Function, ret_dst=None,
                 op_record: Optional[Operation] = None) -> None:
        self.fn = fn
        self.regs: Dict[str, int] = {}
        self.ip = 0                     # index into fn.body
        self.ret_dst = ret_dst          # register in the caller's frame
        self.op_record = op_record      # history record to complete on return
        self.handlers = None            # per-function dispatch cache (VM)

    def clone(self, opmap: Optional[Dict[int, Operation]] = None) -> "Frame":
        """Deep-enough copy for VM snapshots: registers are copied, the
        immutable function/dispatch cache is shared, and the in-flight
        operation record is remapped through *opmap* (id(old) → clone) so
        the copy completes its own history's record, not the original's."""
        frame = Frame.__new__(Frame)
        frame.fn = self.fn
        frame.regs = dict(self.regs)
        frame.ip = self.ip
        frame.ret_dst = self.ret_dst
        record = self.op_record
        if record is not None and opmap is not None:
            record = opmap[id(record)]
        frame.op_record = record
        frame.handlers = self.handlers
        return frame

    def __repr__(self) -> str:
        return "<Frame %s ip=%d>" % (self.fn.name, self.ip)


class Thread:
    """A VM thread: a stack of frames plus scheduling status."""

    __slots__ = ("tid", "frames", "status", "join_target", "result")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.frames: List[Frame] = []
        self.status = ThreadStatus.RUNNABLE
        self.join_target: Optional[int] = None
        self.result: Optional[int] = None

    def clone(self, opmap: Optional[Dict[int, Operation]] = None) -> "Thread":
        """Deep copy of the thread's execution state (VM snapshots)."""
        thread = Thread.__new__(Thread)
        thread.tid = self.tid
        thread.frames = [frame.clone(opmap) for frame in self.frames]
        thread.status = self.status
        thread.join_target = self.join_target
        thread.result = self.result
        return thread

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    @property
    def finished(self) -> bool:
        return self.status is ThreadStatus.FINISHED

    def __repr__(self) -> str:
        return "<Thread %d %s depth=%d>" % (
            self.tid, self.status.value, len(self.frames))
