"""Shared memory with allocation metadata for memory-safety checking.

Memory is word-granular: a map from integer address to integer value, where
each address is one "shared variable" for the memory model's per-variable
buffers.  Module globals are laid out at load time; ``pagealloc`` hands out
fresh 2-aligned regions (the low pointer bit stays free for marked-pointer
algorithms such as Harris's set).

Safety checking follows the paper: every load, CAS, and *flush* target is
checked against the live-region table; freeing does not flush buffers, so a
delayed store flushing into a freed region is caught here.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from ..ir.module import Module
from .errors import MemorySafetyViolation

#: Addresses below this are never valid; address 0 acts as NULL.
NULL_GUARD = 16


class SharedMemory:
    """Word-addressable shared memory plus the live-region table."""

    def __init__(self, module: Module) -> None:
        self.cells: Dict[int, int] = {}
        self._region_bases: List[int] = []
        self._region_sizes: Dict[int, int] = {}
        self.global_addr: Dict[str, int] = {}
        self._bump = NULL_GUARD
        self._layout_globals(module)

    # ------------------------------------------------------------------
    # Layout

    def _layout_globals(self, module: Module) -> None:
        for var in module.globals.values():
            base = self._reserve(var.size)
            self.global_addr[var.name] = base
            for offset, value in enumerate(var.init):
                self.cells[base + offset] = value

    def _reserve(self, size: int) -> int:
        base = self._bump
        if base % 2:
            base += 1
        self._bump = base + size
        self._add_region(base, size)
        return base

    def _add_region(self, base: int, size: int) -> None:
        bisect.insort(self._region_bases, base)
        self._region_sizes[base] = size

    # ------------------------------------------------------------------
    # Allocation intrinsics

    def pagealloc(self, size: int) -> int:
        """Allocate ``size`` fresh zeroed cells; return the 2-aligned base."""
        if size <= 0:
            raise MemorySafetyViolation("pagealloc of non-positive size %d" % size)
        base = self._reserve(size)
        for offset in range(size):
            self.cells[base + offset] = 0
        return base

    def pagefree(self, addr: int) -> None:
        """Release the region whose base is ``addr``.

        The region's cells become invalid immediately; buffered stores into
        it are *not* flushed and will violate when they are.
        """
        if addr not in self._region_sizes:
            raise MemorySafetyViolation(
                "pagefree of %d which is not a live region base" % addr)
        del self._region_sizes[addr]
        pos = bisect.bisect_left(self._region_bases, addr)
        del self._region_bases[pos]

    # ------------------------------------------------------------------
    # Safety checking

    def is_valid(self, addr: int) -> bool:
        """True if ``addr`` falls inside some live region."""
        if addr < NULL_GUARD:
            return False
        pos = bisect.bisect_right(self._region_bases, addr) - 1
        if pos < 0:
            return False
        base = self._region_bases[pos]
        return addr < base + self._region_sizes[base]

    def check(self, addr: int, what: str, tid: Optional[int] = None,
              label: Optional[int] = None) -> None:
        """Raise :class:`MemorySafetyViolation` if ``addr`` is invalid."""
        if not self.is_valid(addr):
            kind = "NULL dereference" if addr < NULL_GUARD else "out-of-bounds/freed access"
            raise MemorySafetyViolation(
                "%s: %s at address %d (label L%s, thread %s)"
                % (kind, what, addr, label, tid),
                tid=tid, label=label)

    # ------------------------------------------------------------------
    # Access (validity already checked by callers where required)

    def read(self, addr: int) -> int:
        return self.cells.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self.cells[addr] = value

    # ------------------------------------------------------------------
    # Snapshot/restore (schedule exploration)

    def snapshot(self) -> Tuple:
        """Capture cells, the live-region table, and the bump pointer.

        ``global_addr`` is fixed at load time and shared, not copied.
        """
        return (dict(self.cells), list(self._region_bases),
                dict(self._region_sizes), self._bump)

    def restore(self, state: Tuple, consume: bool = False) -> None:
        """Reinstate a snapshot.

        A snapshot may be restored many times (fork-and-backtrack DFS),
        so by default fresh containers are built; ``consume=True`` moves
        the snapshot's containers in directly — valid only for the final
        restore of that snapshot.
        """
        cells, bases, sizes, bump = state
        if consume:
            self.cells = cells
            self._region_bases = bases
            self._region_sizes = sizes
        else:
            self.cells = dict(cells)
            self._region_bases = list(bases)
            self._region_sizes = dict(sizes)
        self._bump = bump

    def fingerprint(self) -> Tuple:
        """Canonical hashable encoding of the memory state (state dedup)."""
        return (tuple(sorted(self.cells.items())),
                tuple(self._region_bases), self._bump)

    def region_of(self, addr: int) -> Optional[Tuple[int, int]]:
        """The (base, size) of the live region containing ``addr``."""
        pos = bisect.bisect_right(self._region_bases, addr) - 1
        if pos < 0:
            return None
        base = self._region_bases[pos]
        size = self._region_sizes[base]
        if addr < base + size:
            return (base, size)
        return None

    def live_regions(self) -> Iterable[Tuple[int, int]]:
        return [(base, self._region_sizes[base]) for base in self._region_bases]
