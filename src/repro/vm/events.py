"""Execution histories: call/return events of declared operations.

Specification checking (linearizability, operation-level sequential
consistency) works on the *history* of an execution — the sequence of
operation invocations and responses, with their global ordering.  The VM
appends events here whenever a declared operation function is entered or
left.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Operation:
    """One completed operation in a history.

    ``call_seq`` and ``ret_seq`` are global step counters: operation A
    *happens before* B (real-time) iff ``A.ret_seq < B.call_seq``.
    """

    __slots__ = ("tid", "name", "args", "result", "call_seq", "ret_seq")

    def __init__(self, tid: int, name: str, args: Tuple[int, ...],
                 call_seq: int) -> None:
        self.tid = tid
        self.name = name
        self.args = args
        self.result: Optional[int] = None
        self.call_seq = call_seq
        self.ret_seq: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.ret_seq is not None

    def precedes(self, other: "Operation") -> bool:
        """Real-time precedence: this op returned before *other* was called."""
        return self.ret_seq is not None and self.ret_seq < other.call_seq

    def __repr__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        result = "?" if self.result is None else str(self.result)
        return "t%d:%s(%s)=%s[%s,%s]" % (
            self.tid, self.name, args, result, self.call_seq, self.ret_seq)


class History:
    """The operations observed in one execution, in invocation order."""

    def __init__(self) -> None:
        self.operations: List[Operation] = []

    def begin(self, tid: int, name: str, args: Sequence[int],
              seq: int) -> Operation:
        op = Operation(tid, name, tuple(args), seq)
        self.operations.append(op)
        return op

    def clone(self) -> Tuple["History", dict]:
        """Deep copy for VM snapshots.

        Returns ``(history, opmap)`` where ``opmap`` maps ``id(original)``
        to the cloned :class:`Operation`, so frames holding in-flight
        ``op_record`` references can be remapped onto the copies.
        """
        history = History()
        opmap: dict = {}
        for op in self.operations:
            clone = Operation(op.tid, op.name, op.args, op.call_seq)
            clone.result = op.result
            clone.ret_seq = op.ret_seq
            history.operations.append(clone)
            opmap[id(op)] = clone
        return history, opmap

    def complete_ops(self) -> List[Operation]:
        return [op for op in self.operations if op.complete]

    def by_thread(self) -> dict:
        """Operations grouped per thread, in program order."""
        threads: dict = {}
        for op in self.operations:
            threads.setdefault(op.tid, []).append(op)
        return threads

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def __repr__(self) -> str:
        return "<History %s>" % (self.operations,)
