"""The DIR interpreter — the reproduction's version of the extended lli.

One :class:`VM` instance executes one program run.  The VM performs the
*thread* steps; the *memory-system* steps (flushes) are driven externally
by a scheduler, which also chooses which thread steps next.  This mirrors
the paper's architecture where the scheduler plug-in controls both thread
interleaving and flushing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..ir import instructions as ins
from ..ir.module import Module
from ..ir.operands import Const, Reg, Sym
from ..memory.models import StoreBufferModel
from ..memory.predicates import PredicateSink
from .errors import (
    AssertionViolation,
    InterpreterError,
    StepLimitExceeded,
)
from .events import History
from .heap import SharedMemory
from .state import Frame, Thread, ThreadStatus

#: Default per-execution step budget.
DEFAULT_MAX_STEPS = 200_000

#: Instruction classes that only touch thread-local state (registers and
#: control flow).  They commute with every other thread's actions, so the
#: schedulers' partial-order reduction may run them back to back without
#: offering the decision point to other threads.  The exploration variant
#: additionally treats ``assert`` as local (its violation surfaces on
#: every interleaving once its operands are fixed); the random scheduler
#: keeps asserts as scheduling points, matching its historical behaviour.
LOCAL_OPS = frozenset((
    ins.ConstInstr, ins.Mov, ins.BinOp, ins.UnOp,
    ins.Br, ins.Cbr, ins.Nop, ins.SelfId, ins.AddrOf,
))
LOCAL_OPS_ASSERT = LOCAL_OPS | frozenset((ins.Assert,))


class VMSnapshot:
    """One captured VM execution state (see :meth:`VM.snapshot`).

    Opaque to callers: hand it back to :meth:`VM.restore` on the *same*
    VM instance.  Snapshots deep-copy all mutable execution state
    (threads, frames, registers, shared memory, store buffers, history,
    counters) and share everything immutable (module, functions,
    dispatch tables).
    """

    __slots__ = ("threads", "next_tid", "steps", "seq", "flushes",
                 "history", "memory", "model")


class VM:
    """A single execution of a DIR module under a memory model.

    Args:
        module: the program.
        model: a fresh (or reset) memory model instance.
        entry: name of the function the main thread starts in.
        entry_args: integer arguments for the entry function.
        operations: names of functions whose calls/returns are recorded in
            the execution history for specification checking.
        sink: optional predicate sink (instrumented semantics).
        max_steps: step budget to cut off livelocked schedules.
    """

    def __init__(self, module: Module, model: StoreBufferModel,
                 entry: str = "main", entry_args: Sequence[int] = (),
                 operations: Iterable[str] = (),
                 sink: Optional[PredicateSink] = None,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 coverage: Optional[set] = None) -> None:
        self.module = module
        self.model = model
        self.memory = SharedMemory(module)
        self.operations = frozenset(operations)
        self.history = History()
        self.max_steps = max_steps
        self.steps = 0
        self.seq = 0
        #: Stores committed to shared memory this execution (every flush
        #: lands in ``_commit``, including SC's immediate writes) — one of
        #: the per-execution observability counters.
        self.flushes = 0
        #: Optional set collecting the labels of executed instructions
        #: (client-coverage measurement, paper section 6.4).
        self.coverage = coverage

        model.reset()
        model.attach(self._commit, sink)

        #: Per-function precomputed dispatch lists (function name → list of
        #: handlers aligned with ``fn.body``).  Function bodies only mutate
        #: *between* executions (fence insertion), never during one, so the
        #: cache is valid for this VM's lifetime.
        self._fn_handlers: Dict[str, list] = {}

        self.threads: Dict[int, Thread] = {}
        self._next_tid = 0
        #: Incrementally maintained scheduling sets: tids whose status is
        #: RUNNABLE, and blocked-join tid → join-target tid.  Decision
        #: points hit ``enabled_tids`` constantly; these avoid rescanning
        #: every thread's status per call.
        self._runnable: set = set()
        self._blocked_join: Dict[int, int] = {}
        self._spawn(entry, [int(a) for a in entry_args])

    # ------------------------------------------------------------------
    # Thread management

    def _spawn(self, fn_name: str, args: List[int]) -> int:
        fn = self.module.function(fn_name)
        if len(args) != len(fn.params):
            raise InterpreterError(
                "spawn of %s with %d args (expects %d)"
                % (fn_name, len(args), len(fn.params)))
        tid = self._next_tid
        self._next_tid += 1
        thread = Thread(tid)
        frame = Frame(fn)
        for param, value in zip(fn.params, args):
            frame.regs[param] = value
        thread.frames.append(frame)
        self.threads[tid] = thread
        self._runnable.add(tid)
        return tid

    def enabled_tids(self) -> List[int]:
        """Threads that can take a step right now, ascending by tid.

        A thread blocked on join becomes enabled once its target finishes
        (the join step itself then drains the target's buffers).
        """
        if not self._blocked_join:
            return sorted(self._runnable)
        enabled = list(self._runnable)
        threads = self.threads
        for tid, target_tid in self._blocked_join.items():
            target = threads.get(target_tid)
            if target is not None and target.finished:
                enabled.append(tid)
        enabled.sort()
        return enabled

    def all_finished(self) -> bool:
        return all(t.finished for t in self.threads.values())

    def tids_with_pending(self) -> List[int]:
        """Threads (running or finished) with buffered stores to flush."""
        return self.model.pending_tids()

    def peek(self, tid: int) -> Optional[ins.Instr]:
        """The instruction the thread would execute next (None if blocked
        or finished) — used by the scheduler's partial-order reduction."""
        thread = self.threads[tid]
        if thread.status is not ThreadStatus.RUNNABLE or not thread.frames:
            return None
        frame = thread.top
        return frame.fn.body[frame.ip]

    # ------------------------------------------------------------------
    # Snapshot / restore (fork-and-backtrack exploration)

    def snapshot(self) -> VMSnapshot:
        """Capture the complete execution state.

        The snapshot is independent of further execution: the DFS
        explorer forks the choice tree by executing one branch, restoring,
        and executing the next — one VM step per tree edge instead of an
        O(depth) replay per path.
        """
        snap = VMSnapshot.__new__(VMSnapshot)
        history, opmap = self.history.clone()
        snap.history = history
        snap.threads = {tid: thread.clone(opmap)
                        for tid, thread in self.threads.items()}
        snap.next_tid = self._next_tid
        snap.steps = self.steps
        snap.seq = self.seq
        snap.flushes = self.flushes
        snap.memory = self.memory.snapshot()
        snap.model = self.model.snapshot()
        return snap

    def restore(self, snap: VMSnapshot, consume: bool = False) -> None:
        """Reinstate a snapshot taken on this VM.

        A snapshot may be restored any number of times; each restore
        rebuilds fresh mutable state.  ``consume=True`` moves the
        snapshot's containers in without copying — a backtracking
        optimisation valid only for the *last* restore of that snapshot.
        """
        if consume:
            self.history = snap.history
            self.threads = snap.threads
        else:
            history, opmap = snap.history.clone()
            self.history = history
            self.threads = {tid: thread.clone(opmap)
                            for tid, thread in snap.threads.items()}
        self._next_tid = snap.next_tid
        self.steps = snap.steps
        self.seq = snap.seq
        self.flushes = snap.flushes
        self.memory.restore(snap.memory, consume=consume)
        self.model.restore(snap.model)
        runnable = set()
        blocked: Dict[int, int] = {}
        for tid, thread in self.threads.items():
            if thread.status is ThreadStatus.RUNNABLE:
                runnable.add(tid)
            elif thread.status is ThreadStatus.BLOCKED_JOIN:
                blocked[tid] = thread.join_target
        self._runnable = runnable
        self._blocked_join = blocked

    # ------------------------------------------------------------------
    # Memory plumbing

    def _commit(self, tid: int, addr: int, value: int, label: int) -> None:
        """Write a flushed store to shared memory (safety check included:
        the paper checks addresses when a flush occurs)."""
        self.flushes += 1
        self.memory.check(addr, "store flush", tid, label)
        self.memory.write(addr, value)

    def flush_one(self, tid: int, addr: Optional[int] = None) -> bool:
        """Commit one buffered store of *tid* (scheduler action)."""
        return self.model.flush_one(tid, addr)

    def drain_all(self) -> None:
        """Flush every remaining buffer (end of execution), oldest first."""
        for tid in sorted(self.threads):
            self.model.drain(tid)

    # ------------------------------------------------------------------
    # Value evaluation

    def _value(self, operand, frame: Frame) -> int:
        if isinstance(operand, Reg):
            return frame.regs.get(operand.name, 0)
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, Sym):
            return self.memory.global_addr[operand.name]
        raise InterpreterError("bad operand %r" % (operand,))

    def _addr(self, operand, frame: Frame) -> int:
        """Evaluate an address operand (Sym resolves to global base)."""
        return self._value(operand, frame)

    # ------------------------------------------------------------------
    # Stepping

    def step(self, tid: int) -> None:
        """Execute one instruction of thread *tid*."""
        thread = self.threads[tid]
        if thread.status is ThreadStatus.FINISHED:
            raise InterpreterError("stepping finished thread %d" % tid)

        self.steps += 1
        if self.steps > self.max_steps:
            raise StepLimitExceeded(
                "execution exceeded %d steps" % self.max_steps)
        self.seq += 1

        if thread.status is ThreadStatus.BLOCKED_JOIN:
            self._complete_join(thread)
            return

        frame = thread.top
        handlers = frame.handlers
        if handlers is None:
            handlers = frame.handlers = self._handlers_for(frame.fn)
        ip = frame.ip
        instr = frame.fn.body[ip]
        if self.coverage is not None:
            self.coverage.add(instr.label)
        handlers[ip](self, thread, frame, instr)

    def run_local(self, tid: int, budget: int,
                  with_assert: bool = False) -> int:
        """Execute up to *budget* consecutive thread-local instructions.

        Stops early as soon as the thread's next instruction is not local
        (shared access, fence, call/return, fork/join, allocation — the
        scheduler-visible actions) or the thread cannot step.  Returns the
        number of instructions executed.  ``with_assert`` additionally
        treats ``assert`` as local (the exploration variant).

        Semantically this is exactly ``budget`` repetitions of
        "peek; stop if non-local; step" — the compiled VM overrides it
        with superinstruction execution whose per-instruction accounting
        (steps, seq, coverage, step limit) is identical.
        """
        local = LOCAL_OPS_ASSERT if with_assert else LOCAL_OPS
        executed = 0
        step = self.step
        peek = self.peek
        while executed < budget:
            nxt = peek(tid)
            if nxt is None or nxt.__class__ not in local:
                break
            step(tid)
            executed += 1
        return executed

    def _complete_join(self, thread: Thread) -> None:
        target = self.threads.get(thread.join_target)
        if target is None or not target.finished:
            raise InterpreterError(
                "join completion on unfinished thread %r" % thread.join_target)
        # JOIN rule: the joined thread's buffers must be empty; draining
        # them here is the demonic-scheduler-compatible equivalent.
        self.model.drain(target.tid)
        thread.status = ThreadStatus.RUNNABLE
        thread.join_target = None
        self._blocked_join.pop(thread.tid, None)
        self._runnable.add(thread.tid)
        thread.top.ip += 1

    # ------------------------------------------------------------------
    # Instruction dispatch
    #
    # Handlers are resolved once per function (not per step, and not via
    # an isinstance chain): ``_handlers_for`` maps a function body to a
    # parallel list of bound-method slots, cached on the frame.

    def _handlers_for(self, fn) -> list:
        handlers = self._fn_handlers.get(fn.name)
        if handlers is None:
            table = _DISPATCH
            try:
                handlers = [table[instr.__class__] for instr in fn.body]
            except KeyError:
                bad = next(i for i in fn.body if i.__class__ not in table)
                raise InterpreterError("unknown instruction %r" % (bad,))
            self._fn_handlers[fn.name] = handlers
        return handlers

    def _dispatch(self, thread: Thread, frame: Frame, instr: ins.Instr) -> None:
        """Execute one decoded instruction (table-driven)."""
        handler = _DISPATCH.get(instr.__class__)
        if handler is None:
            raise InterpreterError("unknown instruction %r" % (instr,))
        handler(self, thread, frame, instr)

    def _exec_const(self, thread, frame, instr) -> None:
        frame.regs[instr.dst.name] = instr.value
        frame.ip += 1

    def _exec_mov(self, thread, frame, instr) -> None:
        frame.regs[instr.dst.name] = self._value(instr.src, frame)
        frame.ip += 1

    def _exec_binop(self, thread, frame, instr) -> None:
        a = self._value(instr.a, frame)
        b = self._value(instr.b, frame)
        frame.regs[instr.dst.name] = _apply_binop(instr.binop, a, b)
        frame.ip += 1

    def _exec_unop(self, thread, frame, instr) -> None:
        a = self._value(instr.a, frame)
        frame.regs[instr.dst.name] = _apply_unop(instr.unop, a)
        frame.ip += 1

    def _exec_load(self, thread, frame, instr) -> None:
        tid = thread.tid
        addr = self._addr(instr.addr, frame)
        self.memory.check(addr, "load", tid, instr.label)
        hit, value = self.model.read(tid, addr, instr.label)
        if not hit:
            value = self.memory.read(addr)
        frame.regs[instr.dst.name] = value
        frame.ip += 1

    def _exec_store(self, thread, frame, instr) -> None:
        addr = self._addr(instr.addr, frame)
        value = self._value(instr.src, frame)
        self.model.write(thread.tid, addr, value, instr.label)
        frame.ip += 1

    def _exec_cas(self, thread, frame, instr) -> None:
        tid = thread.tid
        addr = self._addr(instr.addr, frame)
        expected = self._value(instr.expected, frame)
        new = self._value(instr.new, frame)
        self.model.pre_cas(tid, addr, instr.label)
        self.memory.check(addr, "cas", tid, instr.label)
        if self.memory.read(addr) == expected:
            self.memory.write(addr, new)
            frame.regs[instr.dst.name] = 1
        else:
            frame.regs[instr.dst.name] = 0
        frame.ip += 1

    def _exec_fence(self, thread, frame, instr) -> None:
        self.model.fence(thread.tid, instr.kind)
        frame.ip += 1

    def _exec_br(self, thread, frame, instr) -> None:
        frame.ip = frame.fn.index_of(instr.target)

    def _exec_cbr(self, thread, frame, instr) -> None:
        cond = self._value(instr.cond, frame)
        target = instr.then_target if cond else instr.else_target
        frame.ip = frame.fn.index_of(target)

    def _exec_fork(self, thread, frame, instr) -> None:
        args = [self._value(a, frame) for a in instr.args]
        # Thread creation is a full fence (pthread_create
        # synchronises-with the start of the new thread), so the
        # parent's buffered stores are visible to the child.
        self.model.drain(thread.tid)
        child = self._spawn(instr.fn, args)
        if instr.dst is not None:
            frame.regs[instr.dst.name] = child
        frame.ip += 1

    def _exec_join(self, thread, frame, instr) -> None:
        target_tid = self._value(instr.tid, frame)
        target = self.threads.get(target_tid)
        if target is None:
            raise InterpreterError("join on unknown thread %d" % target_tid)
        if target.finished:
            self.model.drain(target_tid)
            frame.ip += 1
        else:
            thread.status = ThreadStatus.BLOCKED_JOIN
            thread.join_target = target_tid
            self._runnable.discard(thread.tid)
            self._blocked_join[thread.tid] = target_tid

    def _exec_selfid(self, thread, frame, instr) -> None:
        frame.regs[instr.dst.name] = thread.tid
        frame.ip += 1

    def _exec_pagealloc(self, thread, frame, instr) -> None:
        size = self._value(instr.size, frame)
        frame.regs[instr.dst.name] = self.memory.pagealloc(size)
        frame.ip += 1

    def _exec_pagefree(self, thread, frame, instr) -> None:
        addr = self._value(instr.addr, frame)
        self.memory.pagefree(addr)
        frame.ip += 1

    def _exec_addrof(self, thread, frame, instr) -> None:
        frame.regs[instr.dst.name] = self.memory.global_addr[instr.sym.name]
        frame.ip += 1

    def _exec_assert(self, thread, frame, instr) -> None:
        if not self._value(instr.cond, frame):
            raise AssertionViolation(
                instr.message or "assertion failed",
                tid=thread.tid, label=instr.label)
        frame.ip += 1

    def _exec_nop(self, thread, frame, instr) -> None:
        frame.ip += 1

    def _do_call(self, thread: Thread, frame: Frame, instr: ins.Call) -> None:
        callee = self.module.function(instr.fn)
        args = [self._value(a, frame) for a in instr.args]
        record = None
        if instr.fn in self.operations:
            record = self.history.begin(thread.tid, instr.fn, args, self.seq)
        new_frame = Frame(callee, ret_dst=instr.dst, op_record=record)
        for param, value in zip(callee.params, args):
            new_frame.regs[param] = value
        thread.frames.append(new_frame)

    def _do_ret(self, thread: Thread, frame: Frame, instr: ins.Ret) -> None:
        value = self._value(instr.value, frame) if instr.value is not None else 0
        if frame.op_record is not None:
            frame.op_record.result = value
            frame.op_record.ret_seq = self.seq
        thread.frames.pop()
        if not thread.frames:
            thread.status = ThreadStatus.FINISHED
            thread.result = value
            self._runnable.discard(thread.tid)
            return
        caller = thread.top
        call_instr = caller.fn.body[caller.ip]
        if frame.ret_dst is not None:
            caller.regs[frame.ret_dst.name] = value
        caller.ip += 1
        del call_instr  # caller ip advanced past the call


# ----------------------------------------------------------------------
# Dispatch table: instruction class → VM handler.  Built once at import;
# ``_handlers_for`` specialises it into per-function lists.

_DISPATCH = {
    ins.ConstInstr: VM._exec_const,
    ins.Mov: VM._exec_mov,
    ins.BinOp: VM._exec_binop,
    ins.UnOp: VM._exec_unop,
    ins.Load: VM._exec_load,
    ins.Store: VM._exec_store,
    ins.Cas: VM._exec_cas,
    ins.Fence: VM._exec_fence,
    ins.Br: VM._exec_br,
    ins.Cbr: VM._exec_cbr,
    ins.Call: VM._do_call,
    ins.Ret: VM._do_ret,
    ins.Fork: VM._exec_fork,
    ins.Join: VM._exec_join,
    ins.SelfId: VM._exec_selfid,
    ins.PageAlloc: VM._exec_pagealloc,
    ins.PageFree: VM._exec_pagefree,
    ins.AddrOf: VM._exec_addrof,
    ins.Assert: VM._exec_assert,
    ins.Nop: VM._exec_nop,
}


# ----------------------------------------------------------------------
# Operator evaluation (C-like semantics on Python ints)

def _apply_binop(op: str, a: int, b: int) -> int:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if b == 0:
            raise InterpreterError("division by zero")
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    if op == "mod":
        if b == 0:
            raise InterpreterError("modulo by zero")
        q = abs(a) % abs(b)
        return q if a >= 0 else -q
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return a << b
    if op == "shr":
        return a >> b
    if op == "eq":
        return int(a == b)
    if op == "ne":
        return int(a != b)
    if op == "lt":
        return int(a < b)
    if op == "le":
        return int(a <= b)
    if op == "gt":
        return int(a > b)
    if op == "ge":
        return int(a >= b)
    raise InterpreterError("unknown binary operator %r" % op)


def _apply_unop(op: str, a: int) -> int:
    if op == "neg":
        return -a
    if op == "not":
        return int(a == 0)
    if op == "bnot":
        return ~a
    raise InterpreterError("unknown unary operator %r" % op)
