"""Execution driver: run one program once and package the outcome.

The driver wires together module + memory model + scheduler + predicate
sink, runs to completion, and returns an :class:`ExecutionResult` holding
the status, the operation history (for SC/linearizability checking), and
the ordering predicates collected by the instrumented semantics (the
paper's ``avoid(p)`` repair disjunction for this execution).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from ..ir.module import Module
from typing import TYPE_CHECKING

from ..memory.models import StoreBufferModel, make_model
from ..memory.predicates import OrderingPredicate, PredicateSink
from .errors import (
    AssertionViolation,
    DeadlockError,
    MemorySafetyViolation,
    StepLimitExceeded,
)
from .compile import make_vm
from .events import History
from .interp import DEFAULT_MAX_STEPS, VM

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..sched.base import Scheduler


class ExecutionStatus(enum.Enum):
    """How an execution ended."""

    OK = "ok"                        # ran to completion
    MEMORY_VIOLATION = "memory_violation"
    ASSERTION_VIOLATION = "assertion_violation"
    TIMEOUT = "timeout"              # step budget exhausted; discarded
    DEADLOCK = "deadlock"


class ExecutionResult:
    """Outcome of one execution."""

    def __init__(self, status: ExecutionStatus, history: History,
                 predicates: List[OrderingPredicate], steps: int,
                 error: Optional[str] = None, flushes: int = 0,
                 max_buffer_depth: int = 0,
                 thread_results: Optional[tuple] = None) -> None:
        self.status = status
        self.history = history
        self.predicates = predicates
        self.steps = steps
        self.error = error
        #: Observability counters: stores committed to shared memory and
        #: the deepest any thread's store buffer got during the run.
        self.flushes = flushes
        self.max_buffer_depth = max_buffer_depth
        #: Per-thread return values in tid order (entries are None for
        #: threads that never finished, e.g. after a crash).  Outcome-set
        #: specifications — the fuzzing oracles' :class:`OutcomeSpec` —
        #: judge executions by this tuple.
        self.thread_results = thread_results

    @property
    def crashed(self) -> bool:
        """True for safety-spec violations (memory safety / assertions)."""
        return self.status in (ExecutionStatus.MEMORY_VIOLATION,
                               ExecutionStatus.ASSERTION_VIOLATION)

    @property
    def usable(self) -> bool:
        """True if the run is meaningful for checking (not cut off)."""
        return self.status not in (ExecutionStatus.TIMEOUT,
                                   ExecutionStatus.DEADLOCK)

    def __repr__(self) -> str:
        return "<ExecutionResult %s, %d ops, %d preds, %d steps>" % (
            self.status.value, len(self.history), len(self.predicates),
            self.steps)


def run_execution(module: Module, model: StoreBufferModel,
                  scheduler: "Scheduler", entry: str = "main",
                  entry_args: Sequence[int] = (),
                  operations: Sequence[str] = (),
                  max_steps: int = DEFAULT_MAX_STEPS,
                  collect_predicates: bool = True,
                  coverage: Optional[set] = None,
                  sink: Optional[PredicateSink] = None,
                  compiled: Optional[bool] = None) -> ExecutionResult:
    """Run *module* once under *model*, driven by *scheduler*.

    The memory model instance is reset before use, so one instance can be
    reused across many executions.  Pass a set as *coverage* to collect
    the labels of executed instructions across runs.  A *sink* may also be
    supplied to reuse one :class:`PredicateSink` (and its intern table)
    across a worker's run loop; it is cleared before the execution.
    ``compiled`` picks the VM backend (None → the process default:
    closure-compiled unless ``--no-compile``/``REPRO_NO_COMPILE``).
    """
    if collect_predicates:
        if sink is None:
            sink = PredicateSink()
        else:
            sink.clear()
    else:
        sink = None
    vm = make_vm(module, model, compiled=compiled, entry=entry,
                 entry_args=entry_args, operations=operations, sink=sink,
                 max_steps=max_steps, coverage=coverage)

    status = ExecutionStatus.OK
    error: Optional[str] = None
    try:
        scheduler.run(vm)
    except MemorySafetyViolation as exc:
        status, error = ExecutionStatus.MEMORY_VIOLATION, str(exc)
    except AssertionViolation as exc:
        status, error = ExecutionStatus.ASSERTION_VIOLATION, str(exc)
    except StepLimitExceeded as exc:
        status, error = ExecutionStatus.TIMEOUT, str(exc)
    except DeadlockError as exc:
        status, error = ExecutionStatus.DEADLOCK, str(exc)

    predicates = sink.predicates() if sink is not None else []
    thread_results = tuple(vm.threads[tid].result
                           for tid in sorted(vm.threads))
    return ExecutionResult(status, vm.history, predicates, vm.steps, error,
                           flushes=vm.flushes,
                           max_buffer_depth=model.depth_hwm,
                           thread_results=thread_results)


def run_once(module: Module, model_name: str = "sc", seed: int = 0,
             flush_prob: float = 0.5, **kwargs) -> ExecutionResult:
    """Convenience wrapper: build a model + flush-delaying scheduler and run."""
    from ..sched.flush_random import FlushDelayScheduler

    model = make_model(model_name)
    scheduler = FlushDelayScheduler(seed=seed, flush_prob=flush_prob)
    return run_execution(module, model, scheduler, **kwargs)
