"""The DIR virtual machine — the reproduction's extended lli.

Multi-threaded interpretation of DIR modules with pluggable memory models
and schedulers, operation-history recording, and built-in memory-safety
checking.
"""

from .compile import (
    COMPILE_STATS,
    CompiledVM,
    compiled_default,
    make_vm,
    set_compiled_default,
)
from .driver import ExecutionResult, ExecutionStatus, run_execution, run_once
from .errors import (
    AssertionViolation,
    DeadlockError,
    InterpreterError,
    MemorySafetyViolation,
    SpecViolationError,
    StepLimitExceeded,
    VMError,
)
from .events import History, Operation
from .heap import NULL_GUARD, SharedMemory
from .interp import DEFAULT_MAX_STEPS, VM
from .state import Frame, Thread, ThreadStatus

__all__ = [
    "AssertionViolation", "COMPILE_STATS", "CompiledVM",
    "DEFAULT_MAX_STEPS", "DeadlockError", "ExecutionResult",
    "ExecutionStatus", "Frame", "History", "InterpreterError",
    "MemorySafetyViolation", "NULL_GUARD", "Operation", "SharedMemory",
    "SpecViolationError", "StepLimitExceeded", "Thread", "ThreadStatus",
    "VM", "VMError", "compiled_default", "make_vm", "run_execution",
    "run_once", "set_compiled_default",
]
