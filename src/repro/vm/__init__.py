"""The DIR virtual machine — the reproduction's extended lli.

Multi-threaded interpretation of DIR modules with pluggable memory models
and schedulers, operation-history recording, and built-in memory-safety
checking.
"""

from .driver import ExecutionResult, ExecutionStatus, run_execution, run_once
from .errors import (
    AssertionViolation,
    DeadlockError,
    InterpreterError,
    MemorySafetyViolation,
    SpecViolationError,
    StepLimitExceeded,
    VMError,
)
from .events import History, Operation
from .heap import NULL_GUARD, SharedMemory
from .interp import DEFAULT_MAX_STEPS, VM
from .state import Frame, Thread, ThreadStatus

__all__ = [
    "AssertionViolation", "DEFAULT_MAX_STEPS", "DeadlockError",
    "ExecutionResult", "ExecutionStatus", "Frame", "History",
    "InterpreterError", "MemorySafetyViolation", "NULL_GUARD", "Operation",
    "SharedMemory", "SpecViolationError", "StepLimitExceeded", "Thread",
    "ThreadStatus", "VM", "VMError", "run_execution", "run_once",
]
