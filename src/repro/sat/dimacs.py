"""DIMACS CNF reading/writing (interoperability + test corpora)."""

from __future__ import annotations

from typing import List, Tuple


def parse_dimacs(text: str) -> Tuple[int, List[List[int]]]:
    """Parse DIMACS CNF text; returns (num_vars, clauses)."""
    num_vars = 0
    clauses: List[List[int]] = []
    current: List[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError("malformed problem line: %r" % line)
            num_vars = int(parts[2])
            continue
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)
    if current:
        clauses.append(current)
    return num_vars, clauses


def format_dimacs(num_vars: int, clauses: List[List[int]]) -> str:
    """Serialise clauses to DIMACS CNF text."""
    lines = ["p cnf %d %d" % (num_vars, len(clauses))]
    for clause in clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"
