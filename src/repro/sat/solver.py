"""A from-scratch CDCL SAT solver (the reproduction's MiniSAT).

Literals are non-zero ints in DIMACS convention: ``v`` for the positive
literal of variable ``v`` (v >= 1), ``-v`` for its negation.  The solver
implements the standard modern loop: two-watched-literal unit propagation,
first-UIP conflict analysis with clause learning, non-chronological
backjumping, and activity-based (VSIDS-style) decisions.

The repair formulas the synthesis engine produces are tiny (tens of
variables), so raw speed is irrelevant — but the solver is general and is
tested against brute force on random instances.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_UNASSIGNED = -1


class SATSolver:
    """An incremental CDCL solver over integer literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = {}
        self._ok = True  # False once an empty clause was added

        # Lifetime observability counters (never reset; read by the
        # synthesis engine's recorder after each minimal-model search).
        self.solves = 0        # solve() calls
        self.decisions = 0     # branching decisions
        self.conflicts = 0     # conflicts analysed
        self.propagations = 0  # literals propagated
        self.learned = 0       # clauses learned

        # Assignment state (rebuilt per solve() call).
        self._value: List[int] = []      # var -> 0/1/_UNASSIGNED
        self._level: List[int] = []      # var -> decision level
        self._reason: List[Optional[int]] = []  # var -> clause index
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = []
        self._act_inc = 1.0

    # ------------------------------------------------------------------
    # Problem construction

    def new_var(self) -> int:
        """Allocate and return a fresh variable (1-based)."""
        self.num_vars += 1
        return self.num_vars

    def _ensure_vars(self, lits: Iterable[int]) -> None:
        top = max((abs(l) for l in lits), default=0)
        if top > self.num_vars:
            self.num_vars = top

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""
        lits = list(dict.fromkeys(int(l) for l in lits))  # dedupe, keep order
        if any(l == 0 for l in lits):
            raise ValueError("literal 0 is not allowed")
        self._ensure_vars(lits)
        if any(-l in lits for l in lits):
            return self._ok  # tautology: skip
        if not lits:
            self._ok = False
            return False
        index = len(self.clauses)
        self.clauses.append(lits)
        self._watch(lits[0], index)
        if len(lits) > 1:
            self._watch(lits[1], index)
        return self._ok

    def _watch(self, lit: int, clause_index: int) -> None:
        self._watches.setdefault(lit, []).append(clause_index)

    # ------------------------------------------------------------------
    # Assignment helpers

    def _lit_value(self, lit: int) -> int:
        v = self._value[abs(lit)]
        if v == _UNASSIGNED:
            return _UNASSIGNED
        return v if lit > 0 else 1 - v

    def _assign(self, lit: int, reason: Optional[int]) -> None:
        var = abs(lit)
        self._value[var] = 1 if lit > 0 else 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            falsified = -lit
            watchers = self._watches.get(falsified, [])
            i = 0
            while i < len(watchers):
                ci = watchers[i]
                clause = self.clauses[ci]
                # Make sure the falsified literal sits at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    i += 1
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        self._watch(clause[1], ci)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if self._lit_value(first) == 0:
                    return ci
                self._assign(first, ci)
                i += 1
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)

    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        learnt = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        clause = self.clauses[conflict]
        trail_pos = len(self._trail) - 1
        cur_level = len(self._trail_lim)

        while True:
            for q in clause:
                if q == lit:
                    continue
                var = abs(q)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] == cur_level:
                    counter += 1
                else:
                    learnt.append(q)
            # Find next literal to expand on the trail.
            while not seen[abs(self._trail[trail_pos])]:
                trail_pos -= 1
            p = self._trail[trail_pos]
            trail_pos -= 1
            var = abs(p)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learnt.insert(0, -p)
                break
            reason = self._reason[var]
            clause = self.clauses[reason]
            lit = p

        if len(learnt) == 1:
            return learnt, 0
        back_level = max(self._level[abs(q)] for q in learnt[1:])
        # Put a literal of back_level in position 1 for watching.
        for k in range(1, len(learnt)):
            if self._level[abs(learnt[k])] == back_level:
                learnt[1], learnt[k] = learnt[k], learnt[1]
                break
        return learnt, back_level

    def _bump(self, var: int) -> None:
        self._activity[var] += self._act_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._act_inc *= 1e-100

    def _backjump(self, level: int) -> None:
        while len(self._trail_lim) > level:
            mark = self._trail_lim.pop()
            while len(self._trail) > mark:
                lit = self._trail.pop()
                var = abs(lit)
                self._value[var] = _UNASSIGNED
                self._reason[var] = None
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Main loop

    def solve(self, assumptions: Sequence[int] = ()) -> Optional[Dict[int, bool]]:
        """Solve under optional assumption literals.

        Returns ``{var: bool}`` for every variable on success, or None if
        unsatisfiable (under the assumptions).
        """
        self.solves += 1
        if not self._ok:
            return None

        n = self.num_vars
        self._value = [_UNASSIGNED] * (n + 1)
        self._level = [0] * (n + 1)
        self._reason = [None] * (n + 1)
        self._trail = []
        self._trail_lim = []
        self._qhead = 0
        if len(self._activity) != n + 1:
            self._activity = [0.0] * (n + 1)
        self._act_inc = 1.0

        # Re-watch: clause literal order may have changed across solves.
        self._watches = {}
        for ci, clause in enumerate(self.clauses):
            self._watch(clause[0], ci)
            if len(clause) > 1:
                self._watch(clause[1], ci)
            else:
                if self._lit_value(clause[0]) == 0:
                    return None
                if self._lit_value(clause[0]) == _UNASSIGNED:
                    self._assign(clause[0], ci)
        if self._propagate() is not None:
            return None

        for lit in assumptions:
            if self._lit_value(lit) == 1:
                continue
            if self._lit_value(lit) == 0:
                return None
            self._trail_lim.append(len(self._trail))
            self._assign(lit, None)
            if self._propagate() is not None:
                return None
        root_level = len(self._trail_lim)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if len(self._trail_lim) == root_level:
                    return None
                learnt, back_level = self._analyze(conflict)
                back_level = max(back_level, root_level)
                self._backjump(back_level)
                ci = len(self.clauses)
                self.clauses.append(learnt)
                self.learned += 1
                self._watch(learnt[0], ci)
                if len(learnt) > 1:
                    self._watch(learnt[1], ci)
                self._assign(learnt[0], ci if len(learnt) > 1 else None)
                self._act_inc *= 1.05
                continue

            decision = self._pick_branch()
            if decision == 0:
                return {v: self._value[v] == 1 for v in range(1, n + 1)}
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._assign(decision, None)

    def stats(self) -> Dict[str, int]:
        """The lifetime observability counters, as a plain dict."""
        return {"solves": self.solves, "decisions": self.decisions,
                "conflicts": self.conflicts,
                "propagations": self.propagations,
                "learned": self.learned}

    def _pick_branch(self) -> int:
        best_var = 0
        best_act = -1.0
        for var in range(1, self.num_vars + 1):
            if self._value[var] == _UNASSIGNED and self._activity[var] > best_act:
                best_var = var
                best_act = self._activity[var]
        if best_var == 0:
            return 0
        return -best_var  # prefer False: good for minimal models downstream


def solve_clauses(clauses: Iterable[Sequence[int]],
                  assumptions: Sequence[int] = ()) -> Optional[Dict[int, bool]]:
    """One-shot convenience: solve a clause list."""
    solver = SATSolver()
    for clause in clauses:
        if not solver.add_clause(clause):
            return None
    return solver.solve(assumptions)
