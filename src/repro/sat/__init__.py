"""From-scratch SAT solving — the reproduction's stand-in for MiniSAT."""

from .dimacs import format_dimacs, parse_dimacs
from .models import enumerate_minimal_models, minimum_model, shrink_model
from .solver import SATSolver, solve_clauses

__all__ = [
    "SATSolver", "enumerate_minimal_models", "format_dimacs",
    "minimum_model", "parse_dimacs", "shrink_model", "solve_clauses",
]
