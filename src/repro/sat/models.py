"""Model enumeration and minimal-model selection.

The synthesis engine needs a *minimal* satisfying assignment of the repair
formula Φ (Algorithm 2): enabling as few ordering predicates — fences — as
possible.  Following the paper, we obtain minimal solutions by repeatedly
calling the solver, blocking each found solution, and keeping the
cardinality-minimal ones.

For the monotone (all-positive) formulas Φ produces, a found model is
first *shrunk* by greedily dropping true variables while the formula stays
satisfied, so every enumerated model is already inclusion-minimal.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from .solver import SATSolver


def shrink_model(clauses: Sequence[Sequence[int]],
                 true_vars: FrozenSet[int]) -> FrozenSet[int]:
    """Greedily remove true variables while all clauses stay satisfied.

    Sound for any CNF whose satisfaction is monotone in the returned
    variables (e.g. all-positive clauses).  Deterministic: variables are
    tried in decreasing order.
    """
    current = set(true_vars)
    for var in sorted(true_vars, reverse=True):
        candidate = current - {var}
        if _satisfies(clauses, candidate):
            current = candidate
    return frozenset(current)


def _satisfies(clauses: Sequence[Sequence[int]], true_vars) -> bool:
    for clause in clauses:
        for lit in clause:
            if (lit > 0 and lit in true_vars) or (lit < 0 and -lit not in true_vars):
                break
        else:
            return False
    return True


def enumerate_minimal_models(clauses: Sequence[Sequence[int]],
                             limit: int = 64,
                             stats: Optional[Dict[str, int]] = None
                             ) -> List[FrozenSet[int]]:
    """Enumerate inclusion-minimal models of a monotone positive CNF.

    Returns up to *limit* distinct minimal models (as frozensets of true
    variables), found MiniSAT-style: solve, shrink, block, repeat.  Pass
    a dict as *stats* to accumulate the solver's observability counters
    (solves, decisions, conflicts, propagations, learned) into it.
    """
    solver = SATSolver()
    ok = True
    for clause in clauses:
        if not solver.add_clause(clause):
            ok = False
            break
    models: List[FrozenSet[int]] = []
    while ok and len(models) < limit:
        assignment = solver.solve()
        if assignment is None:
            break
        true_vars = frozenset(v for v, val in assignment.items() if val)
        minimal = shrink_model(clauses, true_vars)
        if minimal not in models:
            models.append(minimal)
        # Block every superset of this minimal model: at least one of its
        # variables must be false in any future model.
        if not minimal:
            break  # the empty model satisfies everything: done
        if not solver.add_clause([-v for v in sorted(minimal)]):
            break
    if stats is not None:
        for name, value in solver.stats().items():
            stats[name] = stats.get(name, 0) + value
    return models


def minimum_model(clauses: Sequence[Sequence[int]],
                  limit: int = 64,
                  stats: Optional[Dict[str, int]] = None
                  ) -> Optional[FrozenSet[int]]:
    """A cardinality-minimum model of a monotone positive CNF.

    Among all enumerated inclusion-minimal models, pick the smallest;
    ties break deterministically on the sorted variable tuple.  Returns
    None when the formula is unsatisfiable.  *stats* accumulates solver
    counters as in :func:`enumerate_minimal_models`.
    """
    models = enumerate_minimal_models(clauses, limit, stats=stats)
    if not models:
        return None
    return min(models, key=lambda m: (len(m), tuple(sorted(m))))
