"""Ordering predicates ``[l < k]`` and their per-execution collection.

An ordering predicate (paper §4.1) names two program labels of the same
thread and demands that the statement at ``l`` take visible effect before
the statement at ``k``.  An execution *violates* ``[l < k]`` when a store
at ``l`` is followed (same thread) by an access at ``k`` to a *different*
shared variable with no flush of ``l``'s store in between — exactly the
situations the instrumented semantics detects online.

``avoid(p)`` (the disjunction of predicates violated by execution ``p``) is
simply the contents of the :class:`PredicateSink` after running ``p``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..ir.instructions import FenceKind


class OrderingPredicate:
    """The predicate ``[store_label < access_label]``.

    ``kind`` records which fence flavour enforcing the predicate calls for:
    ``ST_LD`` when the access at ``k`` is a load, ``ST_ST`` when it is a
    store, ``FULL`` when both situations were observed (or the access is a
    CAS).
    """

    __slots__ = ("store_label", "access_label", "kind")

    def __init__(self, store_label: int, access_label: int,
                 kind: FenceKind) -> None:
        self.store_label = store_label
        self.access_label = access_label
        self.kind = kind

    @property
    def key(self) -> Tuple[int, int]:
        """Identity of the predicate — the label pair ``(l, k)``."""
        return (self.store_label, self.access_label)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, OrderingPredicate)
                and other.key == self.key)

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return "[L%d < L%d]/%s" % (
            self.store_label, self.access_label, self.kind.value)


def merge_kinds(a: FenceKind, b: FenceKind) -> FenceKind:
    """Combine two required fence flavours into one that provides both."""
    if a == b:
        return a
    return FenceKind.FULL


class PredicateSink:
    """Collects the ordering predicates violated by one execution.

    The memory model reports each bypass event via :meth:`add`; duplicate
    label pairs are merged (their fence kinds combined).  After the
    execution, :meth:`predicates` is the paper's ``avoid(p)`` disjunction.

    A sink can be reused across many executions (:meth:`clear` between
    runs).  Predicate objects are interned per ``(l, k, kind)``, so a hot
    loop that keeps seeing the same bypasses allocates nothing; callers
    must treat the returned predicates as immutable.
    """

    def __init__(self) -> None:
        self._kinds: Dict[Tuple[int, int], FenceKind] = {}
        self._intern: Dict[Tuple[int, int, FenceKind],
                           OrderingPredicate] = {}

    def add(self, store_label: int, access_label: int,
            kind: FenceKind) -> None:
        key = (store_label, access_label)
        existing = self._kinds.get(key)
        if existing is None:
            self._kinds[key] = kind
        elif existing is not kind:
            self._kinds[key] = merge_kinds(existing, kind)

    def predicates(self) -> List[OrderingPredicate]:
        """The collected predicates, in deterministic (label-pair) order."""
        out = []
        intern = self._intern
        for key in sorted(self._kinds):
            kind = self._kinds[key]
            pred = intern.get((key[0], key[1], kind))
            if pred is None:
                pred = OrderingPredicate(key[0], key[1], kind)
                intern[(key[0], key[1], kind)] = pred
            out.append(pred)
        return out

    def keys(self) -> FrozenSet[Tuple[int, int]]:
        return frozenset(self._kinds)

    def clear(self) -> None:
        """Forget the current execution (the intern table is kept)."""
        self._kinds.clear()

    def __len__(self) -> int:
        return len(self._kinds)

    def __bool__(self) -> bool:
        return bool(self._kinds)

    def __iter__(self):
        return iter(self.predicates())
