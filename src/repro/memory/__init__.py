"""Operational store-buffer memory models (SC, TSO, PSO).

Implements the paper's Semantics 1 (value buffers) fused with Semantics 2
(the instrumented label buffers used to derive ordering predicates): each
buffered store carries the program label that issued it, and every shared
access reports the pending labels it may have bypassed to a
:class:`~repro.memory.predicates.PredicateSink`.
"""

from .models import (
    PSOModel,
    SCModel,
    StoreBufferModel,
    TSOModel,
    make_model,
)
from .predicates import OrderingPredicate, PredicateSink

__all__ = [
    "OrderingPredicate",
    "PSOModel",
    "PredicateSink",
    "SCModel",
    "StoreBufferModel",
    "TSOModel",
    "make_model",
]
