"""Store-buffer models for SC, TSO and PSO (paper Semantics 1 + 2).

The models own the per-thread write buffers; committed values land in
shared memory through a ``commit`` callback supplied by the VM (which is
also where memory-safety checks on flushed addresses happen, matching the
paper's rule that a flush into freed memory is a safety violation).

Buffered entries carry the issuing instruction's label, which doubles as
the paper's instrumented auxiliary buffer ``B-flat``: whenever a shared
access at label ``k`` finds pending stores to *other* variables in its own
thread, it reports the predicates ``[l_pending < k]`` to the attached
:class:`~repro.memory.predicates.PredicateSink`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..ir.instructions import FenceKind
from .predicates import PredicateSink

#: commit(tid, addr, value, label) — write a flushed value to shared memory.
CommitFn = Callable[[int, int, int, int], None]

#: Shared empty list for the no-pending-stores fast path (allocation-free
#: common case).  Callers treat ``pending_addrs``/``pending_tids`` results
#: as read-only.
_EMPTY_LIST: List[int] = []


class StoreBufferModel:
    """Abstract base for the three memory models."""

    name = "abstract"

    def __init__(self) -> None:
        self._commit: Optional[CommitFn] = None
        self.sink: Optional[PredicateSink] = None
        #: Deepest any single thread's buffer got this execution (the
        #: store-buffer pressure metric; 0 under SC).
        self.depth_hwm = 0
        self._depths: Dict[int, int] = {}
        #: Threads with at least one buffered store, maintained
        #: incrementally by write/flush so schedulers do not rescan every
        #: thread's buffers at each decision point.
        self._pending_tids: set = set()

    def attach(self, commit: CommitFn,
               sink: Optional[PredicateSink] = None) -> None:
        """Connect the model to shared memory and (optionally) a sink."""
        self._commit = commit
        self.sink = sink

    # -- interface used by the VM -------------------------------------

    def read(self, tid: int, addr: int, label: int) -> Tuple[bool, int]:
        """Attempt a buffered read.

        Returns ``(hit, value)``; on a miss the VM reads shared memory.
        Also reports bypass predicates for the access.
        """
        raise NotImplementedError

    def write(self, tid: int, addr: int, value: int, label: int) -> None:
        """Issue a store (buffered under TSO/PSO, immediate under SC)."""
        raise NotImplementedError

    def pre_cas(self, tid: int, addr: int, label: int) -> None:
        """Drain whatever the model's CAS rule requires before the atomic
        update executes, reporting bypass predicates first."""
        raise NotImplementedError

    def fence(self, tid: int, kind: FenceKind) -> None:
        """Execute a fence: drain per the model's ordering guarantees."""
        raise NotImplementedError

    def has_pending(self, tid: int) -> bool:
        """True if the thread has any buffered stores."""
        raise NotImplementedError

    def pending_addrs(self, tid: int) -> List[int]:
        """Addresses with buffered stores (PSO: buffer keys; TSO: queue)."""
        raise NotImplementedError

    def pending_count(self, tid: int) -> int:
        raise NotImplementedError

    def pending_tids(self) -> List[int]:
        """Threads with buffered stores, ascending (incremental set)."""
        if not self._pending_tids:
            return _EMPTY_LIST
        return sorted(self._pending_tids)

    def head_addr(self, tid: int) -> Optional[int]:
        """Address the next ``flush_one(tid)`` would commit (None if no
        buffered store) — the flush's concrete footprint for POR."""
        raise NotImplementedError

    def flush_one(self, tid: int, addr: Optional[int] = None) -> bool:
        """Commit the oldest buffered store (of ``addr``, if given).

        Returns True if something was flushed.
        """
        raise NotImplementedError

    def drain(self, tid: int) -> None:
        """Commit every buffered store of the thread, oldest first."""
        while self.flush_one(tid):
            pass

    def reset(self) -> None:
        """Discard all buffers (start of a new execution)."""
        raise NotImplementedError

    # -- snapshot/restore (schedule exploration) -----------------------
    #
    # ``snapshot()`` captures the model's complete mutable state as an
    # immutable-enough value; ``restore()`` reinstates it.  One snapshot
    # may be restored many times (fork-and-backtrack DFS), so restore
    # always rebuilds fresh mutable containers.  ``fingerprint()`` is a
    # canonical hashable encoding of the buffers for state dedup.

    def snapshot(self):
        return (self.depth_hwm, dict(self._depths),
                self._buffers_snapshot())

    def restore(self, state) -> None:
        self.depth_hwm = state[0]
        self._depths = dict(state[1])
        self._buffers_restore(state[2])

    def _buffers_snapshot(self):
        return None

    def _buffers_restore(self, state) -> None:
        if state is not None:
            raise NotImplementedError(
                "%s does not implement buffer restore" % type(self).__name__)

    def fingerprint(self):
        """Canonical hashable encoding of all buffered stores."""
        return ()

    # -- helpers -------------------------------------------------------

    def _reset_depths(self) -> None:
        self.depth_hwm = 0
        self._depths.clear()

    def _note_push(self, tid: int) -> None:
        """A store entered the thread's buffer: bump the depth HWM and
        mark the thread pending.  The pending set lives here (not in the
        concrete write/flush methods) so subclasses overriding those —
        the broken-model oracle tests do — keep it consistent for free."""
        depth = self._depths.get(tid, 0) + 1
        self._depths[tid] = depth
        self._pending_tids.add(tid)
        if depth > self.depth_hwm:
            self.depth_hwm = depth

    def _note_pop(self, tid: int) -> None:
        depth = self._depths[tid] - 1
        self._depths[tid] = depth
        if depth <= 0:
            self._pending_tids.discard(tid)

    def _do_commit(self, tid: int, addr: int, value: int, label: int) -> None:
        if self._commit is None:
            raise RuntimeError("memory model not attached to shared memory")
        self._commit(tid, addr, value, label)


class SCModel(StoreBufferModel):
    """Sequentially consistent memory: no buffering at all.

    Running the engine under SC is how the paper checks algorithmic
    correctness independent of memory-model effects (e.g. discovering that
    Cilk's THE queue is not linearizable even without reordering).
    """

    name = "sc"

    def read(self, tid, addr, label):
        return (False, 0)

    def write(self, tid, addr, value, label):
        self._do_commit(tid, addr, value, label)

    def pre_cas(self, tid, addr, label):
        pass

    def fence(self, tid, kind):
        pass

    def has_pending(self, tid):
        return False

    def pending_addrs(self, tid):
        return _EMPTY_LIST

    def pending_count(self, tid):
        return 0

    def head_addr(self, tid):
        return None

    def flush_one(self, tid, addr=None):
        return False

    def reset(self):
        pass


class TSOModel(StoreBufferModel):
    """Total Store Order: one FIFO buffer of (addr, value, label) per thread.

    Loads may bypass earlier stores to *different* addresses; loads of a
    buffered address forward the newest buffered value.  Store-store order
    is preserved (single FIFO), so only store→load predicates arise and a
    ``ST_ST`` fence is a no-op.
    """

    name = "tso"

    def __init__(self) -> None:
        super().__init__()
        self._buffers: Dict[int, Deque[Tuple[int, int, int]]] = {}

    def _buffer(self, tid: int) -> Deque[Tuple[int, int, int]]:
        buf = self._buffers.get(tid)
        if buf is None:
            buf = deque()
            self._buffers[tid] = buf
        return buf

    def read(self, tid, addr, label):
        buf = self._buffers.get(tid)
        if not buf:
            return (False, 0)
        if self.sink is not None:
            for (pending_addr, _value, pending_label) in buf:
                if pending_addr != addr:
                    self.sink.add(pending_label, label, FenceKind.ST_LD)
        # Store forwarding: newest buffered value for this address wins.
        for (pending_addr, value, _pl) in reversed(buf):
            if pending_addr == addr:
                return (True, value)
        return (False, 0)

    def write(self, tid, addr, value, label):
        # TSO never reorders store-store: no predicates on a store.
        self._buffer(tid).append((addr, value, label))
        self._note_push(tid)

    def pre_cas(self, tid, addr, label):
        # x86 LOCK'd operations are full barriers: drain everything.  With
        # an empty buffer no bypass is possible, hence no predicates.
        self.drain(tid)

    def fence(self, tid, kind):
        if kind is FenceKind.ST_ST:
            return  # TSO already orders store-store.
        self.drain(tid)

    def has_pending(self, tid):
        buf = self._buffers.get(tid)
        return bool(buf)

    def pending_addrs(self, tid):
        buf = self._buffers.get(tid)
        if not buf:
            return _EMPTY_LIST
        return [entry[0] for entry in buf]

    def pending_count(self, tid):
        buf = self._buffers.get(tid)
        return len(buf) if buf else 0

    def head_addr(self, tid):
        buf = self._buffers.get(tid)
        return buf[0][0] if buf else None

    def flush_one(self, tid, addr=None):
        buf = self._buffers.get(tid)
        if not buf:
            return False
        # TSO flushes strictly in FIFO order; a requested addr that is not
        # at the head cannot be flushed out of order.
        if addr is not None and buf[0][0] != addr:
            return False
        pending_addr, value, label = buf.popleft()
        self._note_pop(tid)
        self._do_commit(tid, pending_addr, value, label)
        return True

    def reset(self):
        self._buffers.clear()
        self._pending_tids.clear()
        self._reset_depths()

    def _buffers_snapshot(self):
        return {tid: tuple(buf)
                for tid, buf in self._buffers.items() if buf}

    def _buffers_restore(self, state):
        self._buffers = {tid: deque(entries)
                         for tid, entries in state.items()}
        self._pending_tids = set(state)

    def fingerprint(self):
        return tuple(sorted((tid, tuple(buf))
                            for tid, buf in self._buffers.items() if buf))


class PSOModel(StoreBufferModel):
    """Partial Store Order: one FIFO buffer per (thread, address).

    Stores to different addresses may be committed in any relative order,
    so both store→load and store→store bypasses occur, and predicates of
    both kinds are generated (paper Semantics 2).
    """

    name = "pso"

    def __init__(self) -> None:
        super().__init__()
        # tid -> addr -> deque of (value, label)
        self._buffers: Dict[int, Dict[int, Deque[Tuple[int, int]]]] = {}

    def _thread_buffers(self, tid: int) -> Dict[int, Deque[Tuple[int, int]]]:
        bufs = self._buffers.get(tid)
        if bufs is None:
            bufs = {}
            self._buffers[tid] = bufs
        return bufs

    def _report_bypasses(self, tid: int, addr: int, label: int,
                         kind: FenceKind) -> None:
        if self.sink is None:
            return
        bufs = self._buffers.get(tid)
        if not bufs:
            return
        for other_addr, entries in bufs.items():
            if other_addr == addr or not entries:
                continue
            for (_value, pending_label) in entries:
                self.sink.add(pending_label, label, kind)

    def read(self, tid, addr, label):
        self._report_bypasses(tid, addr, label, FenceKind.ST_LD)
        bufs = self._buffers.get(tid)
        if bufs:
            entries = bufs.get(addr)
            if entries:
                return (True, entries[-1][0])
        return (False, 0)

    def write(self, tid, addr, value, label):
        self._report_bypasses(tid, addr, label, FenceKind.ST_ST)
        bufs = self._thread_buffers(tid)
        entries = bufs.get(addr)
        if entries is None:
            entries = deque()
            bufs[addr] = entries
        entries.append((value, label))
        self._note_push(tid)

    def pre_cas(self, tid, addr, label):
        # The paper's CAS rule requires only B(x) = empty under PSO; other
        # variables' buffers stay pending — and are reported as bypassed.
        self._report_bypasses(tid, addr, label, FenceKind.FULL)
        self.drain_addr(tid, addr)

    def fence(self, tid, kind):
        # The paper's FENCE rule demands all of the thread's buffers empty
        # regardless of flavour; TSO-only distinctions don't apply here.
        self.drain(tid)

    def drain_addr(self, tid: int, addr: int) -> None:
        while self.flush_one(tid, addr):
            pass

    def has_pending(self, tid):
        bufs = self._buffers.get(tid)
        if not bufs:
            return False
        return any(entries for entries in bufs.values())

    def pending_addrs(self, tid):
        bufs = self._buffers.get(tid)
        if not bufs:
            return _EMPTY_LIST
        return sorted(addr for addr, entries in bufs.items() if entries)

    def pending_count(self, tid):
        bufs = self._buffers.get(tid)
        if not bufs:
            return 0
        return sum(len(entries) for entries in bufs.values())

    def head_addr(self, tid):
        bufs = self._buffers.get(tid)
        if not bufs:
            return None
        candidates = [a for a, entries in bufs.items() if entries]
        return min(candidates) if candidates else None

    def flush_one(self, tid, addr=None):
        bufs = self._buffers.get(tid)
        if not bufs:
            return False
        if addr is None:
            candidates = [a for a, entries in bufs.items() if entries]
            if not candidates:
                return False
            addr = min(candidates)  # deterministic pick for drain()
        entries = bufs.get(addr)
        if not entries:
            return False
        value, label = entries.popleft()
        if not entries:
            del bufs[addr]
        self._note_pop(tid)
        self._do_commit(tid, addr, value, label)
        return True

    def reset(self):
        self._buffers.clear()
        self._pending_tids.clear()
        self._reset_depths()

    def _buffers_snapshot(self):
        return {tid: {addr: tuple(entries)
                      for addr, entries in bufs.items() if entries}
                for tid, bufs in self._buffers.items() if bufs}

    def _buffers_restore(self, state):
        self._buffers = {tid: {addr: deque(entries)
                               for addr, entries in bufs.items()}
                         for tid, bufs in state.items()}
        self._pending_tids = {tid for tid, bufs in self._buffers.items()
                              if bufs}

    def fingerprint(self):
        return tuple(sorted(
            (tid, tuple(sorted((addr, tuple(entries))
                               for addr, entries in bufs.items()
                               if entries)))
            for tid, bufs in self._buffers.items()
            if any(bufs.values())))


_MODELS = {"sc": SCModel, "tso": TSOModel, "pso": PSOModel}


def make_model(name: str) -> StoreBufferModel:
    """Instantiate a memory model by name ("sc", "tso" or "pso")."""
    try:
        return _MODELS[name.lower()]()
    except KeyError:
        raise ValueError("unknown memory model %r (want sc/tso/pso)"
                         % (name,)) from None
