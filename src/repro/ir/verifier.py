"""Structural verification of DIR modules.

The verifier catches malformed IR early — dangling branch targets, calls to
unknown functions, duplicate labels, non-terminated functions — so that
interpreter failures always mean semantic bugs, not broken construction.
"""

from __future__ import annotations

from typing import List

from . import instructions as ins
from .module import Module
from .operands import Const, Reg, Sym, is_operand


class VerificationError(Exception):
    """Raised when a module fails structural verification."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = errors


def verify_module(module: Module) -> None:
    """Check a module's structural invariants; raise on any violation."""
    errors: List[str] = []
    seen_labels = set()

    for fn in module.functions.values():
        if not fn.body:
            errors.append("%s: empty body" % fn.name)
            continue
        if not fn.body[-1].is_terminator():
            errors.append("%s: does not end with a terminator" % fn.name)
        local_labels = set()
        for instr in fn.body:
            if instr.label in seen_labels:
                errors.append("%s: duplicate label L%d" % (fn.name, instr.label))
            seen_labels.add(instr.label)
            local_labels.add(instr.label)
        for instr in fn.body:
            for target in instr.jump_targets():
                if target not in local_labels:
                    errors.append("%s: L%d branches to unknown L%d"
                                  % (fn.name, instr.label, target))
            _check_operands(module, fn.name, instr, errors)

    if errors:
        raise VerificationError(errors)


def _check_operands(module: Module, fn_name: str, instr, errors: List[str]):
    operands = []
    if isinstance(instr, ins.Mov):
        operands = [instr.src]
    elif isinstance(instr, ins.BinOp):
        operands = [instr.a, instr.b]
    elif isinstance(instr, ins.UnOp):
        operands = [instr.a]
    elif isinstance(instr, ins.Load):
        operands = [instr.addr]
    elif isinstance(instr, ins.Store):
        operands = [instr.src, instr.addr]
    elif isinstance(instr, ins.Cas):
        operands = [instr.addr, instr.expected, instr.new]
    elif isinstance(instr, ins.Cbr):
        operands = [instr.cond]
    elif isinstance(instr, (ins.Call, ins.Fork)):
        operands = list(instr.args)
        if instr.fn not in module.functions:
            errors.append("%s: L%d %s unknown function %r"
                          % (fn_name, instr.label, instr.op, instr.fn))
        elif len(instr.args) != len(module.functions[instr.fn].params):
            errors.append("%s: L%d %s %s arity mismatch (%d args, %d params)"
                          % (fn_name, instr.label, instr.op, instr.fn,
                             len(instr.args),
                             len(module.functions[instr.fn].params)))
    elif isinstance(instr, ins.Ret):
        if instr.value is not None:
            operands = [instr.value]
    elif isinstance(instr, ins.Join):
        operands = [instr.tid]
    elif isinstance(instr, ins.PageAlloc):
        operands = [instr.size]
    elif isinstance(instr, ins.PageFree):
        operands = [instr.addr]
    elif isinstance(instr, ins.AddrOf):
        if instr.sym.name not in module.globals:
            errors.append("%s: L%d addrof unknown global %r"
                          % (fn_name, instr.label, instr.sym.name))
    elif isinstance(instr, ins.Assert):
        operands = [instr.cond]

    for op in operands:
        if not is_operand(op):
            errors.append("%s: L%d bad operand %r"
                          % (fn_name, instr.label, op))
        elif isinstance(op, Sym) and op.name not in module.globals:
            errors.append("%s: L%d references unknown global %r"
                          % (fn_name, instr.label, op.name))
