"""DIR instruction set.

Every instruction carries a globally unique integer ``label`` (the paper's
program label ``l``) and an optional ``src_line`` tying it back to the MiniC
source that produced it.  Labels are stable across program mutation: fence
insertion creates instructions with fresh labels and never renumbers
existing ones, so ordering predicates ``[l < k]`` discovered in one round
remain meaningful in later rounds.

The instruction set mirrors Table 1 of the paper (load, store, cas, fence,
call, return, fork, join, self) plus the register-level arithmetic and
control flow needed to express whole algorithms, and two allocation
intrinsics (``pagealloc``/``pagefree``) standing in for ``mmap``/``munmap``.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from .operands import Const, Reg, Sym


class FenceKind(enum.Enum):
    """Memory fence flavours.

    * ``FULL`` — orders everything (drains all buffers of the thread).
    * ``ST_ST`` — store-store fence.  A no-op under TSO (which never
      reorders store-store) but drains buffers under PSO.
    * ``ST_LD`` — store-load fence.  Drains under both TSO and PSO.
    """

    FULL = "full"
    ST_ST = "st_st"
    ST_LD = "st_ld"

    def subsumes(self, other: "FenceKind") -> bool:
        """Return True if this fence also provides *other*'s ordering."""
        return self is FenceKind.FULL or self is other


class Instr:
    """Base class for all DIR instructions."""

    __slots__ = ("label", "src_line")

    #: Mnemonic, overridden per subclass.
    op: str = "?"

    def __init__(self, label: int, src_line: Optional[int] = None) -> None:
        self.label = label
        self.src_line = src_line

    # -- classification helpers used by passes, the VM and the scheduler --

    def is_shared_access(self) -> bool:
        """True for instructions that touch shared memory (load/store/cas)."""
        return False

    def is_store(self) -> bool:
        return False

    def is_load(self) -> bool:
        return False

    def is_terminator(self) -> bool:
        """True for instructions that end a basic block (br/cbr/ret)."""
        return False

    def jump_targets(self) -> Sequence[int]:
        """Labels of instructions this one may jump to (empty if fallthrough)."""
        return ()

    def operands_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        body = self.operands_repr()
        text = "L%d: %s" % (self.label, self.op)
        if body:
            text += " " + body
        return text


class ConstInstr(Instr):
    """``dst = value``"""

    __slots__ = ("dst", "value")
    op = "const"

    def __init__(self, label, dst: Reg, value: int, src_line=None):
        super().__init__(label, src_line)
        self.dst = dst
        self.value = int(value)

    def operands_repr(self):
        return "%r, %d" % (self.dst, self.value)


class Mov(Instr):
    """``dst = src`` (register/constant copy — thread-local only)."""

    __slots__ = ("dst", "src")
    op = "mov"

    def __init__(self, label, dst: Reg, src, src_line=None):
        super().__init__(label, src_line)
        self.dst = dst
        self.src = src

    def operands_repr(self):
        return "%r, %r" % (self.dst, self.src)


#: Binary operator names understood by :class:`BinOp`.
BINARY_OPS = frozenset(
    [
        "add", "sub", "mul", "div", "mod",
        "and", "or", "xor", "shl", "shr",
        "eq", "ne", "lt", "le", "gt", "ge",
    ]
)

#: Unary operator names understood by :class:`UnOp`.
UNARY_OPS = frozenset(["neg", "not", "bnot"])


class BinOp(Instr):
    """``dst = a <binop> b`` over thread-local values."""

    __slots__ = ("dst", "binop", "a", "b")
    op = "binop"

    def __init__(self, label, dst: Reg, binop: str, a, b, src_line=None):
        if binop not in BINARY_OPS:
            raise ValueError("unknown binary operator: %r" % (binop,))
        super().__init__(label, src_line)
        self.dst = dst
        self.binop = binop
        self.a = a
        self.b = b

    def operands_repr(self):
        return "%r, %s, %r, %r" % (self.dst, self.binop, self.a, self.b)


class UnOp(Instr):
    """``dst = <unop> a`` over thread-local values."""

    __slots__ = ("dst", "unop", "a")
    op = "unop"

    def __init__(self, label, dst: Reg, unop: str, a, src_line=None):
        if unop not in UNARY_OPS:
            raise ValueError("unknown unary operator: %r" % (unop,))
        super().__init__(label, src_line)
        self.dst = dst
        self.unop = unop
        self.a = a

    def operands_repr(self):
        return "%r, %s, %r" % (self.dst, self.unop, self.a)


class Load(Instr):
    """``dst = *addr`` — shared-memory load through the memory model."""

    __slots__ = ("dst", "addr")
    op = "load"

    def __init__(self, label, dst: Reg, addr, src_line=None):
        super().__init__(label, src_line)
        self.dst = dst
        self.addr = addr

    def is_shared_access(self):
        return True

    def is_load(self):
        return True

    def operands_repr(self):
        return "%r, [%r]" % (self.dst, self.addr)


class Store(Instr):
    """``*addr = src`` — shared-memory store (buffered under TSO/PSO)."""

    __slots__ = ("src", "addr")
    op = "store"

    def __init__(self, label, src, addr, src_line=None):
        super().__init__(label, src_line)
        self.src = src
        self.addr = addr

    def is_shared_access(self):
        return True

    def is_store(self):
        return True

    def operands_repr(self):
        return "[%r], %r" % (self.addr, self.src)


class Cas(Instr):
    """``dst = CAS(*addr, expected, new)`` — atomic compare-and-swap.

    Sets ``dst`` to 1 on success, 0 on failure.  Per the paper's CAS rules,
    executing a CAS requires the relevant store buffer(s) to be empty: the
    VM drains the whole thread buffer under TSO and the target variable's
    buffer under PSO before performing the atomic update.
    """

    __slots__ = ("dst", "addr", "expected", "new")
    op = "cas"

    def __init__(self, label, dst: Reg, addr, expected, new, src_line=None):
        super().__init__(label, src_line)
        self.dst = dst
        self.addr = addr
        self.expected = expected
        self.new = new

    def is_shared_access(self):
        return True

    def operands_repr(self):
        return "%r, [%r], %r, %r" % (self.dst, self.addr, self.expected, self.new)


class Fence(Instr):
    """A memory fence of the given :class:`FenceKind`.

    ``synthesized`` marks fences inserted by the synthesis engine (as
    opposed to fences present in the original program), so that reports can
    distinguish inferred fences from pre-existing ones.
    """

    __slots__ = ("kind", "synthesized")
    op = "fence"

    def __init__(self, label, kind: FenceKind = FenceKind.FULL,
                 src_line=None, synthesized: bool = False):
        super().__init__(label, src_line)
        self.kind = kind
        self.synthesized = synthesized

    def operands_repr(self):
        tag = " (synth)" if self.synthesized else ""
        return self.kind.value + tag


class Br(Instr):
    """Unconditional branch to the instruction with label ``target``."""

    __slots__ = ("target",)
    op = "br"

    def __init__(self, label, target: int, src_line=None):
        super().__init__(label, src_line)
        self.target = target

    def is_terminator(self):
        return True

    def jump_targets(self):
        return (self.target,)

    def operands_repr(self):
        return "L%d" % self.target


class Cbr(Instr):
    """Conditional branch: if ``cond`` is non-zero go to ``then_target``,
    otherwise ``else_target``."""

    __slots__ = ("cond", "then_target", "else_target")
    op = "cbr"

    def __init__(self, label, cond, then_target: int, else_target: int,
                 src_line=None):
        super().__init__(label, src_line)
        self.cond = cond
        self.then_target = then_target
        self.else_target = else_target

    def is_terminator(self):
        return True

    def jump_targets(self):
        return (self.then_target, self.else_target)

    def operands_repr(self):
        return "%r, L%d, L%d" % (self.cond, self.then_target, self.else_target)


class Call(Instr):
    """``dst = fn(args...)`` — intra-module function call."""

    __slots__ = ("dst", "fn", "args")
    op = "call"

    def __init__(self, label, dst: Optional[Reg], fn: str, args: List,
                 src_line=None):
        super().__init__(label, src_line)
        self.dst = dst
        self.fn = fn
        self.args = list(args)

    def operands_repr(self):
        return "%r, %s(%s)" % (self.dst, self.fn,
                               ", ".join(repr(a) for a in self.args))


class Ret(Instr):
    """Return from the current function (``value`` may be None for void)."""

    __slots__ = ("value",)
    op = "ret"

    def __init__(self, label, value=None, src_line=None):
        super().__init__(label, src_line)
        self.value = value

    def is_terminator(self):
        return True

    def operands_repr(self):
        return repr(self.value) if self.value is not None else ""


class Fork(Instr):
    """``dst = fork(fn, args...)`` — spawn a thread running ``fn``.

    ``dst`` receives the new thread id.
    """

    __slots__ = ("dst", "fn", "args")
    op = "fork"

    def __init__(self, label, dst: Optional[Reg], fn: str, args: List,
                 src_line=None):
        super().__init__(label, src_line)
        self.dst = dst
        self.fn = fn
        self.args = list(args)

    def operands_repr(self):
        return "%r, %s(%s)" % (self.dst, self.fn,
                               ", ".join(repr(a) for a in self.args))


class Join(Instr):
    """Block until thread ``tid`` finishes and its buffers are drained."""

    __slots__ = ("tid",)
    op = "join"

    def __init__(self, label, tid, src_line=None):
        super().__init__(label, src_line)
        self.tid = tid

    def operands_repr(self):
        return repr(self.tid)


class SelfId(Instr):
    """``dst = self()`` — the calling thread's id."""

    __slots__ = ("dst",)
    op = "self"

    def __init__(self, label, dst: Reg, src_line=None):
        super().__init__(label, src_line)
        self.dst = dst

    def operands_repr(self):
        return repr(self.dst)


class PageAlloc(Instr):
    """``dst = pagealloc(size)`` — allocate ``size`` fresh shared cells.

    Stands in for ``mmap``: returns the base address of a new region that
    is registered with the memory-safety checker.  Bases are 2-aligned so
    algorithms may use the low pointer bit as a mark (Harris's set).
    """

    __slots__ = ("dst", "size")
    op = "pagealloc"

    def __init__(self, label, dst: Reg, size, src_line=None):
        super().__init__(label, src_line)
        self.dst = dst
        self.size = size

    def operands_repr(self):
        return "%r, %r" % (self.dst, self.size)


class PageFree(Instr):
    """``pagefree(addr)`` — release a region previously page-allocated.

    Per the paper, deallocation does *not* flush write buffers; a later
    flush into the freed region is a memory-safety violation.
    """

    __slots__ = ("addr",)
    op = "pagefree"

    def __init__(self, label, addr, src_line=None):
        super().__init__(label, src_line)
        self.addr = addr

    def operands_repr(self):
        return repr(self.addr)


class AddrOf(Instr):
    """``dst = &global`` — materialise the address of a module global."""

    __slots__ = ("dst", "sym")
    op = "addrof"

    def __init__(self, label, dst: Reg, sym: Sym, src_line=None):
        super().__init__(label, src_line)
        self.dst = dst
        self.sym = sym

    def operands_repr(self):
        return "%r, %r" % (self.dst, self.sym)


class Assert(Instr):
    """Abort the execution with ``AssertionViolation`` if cond is zero."""

    __slots__ = ("cond", "message")
    op = "assert"

    def __init__(self, label, cond, message: str = "", src_line=None):
        super().__init__(label, src_line)
        self.cond = cond
        self.message = message

    def operands_repr(self):
        return "%r, %r" % (self.cond, self.message)


class Nop(Instr):
    """Does nothing; used as a branch anchor."""

    __slots__ = ()
    op = "nop"
