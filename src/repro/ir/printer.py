"""Human-readable printing of DIR modules and functions."""

from __future__ import annotations

from .function import Function
from .module import Module


def format_function(fn: Function) -> str:
    """Render a function as text, one instruction per line."""
    lines = ["func %s(%s) {" % (fn.name, ", ".join(fn.params))]
    for instr in fn.body:
        src = "  ; line %s" % instr.src_line if instr.src_line else ""
        lines.append("  %r%s" % (instr, src))
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    """Render a whole module: globals then functions."""
    lines = ["module %s" % module.name, ""]
    for var in module.globals.values():
        init = " = %r" % (var.init,) if var.init else ""
        lines.append("global %s[%d]%s" % (var.name, var.size, init))
    for fn in module.functions.values():
        lines.append("")
        lines.append(format_function(fn))
    return "\n".join(lines)
