"""Fence manipulation passes.

* :func:`insert_fence_after` — the enforcement primitive of Algorithm 2:
  insert a fence immediately after a given label.
* :func:`merge_redundant_fences` — the paper's static merge optimisation:
  "eliminates a fence if it can prove that it always follows a previous
  fence statement in program order, with no store statements on shared
  variables occurring in between".
* :func:`strip_fences` — remove fences (used to de-fence published
  algorithms before asking the engine to re-infer them, exactly as the
  evaluation methodology describes).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..cfg import CFG
from ..function import Function
from ..instructions import Cas, Fence, FenceKind, Instr
from ..module import Module

#: The orderings a fence of each kind provides.
_EFFECTS = {
    FenceKind.FULL: frozenset({FenceKind.FULL, FenceKind.ST_ST, FenceKind.ST_LD}),
    FenceKind.ST_ST: frozenset({FenceKind.ST_ST}),
    FenceKind.ST_LD: frozenset({FenceKind.ST_LD}),
}

_ALL: FrozenSet[FenceKind] = _EFFECTS[FenceKind.FULL]
_NONE: FrozenSet[FenceKind] = frozenset()


def insert_fence_after(module: Module, label: int, kind: FenceKind,
                       synthesized: bool = True) -> Optional[Instr]:
    """Insert a fence of *kind* right after the instruction labelled *label*.

    If the very next instruction is already a fence that subsumes *kind*,
    nothing is inserted and None is returned.  Returns the new fence
    instruction otherwise.
    """
    fn, instr = module.find_instr(label)
    pos = fn.index_of(label)
    if pos + 1 < len(fn.body):
        nxt = fn.body[pos + 1]
        if isinstance(nxt, Fence) and nxt.kind.subsumes(kind):
            return None
    fence = Fence(module.new_label(), kind, instr.src_line, synthesized)
    fn.insert_after(label, fence)
    return fence


def strip_fences(module: Module, only_synthesized: bool = False) -> int:
    """Remove fence instructions from every function; return the count.

    With ``only_synthesized`` True, only engine-inserted fences go.
    """
    removed = 0
    for fn in module.functions.values():
        new_body = []
        for instr in fn.body:
            if isinstance(instr, Fence) and (
                    instr.synthesized or not only_synthesized):
                removed += 1
            else:
                new_body.append(instr)
        fn.body = new_body
        fn.invalidate_index()
    return removed


def merge_redundant_fences(module: Module) -> int:
    """Remove fences provably redundant; return how many were removed.

    Forward dataflow per function.  The fact tracked at each program point
    is the set of fence effects guaranteed to be in force with no shared
    store executed since (CAS counts as a store for conservatism, even
    though it also drains buffers).  A fence whose effects are already all
    in force on every incoming path is removed.
    """
    removed_total = 0
    for fn in module.functions.values():
        removed_total += _merge_in_function(fn)
    return removed_total


def _merge_in_function(fn: Function) -> int:
    from ..instructions import Nop

    removed = 0
    while True:
        victim = _find_redundant_fence(fn)
        if victim is None:
            return removed
        # Replace rather than delete: the fence may be a branch target, so
        # its label must survive (as a harmless nop).
        pos = fn.index_of(victim)
        old = fn.body[pos]
        fn.body[pos] = Nop(victim, old.src_line)
        fn.invalidate_index()
        removed += 1


def _find_redundant_fence(fn: Function) -> Optional[int]:
    """Return the label of one provably redundant fence, or None."""
    cfg = CFG(fn)
    if not cfg.blocks:
        return None
    body = fn.body

    # in_state[b]: effects guaranteed on entry to block b.
    in_state: List[FrozenSet[FenceKind]] = [_ALL] * len(cfg.blocks)
    in_state[0] = _NONE
    worklist = list(range(len(cfg.blocks)))
    out_state: Dict[int, FrozenSet[FenceKind]] = {}

    while worklist:
        bi = worklist.pop()
        block = cfg.blocks[bi]
        state = in_state[bi]
        for pos in range(block.start, block.end):
            state = _transfer(body[pos], state)
        if out_state.get(bi) == state:
            continue
        out_state[bi] = state
        for succ in block.successors:
            merged = in_state[succ] & state
            if merged != in_state[succ] or succ not in out_state:
                in_state[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)

    for block in cfg.blocks:
        state = in_state[block.index]
        for pos in range(block.start, block.end):
            instr = body[pos]
            if isinstance(instr, Fence) and _EFFECTS[instr.kind] <= state:
                return instr.label
            state = _transfer(instr, state)
    return None


def _transfer(instr: Instr, state: FrozenSet[FenceKind]) -> FrozenSet[FenceKind]:
    if isinstance(instr, Fence):
        return state | _EFFECTS[instr.kind]
    if instr.is_store() or isinstance(instr, Cas):
        return _NONE
    return state
