"""Module statistics — the size columns of Tables 2 and 3.

The paper reports, per benchmark: source LOC (C), bytecode LOC (LLVM), and
"insertion points" (the number of store instructions in the bytecode, i.e.
candidate fence locations).  Here: MiniC source LOC, DIR instruction count,
and shared-store count.
"""

from __future__ import annotations

from typing import Dict

from ..instructions import Cas, Fence
from ..module import Module


def module_stats(module: Module) -> Dict[str, int]:
    """Collect the size statistics reported in the paper's tables.

    Returns a dict with keys:
        ``source_loc`` — non-blank, non-comment lines of the MiniC source
        (0 when the module was built directly from IR);
        ``bytecode_loc`` — total DIR instruction count;
        ``insertion_points`` — number of shared-store instructions;
        ``cas_count`` — number of CAS instructions;
        ``fence_count`` — number of fence instructions currently present;
        ``function_count`` / ``global_cells``.
    """
    source_loc = 0
    if module.source:
        for line in module.source.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("//"):
                source_loc += 1

    cas_count = 0
    fence_count = 0
    for fn in module.functions.values():
        for instr in fn:
            if isinstance(instr, Cas):
                cas_count += 1
            elif isinstance(instr, Fence):
                fence_count += 1

    return {
        "source_loc": source_loc,
        "bytecode_loc": module.instruction_count(),
        "insertion_points": module.store_count(),
        "cas_count": cas_count,
        "fence_count": fence_count,
        "function_count": len(module.functions),
        "global_cells": sum(v.size for v in module.globals.values()),
    }
