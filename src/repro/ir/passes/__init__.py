"""IR transformation and analysis passes."""

from .fences import insert_fence_after, merge_redundant_fences, strip_fences
from .optimize import (
    fold_constants,
    optimize_function,
    optimize_module,
    remove_dead_registers,
    remove_unreachable,
)
from .stats import module_stats

__all__ = [
    "fold_constants",
    "insert_fence_after",
    "merge_redundant_fences",
    "module_stats",
    "optimize_function",
    "optimize_module",
    "remove_dead_registers",
    "remove_unreachable",
    "strip_fences",
]
