"""Classic clean-up optimisations over DIR.

Three label-stable passes, applied to fixpoint by :func:`optimize_function`:

* **constant folding** — evaluate register-pure ops whose operands are
  known constants (per basic block, no cross-block propagation), and turn
  constant-condition ``cbr`` into ``br``;
* **unreachable-code elimination** — drop whole blocks the CFG cannot
  reach from the entry;
* **dead-register elimination** — remove register-pure instructions whose
  destination is never read.

Shared-memory operations (load/store/cas/fence) are never touched: under
a relaxed memory model they are observable effects regardless of whether
their results look dead.  All passes preserve instruction labels of the
surviving instructions, so ordering predicates and fence placements stay
valid.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from .. import instructions as ins
from ..cfg import CFG
from ..function import Function
from ..module import Module
from ..operands import Const, Reg
from ..verifier import verify_module


def optimize_module(module: Module, max_iterations: int = 8) -> int:
    """Run the clean-up pipeline on every function; returns the number of
    instructions removed or simplified."""
    total = 0
    for fn in module.functions.values():
        total += optimize_function(module, fn, max_iterations)
    verify_module(module)
    return total


def optimize_function(module: Module, fn: Function,
                      max_iterations: int = 8) -> int:
    total = 0
    for _ in range(max_iterations):
        changed = fold_constants(fn)
        changed += remove_unreachable(fn)
        changed += remove_dead_registers(fn)
        total += changed
        if not changed:
            break
    return total


# ----------------------------------------------------------------------
# Constant folding

def fold_constants(fn: Function) -> int:
    """Per-block constant folding; returns the number of simplifications."""
    changed = 0
    cfg = CFG(fn)
    for block in cfg.blocks:
        known: Dict[str, int] = {}
        for pos in range(block.start, block.end):
            instr = fn.body[pos]
            new_instr, delta = _fold_one(instr, known)
            if new_instr is not None:
                fn.body[pos] = new_instr
                instr = new_instr
            changed += delta
            _update_known(instr, known)
    if changed:
        fn.invalidate_index()
    return changed


def _const_of(operand, known: Dict[str, int]) -> Optional[int]:
    if isinstance(operand, Const):
        return operand.value
    if isinstance(operand, Reg) and operand.name in known:
        return known[operand.name]
    return None


def _fold_one(instr, known):
    """Try to simplify one instruction; returns (replacement|None, n)."""
    from ...vm.interp import _apply_binop, _apply_unop

    if isinstance(instr, ins.BinOp):
        a = _const_of(instr.a, known)
        b = _const_of(instr.b, known)
        if a is not None and b is not None:
            try:
                value = _apply_binop(instr.binop, a, b)
            except Exception:
                return (None, 0)  # e.g. division by zero: leave for runtime
            return (ins.ConstInstr(instr.label, instr.dst, value,
                                   instr.src_line), 1)
    elif isinstance(instr, ins.UnOp):
        a = _const_of(instr.a, known)
        if a is not None:
            value = _apply_unop(instr.unop, a)
            return (ins.ConstInstr(instr.label, instr.dst, value,
                                   instr.src_line), 1)
    elif isinstance(instr, ins.Mov):
        value = _const_of(instr.src, known)
        if value is not None and not isinstance(instr.src, Const):
            return (ins.Mov(instr.label, instr.dst, Const(value),
                            instr.src_line), 1)
    elif isinstance(instr, ins.Cbr):
        cond = _const_of(instr.cond, known)
        if cond is not None:
            target = instr.then_target if cond else instr.else_target
            return (ins.Br(instr.label, target, instr.src_line), 1)
    return (None, 0)


def _update_known(instr, known: Dict[str, int]) -> None:
    """Track constant registers; any other write kills the fact."""
    if isinstance(instr, ins.ConstInstr):
        known[instr.dst.name] = instr.value
    elif isinstance(instr, ins.Mov) and isinstance(instr.src, Const):
        known[instr.dst.name] = instr.src.value
    else:
        dst = getattr(instr, "dst", None)
        if isinstance(dst, Reg):
            known.pop(dst.name, None)


# ----------------------------------------------------------------------
# Unreachable code elimination

def remove_unreachable(fn: Function) -> int:
    """Drop instructions in blocks unreachable from the entry."""
    cfg = CFG(fn)
    if not cfg.blocks:
        return 0
    reachable: Set[int] = set()
    worklist = [0]
    while worklist:
        bi = worklist.pop()
        if bi in reachable:
            continue
        reachable.add(bi)
        worklist.extend(cfg.blocks[bi].successors)
    if len(reachable) == len(cfg.blocks):
        return 0
    keep = []
    removed = 0
    for pos, instr in enumerate(fn.body):
        if cfg.block_of_instr[pos] in reachable:
            keep.append(instr)
        else:
            removed += 1
    fn.body = keep
    fn.invalidate_index()
    return removed


# ----------------------------------------------------------------------
# Dead register elimination

#: Instruction types that only define a register and have no other effect.
_PURE_DEFS = (ins.ConstInstr, ins.Mov, ins.BinOp, ins.UnOp, ins.SelfId,
              ins.AddrOf)


def remove_dead_registers(fn: Function) -> int:
    """Remove register-pure instructions whose destination is never read.

    Instructions that are branch targets are replaced by same-label nops
    instead of deleted, keeping every jump valid.
    """
    removed = 0
    while True:
        used = _used_registers(fn)
        targeted = {t for i in fn.body for t in i.jump_targets()}
        victims = {instr.label for instr in fn.body
                   if isinstance(instr, _PURE_DEFS)
                   and instr.dst.name not in used}
        if not victims:
            return removed
        new_body = []
        for instr in fn.body:
            if instr.label not in victims:
                new_body.append(instr)
            elif instr.label in targeted:
                new_body.append(ins.Nop(instr.label, instr.src_line))
            # else: dropped entirely
        fn.body = new_body
        fn.invalidate_index()
        removed += len(victims)


def _used_registers(fn: Function) -> Set[str]:
    used: Set[str] = set()

    def use(operand):
        if isinstance(operand, Reg):
            used.add(operand.name)

    for instr in fn.body:
        if isinstance(instr, ins.Mov):
            use(instr.src)
        elif isinstance(instr, ins.BinOp):
            use(instr.a)
            use(instr.b)
        elif isinstance(instr, ins.UnOp):
            use(instr.a)
        elif isinstance(instr, ins.Load):
            use(instr.addr)
        elif isinstance(instr, ins.Store):
            use(instr.src)
            use(instr.addr)
        elif isinstance(instr, ins.Cas):
            use(instr.addr)
            use(instr.expected)
            use(instr.new)
        elif isinstance(instr, ins.Cbr):
            use(instr.cond)
        elif isinstance(instr, (ins.Call, ins.Fork)):
            for arg in instr.args:
                use(arg)
        elif isinstance(instr, ins.Ret):
            if instr.value is not None:
                use(instr.value)
        elif isinstance(instr, ins.Join):
            use(instr.tid)
        elif isinstance(instr, (ins.PageAlloc,)):
            use(instr.size)
        elif isinstance(instr, ins.PageFree):
            use(instr.addr)
        elif isinstance(instr, ins.Assert):
            use(instr.cond)
    return used
