"""Convenience builder for constructing DIR functions.

The builder supports forward branch targets through :class:`BlockLabel`
handles: create a handle with :meth:`IRBuilder.block_label`, emit branches
to it, and bind it with :meth:`IRBuilder.bind` once the target position is
reached.  :meth:`IRBuilder.finish` patches all branch instructions to the
concrete instruction labels and appends a trailing return if the function
falls off its end.
"""

from __future__ import annotations

from typing import List, Optional, Union

from . import instructions as ins
from .function import Function
from .instructions import FenceKind, Instr
from .module import Module
from .operands import Const, Reg, Sym


class BlockLabel:
    """A forward-referenceable branch target."""

    __slots__ = ("name", "position")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.position: Optional[int] = None  # index into builder body

    def __repr__(self) -> str:
        return "<BlockLabel %s @%r>" % (self.name or "?", self.position)


Target = Union[BlockLabel, int]


class IRBuilder:
    """Builds one :class:`Function` inside a :class:`Module`."""

    def __init__(self, module: Module, name: str, params=()) -> None:
        self.module = module
        self.fn = Function(name, params)
        self._pending: List[Instr] = []
        self._labels: List[BlockLabel] = []
        self._tmp_counter = 0
        self.cur_line: Optional[int] = None

    # ------------------------------------------------------------------
    # Registers and labels

    def tmp(self) -> Reg:
        """Allocate a fresh temporary register."""
        self._tmp_counter += 1
        return Reg(".t%d" % self._tmp_counter)

    def block_label(self, name: str = "") -> BlockLabel:
        label = BlockLabel(name)
        self._labels.append(label)
        return label

    def bind(self, label: BlockLabel) -> None:
        """Bind *label* to the next instruction to be emitted."""
        if label.position is not None:
            raise ValueError("label %r bound twice" % (label,))
        label.position = len(self._pending)

    # ------------------------------------------------------------------
    # Emission

    def _emit(self, instr: Instr) -> Instr:
        self._pending.append(instr)
        return instr

    def _new(self) -> int:
        return self.module.new_label()

    def const(self, dst: Reg, value: int) -> Instr:
        return self._emit(ins.ConstInstr(self._new(), dst, value, self.cur_line))

    def mov(self, dst: Reg, src) -> Instr:
        return self._emit(ins.Mov(self._new(), dst, src, self.cur_line))

    def binop(self, dst: Reg, op: str, a, b) -> Instr:
        return self._emit(ins.BinOp(self._new(), dst, op, a, b, self.cur_line))

    def unop(self, dst: Reg, op: str, a) -> Instr:
        return self._emit(ins.UnOp(self._new(), dst, op, a, self.cur_line))

    def load(self, dst: Reg, addr) -> Instr:
        return self._emit(ins.Load(self._new(), dst, addr, self.cur_line))

    def store(self, src, addr) -> Instr:
        return self._emit(ins.Store(self._new(), src, addr, self.cur_line))

    def cas(self, dst: Reg, addr, expected, new) -> Instr:
        return self._emit(
            ins.Cas(self._new(), dst, addr, expected, new, self.cur_line))

    def fence(self, kind: FenceKind = FenceKind.FULL,
              synthesized: bool = False) -> Instr:
        return self._emit(
            ins.Fence(self._new(), kind, self.cur_line, synthesized))

    def br(self, target: Target) -> Instr:
        return self._emit(ins.Br(self._new(), target, self.cur_line))

    def cbr(self, cond, then_target: Target, else_target: Target) -> Instr:
        return self._emit(
            ins.Cbr(self._new(), cond, then_target, else_target, self.cur_line))

    def call(self, dst: Optional[Reg], fn: str, args=()) -> Instr:
        return self._emit(ins.Call(self._new(), dst, fn, list(args), self.cur_line))

    def ret(self, value=None) -> Instr:
        return self._emit(ins.Ret(self._new(), value, self.cur_line))

    def fork(self, dst: Optional[Reg], fn: str, args=()) -> Instr:
        return self._emit(ins.Fork(self._new(), dst, fn, list(args), self.cur_line))

    def join(self, tid) -> Instr:
        return self._emit(ins.Join(self._new(), tid, self.cur_line))

    def self_id(self, dst: Reg) -> Instr:
        return self._emit(ins.SelfId(self._new(), dst, self.cur_line))

    def pagealloc(self, dst: Reg, size) -> Instr:
        return self._emit(ins.PageAlloc(self._new(), dst, size, self.cur_line))

    def pagefree(self, addr) -> Instr:
        return self._emit(ins.PageFree(self._new(), addr, self.cur_line))

    def addrof(self, dst: Reg, sym: Sym) -> Instr:
        return self._emit(ins.AddrOf(self._new(), dst, sym, self.cur_line))

    def assert_(self, cond, message: str = "") -> Instr:
        return self._emit(ins.Assert(self._new(), cond, message, self.cur_line))

    def nop(self) -> Instr:
        return self._emit(ins.Nop(self._new(), self.cur_line))

    # ------------------------------------------------------------------
    # Finalisation

    def finish(self) -> Function:
        """Patch branch targets, append an implicit return, and register the
        function with the module."""
        # A label bound past the last instruction needs an anchor.
        max_bound = max((l.position for l in self._labels
                         if l.position is not None), default=-1)
        if max_bound >= len(self._pending):
            self._pending.append(ins.Nop(self._new(), self.cur_line))
        if not self._pending or not self._pending[-1].is_terminator():
            self._pending.append(ins.Ret(self._new(), Const(0), self.cur_line))

        def resolve(target: Target) -> int:
            if isinstance(target, BlockLabel):
                if target.position is None:
                    raise ValueError("unbound block label %r" % (target,))
                return self._pending[target.position].label
            return target

        for instr in self._pending:
            if isinstance(instr, ins.Br):
                instr.target = resolve(instr.target)
            elif isinstance(instr, ins.Cbr):
                instr.then_target = resolve(instr.then_target)
                instr.else_target = resolve(instr.else_target)

        self.fn.body = self._pending
        self.fn.invalidate_index()
        self.module.add_function(self.fn)
        return self.fn
