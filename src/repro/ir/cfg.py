"""Control-flow graph construction over flat DIR instruction lists.

Used by the redundant-fence merge pass (and available for general
analyses).  Blocks are maximal straight-line instruction runs; edges follow
branch targets and fallthrough.
"""

from __future__ import annotations

from typing import Dict, List

from .function import Function
from .instructions import Br, Cbr, Ret


class BasicBlock:
    """A maximal straight-line run of instructions."""

    def __init__(self, index: int, start: int, end: int) -> None:
        self.index = index
        self.start = start          # index of first instruction in fn.body
        self.end = end              # index one past the last instruction
        self.successors: List[int] = []
        self.predecessors: List[int] = []

    def __repr__(self) -> str:
        return "<BB%d [%d:%d] -> %r>" % (
            self.index, self.start, self.end, self.successors)


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.blocks: List[BasicBlock] = []
        self.block_of_instr: Dict[int, int] = {}  # body index -> block index
        self._build()

    def _build(self) -> None:
        body = self.fn.body
        if not body:
            return
        index = self.fn.label_index

        leaders = {0}
        for i, instr in enumerate(body):
            for target in instr.jump_targets():
                leaders.add(index[target])
            if instr.is_terminator() and i + 1 < len(body):
                leaders.add(i + 1)
        ordered = sorted(leaders)

        for bi, start in enumerate(ordered):
            end = ordered[bi + 1] if bi + 1 < len(ordered) else len(body)
            block = BasicBlock(bi, start, end)
            self.blocks.append(block)
            for pos in range(start, end):
                self.block_of_instr[pos] = bi

        for block in self.blocks:
            last = body[block.end - 1]
            if isinstance(last, Ret):
                continue
            if isinstance(last, Br):
                block.successors.append(self.block_of_instr[index[last.target]])
            elif isinstance(last, Cbr):
                block.successors.append(
                    self.block_of_instr[index[last.then_target]])
                succ = self.block_of_instr[index[last.else_target]]
                if succ not in block.successors:
                    block.successors.append(succ)
            elif block.end < len(body):
                block.successors.append(self.block_of_instr[block.end])

        for block in self.blocks:
            for succ in block.successors:
                self.blocks[succ].predecessors.append(block.index)

    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def __len__(self) -> int:
        return len(self.blocks)
