"""DIR modules: globals + functions + the label allocator.

A module is the unit the synthesis engine operates on: it is compiled once
from MiniC, executed many times, and mutated between rounds by inserting
fences.  Labels are allocated from a per-module counter so that cloning a
module (to keep the original pristine) preserves every label.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional, Tuple

from .function import Function
from .instructions import Instr


class GlobalVar:
    """A module-level global occupying ``size`` consecutive shared cells.

    ``init`` holds initial cell values; missing entries default to zero.
    Scalars have ``size == 1``; arrays and structs span multiple cells.
    """

    def __init__(self, name: str, size: int = 1,
                 init: Optional[Iterable[int]] = None) -> None:
        if size < 1:
            raise ValueError("global %r must occupy at least one cell" % name)
        self.name = name
        self.size = size
        self.init: List[int] = list(init) if init is not None else []
        if len(self.init) > size:
            raise ValueError("initializer for %r longer than its size" % name)

    def __repr__(self) -> str:
        return "<GlobalVar %s[%d]>" % (self.name, self.size)


class Module:
    """A complete DIR program: globals, functions, and metadata.

    Attributes:
        name: module name (usually the benchmark name).
        globals: ordered mapping of global name → :class:`GlobalVar`.
        functions: mapping of function name → :class:`Function`.
        source: optional MiniC source text this module was compiled from
            (kept for line-number reporting).
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.globals: Dict[str, GlobalVar] = {}
        self.functions: Dict[str, Function] = {}
        self.source: Optional[str] = None
        self._next_label = 0

    # ------------------------------------------------------------------
    # Label allocation

    def new_label(self) -> int:
        """Allocate a fresh, module-unique instruction label."""
        label = self._next_label
        self._next_label += 1
        return label

    # ------------------------------------------------------------------
    # Construction

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise ValueError("duplicate global %r" % var.name)
        self.globals[var.name] = var
        return var

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError("duplicate function %r" % fn.name)
        self.functions[fn.name] = fn
        return fn

    # ------------------------------------------------------------------
    # Lookup

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError("no function named %r in module %s"
                           % (name, self.name)) from None

    def find_instr(self, label: int) -> Tuple[Function, Instr]:
        """Locate an instruction by label anywhere in the module."""
        for fn in self.functions.values():
            if fn.has_label(label):
                return fn, fn.instr_at(label)
        raise KeyError("no instruction with label L%d" % label)

    def function_of_label(self, label: int) -> Function:
        fn, _ = self.find_instr(label)
        return fn

    # ------------------------------------------------------------------
    # Cloning

    def clone(self) -> "Module":
        """Deep-copy the module, preserving all labels.

        The synthesis engine clones the input program so it can enforce
        fences without mutating the caller's module.
        """
        other = Module(self.name)
        other.source = self.source
        other._next_label = self._next_label
        for var in self.globals.values():
            other.add_global(GlobalVar(var.name, var.size, list(var.init)))
        for fn in self.functions.values():
            copy_fn = Function(fn.name, list(fn.params))
            copy_fn.body = [copy.copy(instr) for instr in fn.body]
            other.add_function(copy_fn)
        return other

    # ------------------------------------------------------------------
    # Statistics (used by the Table 2 benchmark)

    def instruction_count(self) -> int:
        return sum(len(fn) for fn in self.functions.values())

    def store_count(self) -> int:
        """Number of shared-store instructions — the paper's "insertion
        points" column in Table 3."""
        return sum(1 for fn in self.functions.values()
                   for instr in fn if instr.is_store())

    def __repr__(self) -> str:
        return "<Module %s: %d globals, %d functions, %d instrs>" % (
            self.name, len(self.globals), len(self.functions),
            self.instruction_count())
