"""Operand kinds for DIR instructions.

DIR (DFENCE IR) is a flat, register-based intermediate representation.
Instruction operands are one of three kinds:

* :class:`Reg` — a thread-local virtual register (infinite supply per
  frame).  Thread-local variables never touch the memory-model machinery,
  matching the paper's rule that "thread-local variables access the memory
  directly".
* :class:`Const` — an immediate integer constant.
* :class:`Sym` — the name of a module-level global.  The VM resolves a
  ``Sym`` to its shared-memory address at execution time; loads and stores
  through it go through the store-buffer semantics.
"""

from __future__ import annotations


class Reg:
    """A virtual register operand (thread-local, word-sized)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return "%" + self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Reg) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("reg", self.name))


class Const:
    """An immediate integer constant operand."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def __repr__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


class Sym:
    """A reference to a module-level global variable by name.

    When used as the address operand of a load/store/cas, the access is a
    *shared-memory* access at the global's base address.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return "@" + self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Sym) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("sym", self.name))


#: Union type for documentation purposes.
Operand = (Reg, Const, Sym)


def is_operand(x: object) -> bool:
    """Return True if *x* is a valid DIR operand."""
    return isinstance(x, (Reg, Const, Sym))
