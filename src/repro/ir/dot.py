"""Graphviz DOT export of DIR control-flow graphs.

Developer tooling: render a function's CFG (``cfg_to_dot``) or a whole
module (``module_to_dot``) for inspection.  Synthesized fences are
highlighted, making it easy to see where the engine placed them.
"""

from __future__ import annotations

from typing import List

from .cfg import CFG
from .function import Function
from .instructions import Fence
from .module import Module


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(fn: Function, graph_name: str = None) -> str:
    """Render one function's CFG as a DOT digraph."""
    cfg = CFG(fn)
    name = graph_name or fn.name
    lines: List[str] = ["digraph \"%s\" {" % _escape(name)]
    lines.append('  node [shape=box, fontname="monospace"];')
    for block in cfg.blocks:
        rows = []
        highlight = False
        for pos in range(block.start, block.end):
            instr = fn.body[pos]
            rows.append(_escape(repr(instr)))
            if isinstance(instr, Fence) and instr.synthesized:
                highlight = True
        label = "\\l".join(rows) + "\\l"
        style = ' style=filled fillcolor="#ffe0b0"' if highlight else ""
        lines.append('  bb%d [label="%s"%s];' % (block.index, label, style))
    for block in cfg.blocks:
        for succ in block.successors:
            lines.append("  bb%d -> bb%d;" % (block.index, succ))
    lines.append("}")
    return "\n".join(lines)


def module_to_dot(module: Module) -> str:
    """Render every function of a module as DOT clusters in one digraph."""
    lines: List[str] = ["digraph \"%s\" {" % _escape(module.name)]
    lines.append('  node [shape=box, fontname="monospace"];')
    for index, fn in enumerate(module.functions.values()):
        cfg = CFG(fn)
        lines.append("  subgraph cluster_%d {" % index)
        lines.append('    label="%s";' % _escape(fn.name))
        for block in cfg.blocks:
            rows = [_escape(repr(fn.body[pos]))
                    for pos in range(block.start, block.end)]
            lines.append('    f%d_bb%d [label="%s\\l"];'
                         % (index, block.index, "\\l".join(rows)))
        for block in cfg.blocks:
            for succ in block.successors:
                lines.append("    f%d_bb%d -> f%d_bb%d;"
                             % (index, block.index, index, succ))
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
