"""DIR — the register-based intermediate representation of the reproduction.

This package plays the role LLVM bytecode plays in the paper: MiniC
programs are lowered to DIR, the VM interprets DIR under a memory model,
and the synthesis engine inserts fences into DIR between rounds.
"""

from .builder import BlockLabel, IRBuilder
from .cfg import CFG, BasicBlock
from .function import Function
from .instructions import (
    AddrOf,
    Assert,
    BinOp,
    Br,
    Call,
    Cas,
    Cbr,
    ConstInstr,
    Fence,
    FenceKind,
    Fork,
    Instr,
    Join,
    Load,
    Mov,
    Nop,
    PageAlloc,
    PageFree,
    Ret,
    SelfId,
    Store,
    UnOp,
)
from .module import GlobalVar, Module
from .operands import Const, Reg, Sym
from .printer import format_function, format_module
from .verifier import VerificationError, verify_module

__all__ = [
    "AddrOf", "Assert", "BasicBlock", "BinOp", "BlockLabel", "Br", "CFG",
    "Call", "Cas", "Cbr", "Const", "ConstInstr", "Fence", "FenceKind",
    "Fork", "Function", "GlobalVar", "IRBuilder", "Instr", "Join", "Load",
    "Module", "Mov", "Nop", "PageAlloc", "PageFree", "Reg", "Ret", "SelfId",
    "Store", "Sym", "UnOp", "VerificationError", "format_function",
    "format_module", "verify_module",
]
