"""DIR functions: flat labelled instruction lists.

A :class:`Function` owns an ordered list of instructions.  Control flow is
expressed by branches that target instruction *labels* (not indices), so the
body can be mutated — fences inserted — without invalidating jump targets.
The label→index map is rebuilt lazily after mutation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .instructions import Instr


class Function:
    """A DIR function.

    Attributes:
        name: function name, unique within the module.
        params: parameter register names, bound on call.
        body: ordered instruction list.
    """

    def __init__(self, name: str, params: Iterable[str] = ()) -> None:
        self.name = name
        self.params: List[str] = list(params)
        self.body: List[Instr] = []
        self._index: Optional[Dict[int, int]] = None
        #: Monotonic counter bumped on every body mutation.  Compiled
        #: bodies (:mod:`repro.vm.compile`) are cached per
        #: ``(function, body_version)``, so fence insertion invalidates
        #: exactly the repaired function's cache entry.
        self.body_version = 0

    # ------------------------------------------------------------------
    # Indexing

    def _build_index(self) -> Dict[int, int]:
        index = {}
        for i, instr in enumerate(self.body):
            if instr.label in index:
                raise ValueError(
                    "duplicate label L%d in function %s" % (instr.label, self.name))
            index[instr.label] = i
        return index

    @property
    def label_index(self) -> Dict[int, int]:
        """Map from instruction label to its position in ``body``."""
        if self._index is None:
            self._index = self._build_index()
        return self._index

    def invalidate_index(self) -> None:
        """Force the label→index map to be rebuilt (call after mutation).

        Also bumps ``body_version``: callers invalidate after mutating
        ``body`` in place, which must likewise invalidate any compiled
        specialization of the old body.
        """
        self._index = None
        self.body_version += 1

    def index_of(self, label: int) -> int:
        """Position of the instruction with the given label."""
        return self.label_index[label]

    def instr_at(self, label: int) -> Instr:
        """The instruction with the given label."""
        return self.body[self.label_index[label]]

    def has_label(self, label: int) -> bool:
        return label in self.label_index

    # ------------------------------------------------------------------
    # Mutation

    def append(self, instr: Instr) -> Instr:
        self.body.append(instr)
        self._index = None
        self.body_version += 1
        return instr

    def insert_after(self, label: int, instr: Instr) -> Instr:
        """Insert *instr* immediately after the instruction labelled *label*.

        This is the primitive used by fence enforcement (Algorithm 2:
        "insert a fence statement right after label l").
        """
        pos = self.index_of(label)
        self.body.insert(pos + 1, instr)
        self._index = None
        self.body_version += 1
        return instr

    def remove(self, label: int) -> Instr:
        """Remove and return the instruction with the given label.

        The caller is responsible for ensuring no branch targets it.
        """
        pos = self.index_of(label)
        instr = self.body.pop(pos)
        self._index = None
        self.body_version += 1
        return instr

    # ------------------------------------------------------------------

    def labels(self) -> List[int]:
        return [instr.label for instr in self.body]

    def __len__(self) -> int:
        return len(self.body)

    def __iter__(self):
        return iter(self.body)

    def __repr__(self) -> str:
        return "<Function %s(%s), %d instrs>" % (
            self.name, ", ".join(self.params), len(self.body))
