"""Differential fuzzing & verification of the store-buffer semantics.

This package hunts semantics and synthesis bugs by construction rather
than by anecdote:

* :mod:`~repro.fuzz.generator` — a seedable :class:`ProgramGenerator`
  emitting small concurrent MiniC programs (2–3 threads, shared globals,
  loads/stores/CAS/fences/branches, bounded loops).
* :mod:`~repro.fuzz.oracles` — layered cross-model checks run on every
  generated program: outcome-set inclusion SC ⊆ TSO ⊆ PSO, fully-fenced
  ≡ SC, random-scheduler ⊆ exhaustive, and end-to-end synthesis
  soundness (repair a violating program, exhaustively re-verify it).
* :mod:`~repro.fuzz.shrink` — a delta-debugging minimizer that reduces a
  failing program while the oracle keeps failing.
* :mod:`~repro.fuzz.runner` — the fuzzing campaign driver behind
  ``repro fuzz``; failures are shrunk and serialized as reproducers.

Every component is deterministic per seed, so a campaign is a pure
function of ``(seed, iterations, configuration)`` — a failing seed in CI
reproduces exactly on a laptop.
"""

from .generator import FuzzProgram, GeneratorConfig, ProgramGenerator
from .oracles import (
    OracleConfig,
    OracleFailure,
    OracleReport,
    OutcomeSpec,
    check_module,
    check_program,
    fully_fenced,
)
from .runner import FuzzFailure, FuzzReport, run_campaign
from .shrink import shrink

__all__ = [
    "FuzzFailure", "FuzzProgram", "FuzzReport", "GeneratorConfig",
    "OracleConfig", "OracleFailure", "OracleReport", "OutcomeSpec",
    "ProgramGenerator", "check_module", "check_program", "fully_fenced",
    "run_campaign", "shrink",
]
