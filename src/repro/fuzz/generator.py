"""Seedable random MiniC program generation.

A :class:`ProgramGenerator` draws a small concurrent program from a seed:
2–3 threads (main races the forked ones), a handful of shared globals,
and thread bodies mixing stores, loads, CAS, fences, data-dependent
branches and bounded loops.  Programs are kept litmus-sized on purpose —
the differential oracles (:mod:`repro.fuzz.oracles`) need the exhaustive
schedule explorer to terminate on them.

The program is held *structurally* (statement trees per thread), not as
text: the delta-debugging shrinker edits the structure and re-renders,
which keeps every shrinking candidate a syntactically valid program.

Observability convention: each thread owns registers ``r0``/``r1``
(initialised to 0) that loads assign into, and returns ``r0 * 10 + r1``.
Generated store/CAS constants stay in 1..9, so the per-thread return
value is a faithful base-10 encoding of what the thread observed and the
tuple of thread results (tid order) is the program outcome the oracles
compare across memory models.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from ..ir.module import Module
from ..minic.lower import compile_source

#: Registers each thread observes (loads target these; the thread returns
#: their base-10 combination).
REGS_PER_THREAD = 2

#: Fence builtin spelling by kind tag.
_FENCE_CALLS = {"full": "fence", "ss": "fence_ss", "sl": "fence_sl"}


# ----------------------------------------------------------------------
# Statement tree

class Stmt:
    """Base class for generated statements.

    ``size`` counts MiniC statements (the shrinker's minimality metric);
    ``render`` appends source lines.
    """

    def size(self) -> int:
        return 1

    def render(self, out: List[str], indent: str, names: "_NameAlloc") -> None:
        raise NotImplementedError

    def clone(self) -> "Stmt":
        raise NotImplementedError


class StoreStmt(Stmt):
    """``VAR = value;``"""

    def __init__(self, var: str, value: int) -> None:
        self.var = var
        self.value = value

    def render(self, out, indent, names):
        out.append("%s%s = %d;" % (indent, self.var, self.value))

    def clone(self):
        return StoreStmt(self.var, self.value)


class LoadStmt(Stmt):
    """``rN = VAR;``"""

    def __init__(self, reg: int, var: str) -> None:
        self.reg = reg
        self.var = var

    def render(self, out, indent, names):
        out.append("%sr%d = %s;" % (indent, self.reg, self.var))

    def clone(self):
        return LoadStmt(self.reg, self.var)


class CasStmt(Stmt):
    """``cas(&VAR, expected, value);``"""

    def __init__(self, var: str, expected: int, value: int) -> None:
        self.var = var
        self.expected = expected
        self.value = value

    def render(self, out, indent, names):
        out.append("%scas(&%s, %d, %d);"
                   % (indent, self.var, self.expected, self.value))

    def clone(self):
        return CasStmt(self.var, self.expected, self.value)


class FenceStmt(Stmt):
    """``fence();`` / ``fence_ss();`` / ``fence_sl();``"""

    def __init__(self, kind: str) -> None:
        if kind not in _FENCE_CALLS:
            raise ValueError("fence kind must be full/ss/sl, got %r" % kind)
        self.kind = kind

    def render(self, out, indent, names):
        out.append("%s%s();" % (indent, _FENCE_CALLS[self.kind]))

    def clone(self):
        return FenceStmt(self.kind)


class IfStmt(Stmt):
    """``if (VAR == value) { body }`` — a data-dependent branch."""

    def __init__(self, var: str, value: int, body: List[Stmt]) -> None:
        self.var = var
        self.value = value
        self.body = body

    def size(self):
        return 1 + sum(s.size() for s in self.body)

    def render(self, out, indent, names):
        out.append("%sif (%s == %d) {" % (indent, self.var, self.value))
        for stmt in self.body:
            stmt.render(out, indent + "  ", names)
        out.append("%s}" % indent)

    def clone(self):
        return IfStmt(self.var, self.value, [s.clone() for s in self.body])


class LoopStmt(Stmt):
    """``for (int iN = 0; iN < count; iN = iN + 1) { body }``"""

    def __init__(self, count: int, body: List[Stmt]) -> None:
        self.count = count
        self.body = body

    def size(self):
        return 1 + sum(s.size() for s in self.body)

    def render(self, out, indent, names):
        var = names.loop_var()
        out.append("%sfor (int %s = 0; %s < %d; %s = %s + 1) {"
                   % (indent, var, var, self.count, var, var))
        for stmt in self.body:
            stmt.render(out, indent + "  ", names)
        out.append("%s}" % indent)

    def clone(self):
        return LoopStmt(self.count, [s.clone() for s in self.body])


class _NameAlloc:
    """Fresh loop-variable names during one render."""

    def __init__(self) -> None:
        self._next = 0

    def loop_var(self) -> str:
        name = "i%d" % self._next
        self._next += 1
        return name


# ----------------------------------------------------------------------
# Program

class FuzzProgram:
    """A generated concurrent program, held structurally.

    ``threads[0]`` is the main thread's racing body (between the forks
    and the joins); ``threads[1:]`` are the forked threads ``t1``, ``t2``.
    """

    def __init__(self, seed: int, global_vars: Sequence[str],
                 threads: Sequence[List[Stmt]]) -> None:
        if not threads:
            raise ValueError("a program needs at least the main thread")
        self.seed = seed
        self.global_vars = list(global_vars)
        self.threads = [list(body) for body in threads]

    # -- derived views -------------------------------------------------

    def source(self) -> str:
        """Render the program as MiniC source text."""
        lines: List[str] = []
        for var in self.global_vars:
            lines.append("int %s;" % var)
        lines.append("")
        for index, body in enumerate(self.threads[1:], start=1):
            lines.extend(self._thread_fn("t%d" % index, body))
            lines.append("")
        lines.extend(self._main_fn())
        return "\n".join(lines) + "\n"

    def _thread_fn(self, name: str, body: List[Stmt]) -> List[str]:
        lines = ["int %s() {" % name]
        lines.extend("  int r%d = 0;" % r for r in range(REGS_PER_THREAD))
        names = _NameAlloc()
        for stmt in body:
            stmt.render(lines, "  ", names)
        lines.append("  return %s;" % self._combo())
        lines.append("}")
        return lines

    def _main_fn(self) -> List[str]:
        lines = ["int main() {"]
        forked = range(1, len(self.threads))
        for index in forked:
            lines.append("  int h%d = fork(t%d);" % (index, index))
        lines.extend("  int r%d = 0;" % r for r in range(REGS_PER_THREAD))
        names = _NameAlloc()
        for stmt in self.threads[0]:
            stmt.render(lines, "  ", names)
        for index in forked:
            lines.append("  join(h%d);" % index)
        lines.append("  return %s;" % self._combo())
        lines.append("}")
        return lines

    @staticmethod
    def _combo() -> str:
        parts = []
        for reg in range(REGS_PER_THREAD):
            weight = 10 ** (REGS_PER_THREAD - 1 - reg)
            parts.append("r%d * %d" % (reg, weight) if weight > 1
                         else "r%d" % reg)
        return " + ".join(parts)

    def compile(self, name: Optional[str] = None) -> Module:
        return compile_source(self.source(),
                              name or ("fuzz_seed%d" % self.seed))

    def statement_count(self) -> int:
        """Total MiniC statements across all thread bodies."""
        return sum(stmt.size() for body in self.threads for stmt in body)

    def clone(self) -> "FuzzProgram":
        return FuzzProgram(self.seed, self.global_vars,
                           [[s.clone() for s in body]
                            for body in self.threads])

    def __repr__(self) -> str:
        return "<FuzzProgram seed=%d threads=%d stmts=%d>" % (
            self.seed, len(self.threads), self.statement_count())


# ----------------------------------------------------------------------
# Generator

class GeneratorConfig:
    """Size and mix knobs for program generation.

    The binding constraint is not statement count but **shared-access
    budget**: the exhaustive explorer's path count is exponential in the
    number of shared-memory accesses (loop bodies multiply by their trip
    count), so the generator allocates a per-program access budget and
    stops a thread's body when its share is spent.  The defaults keep
    every program explorable within the oracles' path budget: mostly
    2 threads, occasionally 3 with a tighter budget.
    """

    def __init__(self,
                 min_globals: int = 2, max_globals: int = 3,
                 three_thread_prob: float = 0.2,
                 min_accesses: int = 4, max_accesses: int = 5,
                 max_accesses_three_threads: int = 4,
                 max_stmts_per_body: int = 5,
                 racy_skeleton_prob: float = 0.5,
                 store_weight: float = 0.38, load_weight: float = 0.34,
                 fence_weight: float = 0.10, cas_weight: float = 0.08,
                 if_weight: float = 0.06, loop_weight: float = 0.04,
                 max_const: int = 3) -> None:
        self.min_globals = min_globals
        self.max_globals = max_globals
        self.three_thread_prob = three_thread_prob
        self.min_accesses = min_accesses
        self.max_accesses = max_accesses
        self.max_accesses_three_threads = max_accesses_three_threads
        self.max_stmts_per_body = max_stmts_per_body
        #: Probability of planting an sb/mp-shaped conflict skeleton
        #: before the random tail.  Unbiased random programs rarely
        #: observe a reordering (the right store/load pattern across
        #: threads is needed), which would leave the synthesis-soundness
        #: oracle idle; the skeleton keeps violating programs frequent.
        self.racy_skeleton_prob = racy_skeleton_prob
        self.weights = (
            ("store", store_weight), ("load", load_weight),
            ("fence", fence_weight), ("cas", cas_weight),
            ("if", if_weight), ("loop", loop_weight))
        self.max_const = max_const


def _access_cost(stmt: Stmt) -> int:
    """Shared accesses one dynamic pass through *stmt* performs."""
    if isinstance(stmt, (StoreStmt, LoadStmt, CasStmt)):
        return 1
    if isinstance(stmt, FenceStmt):
        return 0
    if isinstance(stmt, IfStmt):
        # The condition load always runs; the body only sometimes — but
        # budget for the worst case.
        return 1 + sum(_access_cost(s) for s in stmt.body)
    if isinstance(stmt, LoopStmt):
        return stmt.count * sum(_access_cost(s) for s in stmt.body)
    raise TypeError("unknown statement %r" % (stmt,))


class ProgramGenerator:
    """Draws :class:`FuzzProgram` instances from seeds, deterministically.

    The same ``(config, seed)`` always yields the same program — the
    fuzzing campaign, CI, and a developer's shell all agree on what
    "seed 17" means.
    """

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()

    def generate(self, seed: int) -> FuzzProgram:
        cfg = self.config
        rng = random.Random(seed)
        n_globals = rng.randint(cfg.min_globals, cfg.max_globals)
        global_vars = [chr(ord("A") + i) for i in range(n_globals)]
        three = rng.random() < cfg.three_thread_prob
        n_threads = 3 if three else 2
        ceiling = cfg.max_accesses_three_threads if three \
            else cfg.max_accesses
        budget = rng.randint(min(cfg.min_accesses, ceiling), ceiling)
        threads: List[List[Stmt]] = [[] for _ in range(n_threads)]
        if rng.random() < cfg.racy_skeleton_prob:
            budget -= self._plant_skeleton(rng, global_vars, threads)
        # Every thread gets at least one access — budget permitting: a
        # planted skeleton may already have spent the whole allowance,
        # and the access ceiling is a hard cap (exploration cost is
        # exponential in it), so late threads then stay empty.
        shares = [0] * n_threads
        for index, body in enumerate(threads):
            if not body and sum(shares) < budget:
                shares[index] = 1
        remaining = budget - sum(shares)
        for _ in range(max(0, remaining)):
            shares[rng.randrange(n_threads)] += 1
        for body, share in zip(threads, shares):
            body.extend(self._body(rng, global_vars, share))
        return FuzzProgram(seed, global_vars, threads)

    def _plant_skeleton(self, rng: random.Random,
                        global_vars: Sequence[str],
                        threads: List[List[Stmt]]) -> int:
        """Seed two threads with an sb- or mp-shaped conflict.

        Returns the access budget consumed.  The random tail appended
        afterwards can still mask the race — that variety is the point.
        """
        x, y = rng.sample(list(global_vars), 2)
        first, second = rng.sample(range(len(threads)), 2)
        value = rng.randint(1, self.config.max_const)
        if rng.random() < 0.5:
            # Store buffering: store own flag, read the other's.
            threads[first] += [StoreStmt(x, value), LoadStmt(0, y)]
            threads[second] += [StoreStmt(y, value), LoadStmt(0, x)]
        else:
            # Message passing: data then flag vs flag then data.
            threads[first] += [StoreStmt(x, value), StoreStmt(y, value)]
            threads[second] += [LoadStmt(0, y), LoadStmt(1, x)]
        return 4

    def programs(self, seed: int, count: int) -> Iterator[FuzzProgram]:
        """The campaign stream: programs for seeds ``seed..seed+count-1``."""
        for offset in range(count):
            yield self.generate(seed + offset)

    # ------------------------------------------------------------------

    def _body(self, rng: random.Random, global_vars: Sequence[str],
              budget: int) -> List[Stmt]:
        """Draw statements until the access budget (or length cap) runs out."""
        body: List[Stmt] = []
        while budget > 0 and len(body) < self.config.max_stmts_per_body:
            stmt = self._stmt(rng, global_vars, budget)
            body.append(stmt)
            budget -= _access_cost(stmt)
        return body

    def _stmt(self, rng: random.Random, global_vars: Sequence[str],
              budget: int) -> Stmt:
        cfg = self.config
        kind = self._pick_kind(rng, budget)
        var = rng.choice(global_vars)
        if kind == "store":
            return StoreStmt(var, rng.randint(1, cfg.max_const))
        if kind == "load":
            return LoadStmt(rng.randrange(REGS_PER_THREAD), var)
        if kind == "cas":
            expected = rng.randint(0, 1)
            return CasStmt(var, expected, rng.randint(1, cfg.max_const))
        if kind == "fence":
            return FenceStmt(rng.choice(("full", "ss", "sl")))
        if kind == "if":
            # Condition costs 1 access; the body spends the rest.
            body = self._flat_body(rng, global_vars, budget - 1)
            return IfStmt(var, rng.randint(0, cfg.max_const), body)
        count = rng.randint(2, 3)
        body = self._flat_body(rng, global_vars, budget // count)
        return LoopStmt(count, body)

    def _flat_body(self, rng: random.Random, global_vars: Sequence[str],
                   budget: int) -> List[Stmt]:
        """A 1–2 statement nested body of simple (non-compound) statements."""
        length = 1 if budget <= 1 else rng.randint(1, 2)
        body = []
        for _ in range(length):
            kind = rng.choice(("store", "load", "fence"))
            var = rng.choice(global_vars)
            if kind == "store":
                body.append(StoreStmt(var, rng.randint(1,
                                                       self.config.max_const)))
            elif kind == "load":
                body.append(LoadStmt(rng.randrange(REGS_PER_THREAD), var))
            else:
                body.append(FenceStmt(rng.choice(("full", "ss", "sl"))))
        return body

    def _pick_kind(self, rng: random.Random, budget: int) -> str:
        weights: List[Tuple[str, float]] = [
            (kind, weight) for kind, weight in self.config.weights
            # Compound statements need headroom: an if costs 1 + body,
            # a loop multiplies its body by the trip count.
            if not (budget < 3 and kind in ("if", "loop"))]
        total = sum(weight for _, weight in weights)
        point = rng.random() * total
        for kind, weight in weights:
            point -= weight
            if point <= 0:
                return kind
        return weights[-1][0]
