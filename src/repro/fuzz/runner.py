"""The fuzzing campaign driver behind ``repro fuzz``.

Generates ``iters`` programs from consecutive seeds, runs the full
oracle suite on each, delta-debugs any failure down to a minimal
reproducer, and (optionally) serializes reproducers into a corpus
directory so they become permanent regression tests.  Everything is
deterministic per ``(seed, iters, config)``.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Tuple

from .generator import FuzzProgram, GeneratorConfig, ProgramGenerator
from .oracles import OracleConfig, OracleFailure, check_program
from .shrink import shrink

#: Optional per-iteration progress callback: (iteration, program, report).
ProgressFn = Callable[[int, FuzzProgram, object], None]


class FuzzFailure:
    """One failing seed: the original program, its shrunk reproducer,
    and the oracle verdicts that condemned it."""

    def __init__(self, seed: int, program: FuzzProgram,
                 shrunk: FuzzProgram,
                 failures: List[OracleFailure]) -> None:
        self.seed = seed
        self.program = program
        self.shrunk = shrunk
        self.failures = failures
        self.reproducer_path: Optional[str] = None

    def __repr__(self) -> str:
        return "<FuzzFailure seed=%d %s>" % (
            self.seed, [f.oracle for f in self.failures])


class FuzzReport:
    """Outcome of one campaign."""

    def __init__(self, seed: int, iterations: int) -> None:
        self.seed = seed
        self.iterations = iterations
        self.failures: List[FuzzFailure] = []
        #: (seed, oracle, model) explorations that hit the path budget.
        self.inconclusive: List[Tuple[int, str, str]] = []
        #: seeds whose relaxed outcomes exceeded SC (oracle 4 exercised).
        self.violating_seeds: List[int] = []
        self.paths = 0
        #: aggregate exploration-reduction stats across all oracles.
        self.pruned = 0
        self.cache_hits = 0
        self.estimated_unreduced = 0
        self.duration = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            "fuzz: %d programs (seeds %d..%d), %d exhaustive paths, %.1fs"
            % (self.iterations, self.seed,
               self.seed + self.iterations - 1, self.paths, self.duration),
            "  synthesis exercised on %d violating program(s)"
            % len(self.violating_seeds),
        ]
        if self.estimated_unreduced > self.paths:
            lines.append(
                "  reduction: %d paths explored vs >=%d unreduced "
                "(%.1fx; %d branches slept, %d cache hits)"
                % (self.paths, self.estimated_unreduced,
                   self.estimated_unreduced / max(1, self.paths),
                   self.pruned, self.cache_hits))
        if self.inconclusive:
            lines.append("  %d inconclusive exploration(s) (path budget): %s"
                         % (len(self.inconclusive),
                            sorted({s for s, _, _ in self.inconclusive})))
        if self.failures:
            lines.append("  %d FAILING seed(s):" % len(self.failures))
            for failure in self.failures:
                for verdict in failure.failures:
                    lines.append("    seed %d: oracle %s under %s: %s"
                                 % (failure.seed, verdict.oracle,
                                    verdict.model, verdict.detail))
                if failure.reproducer_path:
                    lines.append("    reproducer: %s"
                                 % failure.reproducer_path)
        else:
            lines.append("  all oracles passed")
        return "\n".join(lines)


def run_campaign(seed: int = 0, iters: int = 50,
                 oracle_config: Optional[OracleConfig] = None,
                 generator_config: Optional[GeneratorConfig] = None,
                 corpus_dir: Optional[str] = None,
                 shrink_failures: bool = True,
                 progress: Optional[ProgressFn] = None) -> FuzzReport:
    """Fuzz ``iters`` programs starting at *seed*; return the report.

    On failure the program is shrunk against its first failing oracle
    and, when *corpus_dir* is given, written there as a ``.c`` reproducer
    (the corpus test replays every file through the oracles).
    """
    oracle_cfg = oracle_config or OracleConfig()
    generator = ProgramGenerator(generator_config)
    report = FuzzReport(seed, iters)
    start = time.perf_counter()

    for iteration, program in enumerate(generator.programs(seed, iters)):
        oracle_report = check_program(program, oracle_cfg)
        report.paths += oracle_report.paths
        report.pruned += oracle_report.pruned
        report.cache_hits += oracle_report.cache_hits
        report.estimated_unreduced += oracle_report.estimated_unreduced
        for oracle, model in oracle_report.inconclusive:
            report.inconclusive.append((program.seed, oracle, model))
        if oracle_report.violating_models:
            report.violating_seeds.append(program.seed)
        if progress is not None:
            progress(iteration, program, oracle_report)
        if oracle_report.ok:
            continue

        shrunk = program
        if shrink_failures:
            first = oracle_report.failures[0]
            shrunk = shrink(program,
                            _oracle_predicate(first.oracle, oracle_cfg))
        failure = FuzzFailure(program.seed, program, shrunk,
                              oracle_report.failures)
        if corpus_dir is not None:
            failure.reproducer_path = write_reproducer(corpus_dir, failure)
        report.failures.append(failure)

    report.duration = time.perf_counter() - start
    return report


def _oracle_predicate(oracle: str,
                      config: OracleConfig) -> Callable[[FuzzProgram], bool]:
    """Shrinker check: does *oracle* still fail on the candidate?"""
    def still_fails(candidate: FuzzProgram) -> bool:
        try:
            result = check_program(candidate, config)
        except Exception:
            # A candidate that breaks the toolchain is not a reduction of
            # *this* failure; reject it and keep shrinking elsewhere.
            return False
        return any(f.oracle == oracle for f in result.failures)
    return still_fails


def write_reproducer(corpus_dir: str, failure: FuzzFailure) -> str:
    """Serialize a shrunk failing program as a corpus ``.c`` file."""
    os.makedirs(corpus_dir, exist_ok=True)
    first = failure.failures[0]
    path = os.path.join(corpus_dir, "seed%d_%s_%s.c"
                        % (failure.seed, first.oracle, first.model))
    header = [
        "// repro fuzz reproducer (auto-generated, delta-debugged)",
        "// seed: %d" % failure.seed,
    ]
    for verdict in failure.failures:
        header.append("// oracle %s under %s: %s"
                      % (verdict.oracle, verdict.model, verdict.detail))
    header.append("// statements: %d (from %d)"
                  % (failure.shrunk.statement_count(),
                     failure.program.statement_count()))
    with open(path, "w") as handle:
        handle.write("\n".join(header) + "\n")
        handle.write(failure.shrunk.source())
    return path
