"""Differential oracles: layered cross-checks for one program.

Each oracle states a property the reproduction must satisfy *by
construction*, so any failure is a bug in the semantics, the explorer,
the scheduler, or the synthesis engine — never in the generated program:

1. **inclusion** — outcome-set inclusion ``SC ⊆ TSO ⊆ PSO`` (paper
   Semantics 1/2: relaxation only ever *adds* behaviours).
2. **fenced_sc** — the fully-fenced program has *exactly* the SC outcome
   set under every relaxed model (a full fence after every store keeps
   the buffers empty; this is the semantic ground truth the paper's
   repair relies on).
3. **random_subset** — outcomes observed by the random flush-delaying
   scheduler are a subset of the exhaustive set (the sampler must not
   invent schedules the semantics does not admit).
4. **synthesis** — end-to-end soundness: running the synthesis engine on
   a program whose relaxed outcomes exceed SC must yield a repaired
   module that exhaustively admits no non-SC outcome.

Explorations that blow the path budget make the affected oracles
*inconclusive* (recorded, never failed): a partial outcome set proves
nothing either way.

All oracles accept a ``model_factory`` so tests can swap in deliberately
broken models and watch the right oracle catch them.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..ir.instructions import FenceKind
from ..ir.module import Module
from ..ir.passes.fences import insert_fence_after
from ..memory.models import StoreBufferModel, make_model
from ..sched.exhaustive import ExplorationResult
from ..sched.explorer import explore
from ..sched.flush_random import FlushDelayScheduler
from ..spec.specifications import Specification
from ..synth import SynthesisConfig, SynthesisEngine, SynthesisOutcome
from ..vm.driver import ExecutionResult, run_execution
from .generator import FuzzProgram

Outcome = Tuple
OutcomeSet = FrozenSet[Outcome]

#: name -> fresh model instance (injectable for broken-model testing).
ModelFactory = Callable[[str], StoreBufferModel]

#: Scheduler-seed offset between synthesis attempts.  The engine scans
#: seeds ``cfg.seed .. cfg.seed + rounds*K`` (plus ``CHECK_SEED_STRIDE``
#: for its check pass), so consecutive small seeds re-sample almost the
#: same schedules; a stride beyond both ranges makes every attempt an
#: independent draw.
SYNTH_SEED_STRIDE = 1 << 25


def thread_results(vm) -> Outcome:
    """The canonical program outcome: thread return values in tid order."""
    return tuple(vm.threads[tid].result for tid in sorted(vm.threads))


def fully_fenced(module: Module) -> Module:
    """Clone *module* with a full fence after every store.

    Stores are the only buffering instructions (CAS commits directly
    after its drain), so with a fence directly after each one a thread's
    buffer holds at most its own just-issued store, which nothing can
    observe before the fence drains it.  The program is therefore
    SC-equivalent under any store-buffer model — the reference the
    **fenced_sc** oracle compares against.
    """
    fenced = module.clone()
    labels = [instr.label for fn in fenced.functions.values()
              for instr in fn.body if instr.is_store()]
    for label in labels:
        insert_fence_after(fenced, label, FenceKind.FULL,
                           synthesized=False)
    return fenced


class OutcomeSpec(Specification):
    """Spec: the execution's thread-result tuple must be in *allowed*.

    This is how the synthesis-soundness oracle phrases "behaves like SC"
    to the engine: the allowed set is the exhaustively computed SC
    outcome set, so any relaxed-only outcome counts as a violation and
    feeds ``avoid(p)`` clauses into the repair formula.
    """

    name = "outcome_set"

    def __init__(self, allowed: OutcomeSet) -> None:
        self.allowed = frozenset(allowed)

    def check(self, result: ExecutionResult) -> Optional[str]:
        crash = self._crash(result)
        if crash is not None:
            return crash
        if result.thread_results not in self.allowed:
            return ("outcome %r not admitted under SC"
                    % (result.thread_results,))
        return None


class OracleFailure:
    """One oracle violation on one program/model."""

    def __init__(self, oracle: str, model: str, detail: str) -> None:
        self.oracle = oracle
        self.model = model
        self.detail = detail

    def __repr__(self) -> str:
        return "<OracleFailure %s/%s: %s>" % (
            self.oracle, self.model, self.detail[:80])


class OracleConfig:
    """Budgets and knobs shared by the four oracles.

    ``models`` lists the relaxed models to differentiate against SC.
    ``model_factory`` builds every memory-model instance the oracles use
    (exploration, random sampling, and synthesis verification); swapping
    it for a broken variant is how the oracle layer itself is tested.
    """

    def __init__(self,
                 models: Tuple[str, ...] = ("tso", "pso"),
                 max_paths: int = 50_000,
                 max_total_paths: int = 250_000,
                 max_steps: int = 4_000,
                 random_runs: int = 40,
                 random_flush_prob: float = 0.3,
                 synth_executions: int = 150,
                 synth_rounds: int = 10,
                 synth_attempts: int = 3,
                 synth_seed: int = 0,
                 synth_flush_prob: Optional[Dict[str, float]] = None,
                 synth_flush_schedule: Tuple[float, ...] = (0.2, 0.5, 0.1),
                 model_factory: ModelFactory = make_model,
                 reduction: str = "sleep+cache",
                 explore_workers: Optional[int] = None) -> None:
        for model in models:
            if model == "sc":
                raise ValueError("models lists relaxed models; SC is "
                                 "always the reference")
        self.models = tuple(models)
        #: Path budget per exploration; an exhausted exploration makes
        #: its oracle inconclusive for that program.
        self.max_paths = max_paths
        #: Path budget for one program's whole oracle suite (up to ~10
        #: explorations run per program; this bounds the worst seed).
        self.max_total_paths = max_total_paths
        self.max_steps = max_steps
        self.random_runs = random_runs
        self.random_flush_prob = random_flush_prob
        self.synth_executions = synth_executions
        self.synth_rounds = synth_rounds
        self.synth_attempts = synth_attempts
        self.synth_seed = synth_seed
        self.synth_flush_prob = dict(synth_flush_prob or
                                     {"tso": 0.15, "pso": 0.4})
        #: Flush probabilities for retry attempts (attempt 0 uses the
        #: per-model default above).  Which schedules expose a reorder
        #: depends heavily on how long stores linger in the buffer, so
        #: retries sweep the flush rate instead of just sampling more.
        self.synth_flush_schedule = tuple(synth_flush_schedule)
        self.model_factory = model_factory
        #: Partial-order-reduction level for every exploration (see
        #: :data:`repro.sched.explorer.REDUCTIONS`).  All levels yield
        #: identical outcome sets; "none" mirrors the replay baseline.
        self.reduction = reduction
        #: Processes for exploration subtree fan-out (None/1 = serial).
        self.explore_workers = explore_workers


class OracleReport:
    """Everything the oracle suite learned about one program."""

    def __init__(self) -> None:
        self.failures: List[OracleFailure] = []
        #: (oracle, model) pairs whose exploration hit the path budget —
        #: inconclusive, not failing.
        self.inconclusive: List[Tuple[str, str]] = []
        #: model name -> exhaustive outcome set (as explored).
        self.outcomes: Dict[str, OutcomeSet] = {}
        #: total exhaustively explored paths (cost accounting).
        self.paths = 0
        #: branches skipped by sleep-set reduction across explorations.
        self.pruned = 0
        #: explorations cut short by the state-dedup cache.
        self.cache_hits = 0
        #: lower bound on what the unreduced replay tree would have cost.
        self.estimated_unreduced = 0
        #: models whose relaxed outcomes exceeded SC (synthesis ran).
        self.violating_models: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    def __repr__(self) -> str:
        return "<OracleReport %s, %d paths, %d inconclusive>" % (
            "ok" if self.ok else "%d FAILURES" % len(self.failures),
            self.paths, len(self.inconclusive))


def check_program(program: FuzzProgram,
                  config: Optional[OracleConfig] = None) -> OracleReport:
    """Run all four oracles on a generated program."""
    return check_module(program.compile(), config)


def check_module(module: Module,
                 config: Optional[OracleConfig] = None) -> OracleReport:
    """Run all four oracles on a compiled module (entry ``main``)."""
    cfg = config or OracleConfig()
    report = OracleReport()
    checker = _Checker(cfg, report)

    explored = {}
    for model in ("sc",) + cfg.models:
        explored[model] = checker.explore(module, model, "inclusion")
    if explored["sc"] is None:
        return report  # nothing is conclusive without the SC reference
    sc_outcomes = frozenset(explored["sc"].outcomes)
    report.outcomes["sc"] = sc_outcomes

    checker.check_inclusion(explored)
    checker.check_fenced_sc(module, sc_outcomes)
    checker.check_random_subset(module, explored)
    checker.check_synthesis(module, sc_outcomes, explored)
    return report


class _Checker:
    """Implementation of the four oracles against one report."""

    def __init__(self, config: OracleConfig, report: OracleReport) -> None:
        self.cfg = config
        self.report = report

    def explore(self, module: Module, model: str,
                oracle: str) -> Optional[ExplorationResult]:
        """Exhaustively explore, or record the oracle as inconclusive.

        Draws on the per-program total path budget: once a heavy seed
        has burned it, remaining explorations are inconclusive rather
        than letting one program stall the whole campaign.
        """
        cfg = self.cfg
        remaining = cfg.max_total_paths - self.report.paths
        budget = min(cfg.max_paths, remaining)
        if budget <= 0:
            self.report.inconclusive.append((oracle, model))
            return None
        result = explore(
            module, model, outcome_fn=thread_results,
            max_paths=budget, max_steps=cfg.max_steps,
            model_factory=functools.partial(cfg.model_factory, model),
            reduction=cfg.reduction, workers=cfg.explore_workers)
        self.report.paths += result.paths
        if result.stats is not None:
            self.report.pruned += result.stats.pruned
            self.report.cache_hits += result.stats.cache_hits
            self.report.estimated_unreduced += result.stats.estimated_unreduced
        if not result.complete:
            self.report.inconclusive.append((oracle, model))
            return None
        return result

    # -- oracle 1 ------------------------------------------------------

    def check_inclusion(self, explored) -> None:
        """SC ⊆ TSO ⊆ PSO on exhaustive outcome sets."""
        chain = [("sc", model) for model in self.cfg.models
                 if explored.get(model) is not None]
        if explored.get("tso") is not None \
                and explored.get("pso") is not None:
            chain.append(("tso", "pso"))
        for weaker, stronger in chain:
            self.report.outcomes[stronger] = \
                frozenset(explored[stronger].outcomes)
            missing = explored[weaker].outcomes \
                - explored[stronger].outcomes
            if missing:
                self.report.failures.append(OracleFailure(
                    "inclusion", stronger,
                    "%s outcomes %s not reproducible under %s"
                    % (weaker.upper(), sorted(missing), stronger.upper())))

    # -- oracle 2 ------------------------------------------------------

    def check_fenced_sc(self, module: Module,
                        sc_outcomes: OutcomeSet) -> None:
        """Fully-fenced program ≡ SC under every relaxed model."""
        fenced = fully_fenced(module)
        for model in self.cfg.models:
            result = self.explore(fenced, model, "fenced_sc")
            if result is None:
                continue
            if result.outcomes != sc_outcomes:
                extra = result.outcomes - sc_outcomes
                lost = sc_outcomes - result.outcomes
                self.report.failures.append(OracleFailure(
                    "fenced_sc", model,
                    "fully-fenced outcomes diverge from SC "
                    "(extra: %s, lost: %s)"
                    % (sorted(extra), sorted(lost))))

    # -- oracle 3 ------------------------------------------------------

    def check_random_subset(self, module: Module, explored) -> None:
        """Random flush-scheduler outcomes ⊆ exhaustive outcomes."""
        cfg = self.cfg
        for model in cfg.models:
            exact = explored.get(model)
            if exact is None:
                continue
            for run in range(cfg.random_runs):
                scheduler = FlushDelayScheduler(
                    seed=run, flush_prob=cfg.random_flush_prob)
                result = run_execution(
                    module, cfg.model_factory(model), scheduler,
                    collect_predicates=False)
                if not result.usable:
                    continue
                outcome = result.thread_results
                if outcome not in exact.outcomes:
                    self.report.failures.append(OracleFailure(
                        "random_subset", model,
                        "random seed %d produced outcome %r outside the "
                        "exhaustive set" % (run, outcome)))
                    break

    # -- oracle 4 ------------------------------------------------------

    def check_synthesis(self, module: Module, sc_outcomes: OutcomeSet,
                        explored) -> None:
        """Repairing a violating program must restore the SC outcome set.

        The engine samples schedules, so one synthesis pass may miss a
        violation the explorer can see; the oracle therefore alternates
        synthesize → exhaustively verify, doubling the execution count,
        sweeping the flush probability, and striding the scheduler-seed
        base on each attempt.  A semantics-level soundness bug (fences
        that do not constrain, predicates on wrong labels) keeps failing
        verification *after the engine observed and repaired violations*
        and is reported; if instead the sampler never produced a single
        violating schedule, the engine was never exercised and the
        oracle is inconclusive for that model.
        """
        cfg = self.cfg
        for model in cfg.models:
            exact = explored.get(model)
            if exact is None or not (exact.outcomes - sc_outcomes):
                continue
            self.report.violating_models.append(model)
            self._check_synthesis_on(module, model, sc_outcomes)

    def _check_synthesis_on(self, module: Module, model: str,
                            sc_outcomes: OutcomeSet) -> None:
        cfg = self.cfg
        spec = OutcomeSpec(sc_outcomes)
        current = module
        observed_last = False
        for attempt in range(cfg.synth_attempts):
            engine = SynthesisEngine(SynthesisConfig(
                memory_model=model,
                flush_prob=self._attempt_flush_prob(model, attempt),
                executions_per_round=cfg.synth_executions * (2 ** attempt),
                max_rounds=cfg.synth_rounds,
                seed=cfg.synth_seed + attempt * SYNTH_SEED_STRIDE))
            result = engine.synthesize(current, spec)
            current = result.program
            observed_last = result.total_violations > 0
            if result.outcome is SynthesisOutcome.CANNOT_FIX:
                self.report.failures.append(OracleFailure(
                    "synthesis", model,
                    "engine declared a fence-repairable program "
                    "unfixable: %s"
                    % result.rounds[-1].example_violation))
                return
            verify = self.explore(current, model, "synthesis")
            if verify is None:
                return
            residual = verify.outcomes - sc_outcomes
            if not residual:
                return
        if not observed_last:
            # The explorer can see a residual violation the random
            # sampler never produced, so the last engine run had nothing
            # to repair.  That tests the sampler's coverage, not the
            # engine's soundness — record it like a blown path budget.
            self.report.inconclusive.append(("synthesis", model))
            return
        self.report.failures.append(OracleFailure(
            "synthesis", model,
            "repaired module still admits non-SC outcomes %s after %d "
            "synthesis attempts" % (sorted(residual), cfg.synth_attempts)))

    def _attempt_flush_prob(self, model: str, attempt: int) -> float:
        """Per-model default first, then sweep the retry schedule."""
        if attempt == 0 or not self.cfg.synth_flush_schedule:
            return self.cfg.synth_flush_prob.get(model, 0.3)
        schedule = self.cfg.synth_flush_schedule
        return schedule[(attempt - 1) % len(schedule)]
