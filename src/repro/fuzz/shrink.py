"""Delta-debugging shrinker for failing fuzz programs.

Given a program on which some oracle fails, :func:`shrink` greedily
applies structure-level reductions — drop a thread, drop a statement,
unwrap a branch/loop body, shrink a loop count or a stored constant —
keeping each candidate only if the failure persists.  Because reductions
edit the statement tree (never the text), every candidate renders to a
syntactically valid MiniC program, so the check predicate is the only
cost.

The result is a local minimum: no single remaining reduction preserves
the failure.  On real semantics bugs this lands at litmus-sized
reproducers (a handful of statements), which the campaign serializes
into ``tests/corpus/`` as permanent regression tests.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from .generator import (
    CasStmt,
    FuzzProgram,
    IfStmt,
    LoopStmt,
    Stmt,
    StoreStmt,
)

#: Predicate: does the failure still reproduce on this candidate?
CheckFn = Callable[[FuzzProgram], bool]


def shrink(program: FuzzProgram, still_fails: CheckFn,
           max_rounds: int = 20) -> FuzzProgram:
    """Minimize *program* while ``still_fails`` keeps returning True.

    ``still_fails`` must be deterministic (the oracles are, per seed).
    The input program is not modified; the returned program is a clone,
    possibly the input itself if no reduction preserved the failure.
    """
    current = program
    for _ in range(max_rounds):
        for candidate in _reductions(current):
            if still_fails(candidate):
                current = candidate
                break  # restart: the reduction space changed
        else:
            return current  # fixpoint: no candidate kept failing
    return current


def _reductions(program: FuzzProgram) -> Iterator[FuzzProgram]:
    """Yield every one-step reduction of *program*, boldest first."""
    # Drop a forked thread entirely (with its fork/join).
    for index in range(len(program.threads) - 1, 0, -1):
        clone = program.clone()
        del clone.threads[index]
        yield clone
    # Drop one statement (top-level or nested).
    for thread_index, body in enumerate(program.threads):
        for path in _paths(body):
            clone = program.clone()
            parent = _resolve(clone.threads[thread_index], path[:-1])
            del parent[path[-1]]
            yield clone
    # Unwrap an if/loop into its body (removes the control structure).
    for thread_index, body in enumerate(program.threads):
        for path in _paths(body):
            stmt = _resolve_stmt(body, path)
            if isinstance(stmt, (IfStmt, LoopStmt)) and stmt.body:
                clone = program.clone()
                parent = _resolve(clone.threads[thread_index], path[:-1])
                inner = parent[path[-1]]
                parent[path[-1]:path[-1] + 1] = inner.body
                yield clone
    # Shrink numeric payloads: loop counts and stored constants.
    for thread_index, body in enumerate(program.threads):
        for path in _paths(body):
            stmt = _resolve_stmt(body, path)
            replacement = _shrunk_constant(stmt)
            if replacement is not None:
                clone = program.clone()
                parent = _resolve(clone.threads[thread_index], path[:-1])
                parent[path[-1]] = replacement
                yield clone


def _paths(body: List[Stmt], prefix: tuple = ()) -> Iterator[tuple]:
    """Paths to every statement, outermost first (bolder cuts early)."""
    for index, stmt in enumerate(body):
        path = prefix + (index,)
        yield path
        if isinstance(stmt, (IfStmt, LoopStmt)):
            for sub in _paths(stmt.body, path):
                yield sub


def _resolve(body: List[Stmt], path: tuple) -> List[Stmt]:
    """The statement list a path's final index points into."""
    for index in path:
        body = body[index].body  # only If/Loop appear on inner path legs
    return body


def _resolve_stmt(body: List[Stmt], path: tuple) -> Stmt:
    return _resolve(body, path[:-1])[path[-1]]


def _shrunk_constant(stmt: Stmt) -> Optional[Stmt]:
    """A copy of *stmt* with a smaller constant, or None if minimal."""
    if isinstance(stmt, LoopStmt) and stmt.count > 1:
        return LoopStmt(stmt.count - 1, [s.clone() for s in stmt.body])
    if isinstance(stmt, StoreStmt) and stmt.value > 1:
        return StoreStmt(stmt.var, 1)
    if isinstance(stmt, CasStmt) and (stmt.value > 1 or stmt.expected > 0):
        return CasStmt(stmt.var, 0, 1)
    return None
