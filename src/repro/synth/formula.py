"""The repair formula Φ.

Each violating execution ``p`` contributes the clause ``avoid(p)`` — the
disjunction of the ordering predicates violated by ``p`` (any one of them,
enforced as a fence, eliminates ``p``).  Φ is the conjunction of these
clauses over all violating executions gathered in the current round.

Predicates map to SAT variables; a minimal satisfying assignment of Φ is a
smallest predicate set repairing every gathered execution.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..ir.instructions import FenceKind
from ..memory.predicates import OrderingPredicate, merge_kinds
from ..sat.models import minimum_model


class RepairFormula:
    """Accumulates avoid-clauses and extracts minimal repairs."""

    def __init__(self) -> None:
        self._var_of_key: Dict[Tuple[int, int], int] = {}
        self._pred_of_var: Dict[int, OrderingPredicate] = {}
        self._clauses: List[List[int]] = []
        self._clause_set: Set[FrozenSet[int]] = set()

    # ------------------------------------------------------------------

    def _var(self, pred: OrderingPredicate) -> int:
        var = self._var_of_key.get(pred.key)
        if var is None:
            var = len(self._var_of_key) + 1
            self._var_of_key[pred.key] = var
            self._pred_of_var[var] = OrderingPredicate(
                pred.store_label, pred.access_label, pred.kind)
        else:
            known = self._pred_of_var[var]
            known.kind = merge_kinds(known.kind, pred.kind)
        return var

    def add_execution(self, predicates: Sequence[OrderingPredicate]) -> bool:
        """Add ``avoid(p)`` for one violating execution.

        Returns False when the execution has no repairing predicate at all
        — the paper's "cannot be fixed" abort condition (the violation is
        not caused by memory-model reordering).
        """
        if not predicates:
            return False
        clause = sorted(self._var(pred) for pred in predicates)
        key = frozenset(clause)
        if key not in self._clause_set:
            self._clause_set.add(key)
            self._clauses.append(clause)
        return True

    # ------------------------------------------------------------------

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def num_predicates(self) -> int:
        return len(self._var_of_key)

    def predicates(self) -> List[OrderingPredicate]:
        """Every predicate currently mentioned by the formula."""
        return [self._pred_of_var[v] for v in sorted(self._pred_of_var)]

    def minimal_repair(self, stats: Optional[Dict[str, int]] = None
                       ) -> Optional[List[OrderingPredicate]]:
        """A cardinality-minimal predicate set satisfying Φ.

        None if Φ is unsatisfiable (cannot happen for non-empty positive
        clauses) or empty if there is nothing to repair.  Pass a dict as
        *stats* to accumulate the underlying SAT solver's counters
        (decisions, conflicts, propagations, ...) into it.
        """
        if not self._clauses:
            return []
        model = minimum_model(self._clauses, stats=stats)
        if model is None:
            return None
        return [self._pred_of_var[v] for v in sorted(model)]

    def reset(self) -> None:
        """Drop accumulated clauses (Φ := true after each enforcement),
        keeping the predicate/variable identification stable."""
        self._clauses = []
        self._clause_set = set()
