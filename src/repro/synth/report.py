"""Human-readable synthesis reports.

Turns a :class:`~repro.synth.engine.SynthesisResult` into:

* an annotated copy of the MiniC source, with a ``// >>> fence`` comment
  line after every source line that received a synthesized fence — the
  closest analogue of DFENCE writing fences back into the bytecode;
* a round-by-round textual summary of the engine's progress, with
  per-round timing and an optional metrics block (``repro.obs``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from ..ir.instructions import FenceKind
from .engine import SynthesisResult

_KIND_NAMES = {
    FenceKind.FULL: "full fence",
    FenceKind.ST_ST: "store-store fence",
    FenceKind.ST_LD: "store-load fence",
}


def annotate_source(result: SynthesisResult) -> str:
    """The program's MiniC source with fence annotations inserted.

    Every synthesized fence becomes a ``// >>> ...`` comment line right
    after the source line of the store it orders.  Raises ``ValueError``
    when the module was built without source (IR-level programs).
    """
    source = result.program.source
    if source is None:
        raise ValueError("module has no MiniC source to annotate")

    by_line: Dict[int, List[str]] = defaultdict(list)
    for placement in result.placements:
        if placement.after_line is None:
            continue
        by_line[placement.after_line].append(
            "// >>> %s synthesized here (in %s, from %r)"
            % (_KIND_NAMES[placement.kind], placement.function,
               placement.predicate))

    lines = []
    for number, line in enumerate(source.splitlines(), start=1):
        lines.append(line)
        indent = line[:len(line) - len(line.lstrip())]
        for note in by_line.get(number, ()):
            lines.append(indent + note)
    return "\n".join(lines)


def summarize(result: SynthesisResult,
              metrics: Optional[dict] = None) -> str:
    """A round-by-round account of the synthesis run.

    Pass a recorder snapshot (``Recorder.snapshot()``) as *metrics* to
    append a metrics block (see :func:`format_metrics`).
    """
    lines = [
        "synthesis outcome: %s" % result.outcome.value,
        "total executions: %d across %d round(s)"
        % (result.total_executions, len(result.rounds)),
        "fences in final program: %d" % result.fence_count,
    ]
    if result.duration > 0:
        lines.append("wall clock: %.2fs (%.0f exec/s)"
                     % (result.duration,
                        result.total_executions / result.duration))
    for report in result.rounds:
        line = ("  round %d: %d runs, %d violations (%d unfixable, "
                "%d discarded), %d clauses over %d predicates, "
                "%d fences inserted"
                % (report.index, report.executions, report.violations,
                   report.unfixable, report.discarded, report.clauses,
                   report.distinct_predicates, len(report.inserted)))
        if report.duration > 0:
            line += (" [%.2fs: run %.2fs, solve %.3fs, enforce %.3fs]"
                     % (report.duration, report.execute_time,
                        report.solve_time, report.enforce_time))
        lines.append(line)
        if report.example_violation:
            lines.append("    e.g. %s" % report.example_violation[:120])
    if result.placements:
        lines.append("fences:")
        for placement in result.placements:
            lines.append("  %s %s" % (placement.location(),
                                      placement.kind.value))
    if metrics:
        lines.append(format_metrics(metrics))
    return "\n".join(lines)


def format_metrics(snapshot: dict) -> str:
    """Render a recorder snapshot as an indented metrics block.

    Accepts the dict shape of
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot` (or the
    deterministic-only ``aggregates()`` subset).
    """
    lines = ["metrics:"]
    for name, value in snapshot.get("counters", {}).items():
        lines.append("  %s: %d" % (name, value))
    for section in ("histograms", "timing"):
        entries = snapshot.get(section, {})
        if entries:
            lines.append("  %s:" % section)
            for name, h in entries.items():
                lines.append(
                    "    %s: n=%d sum=%.6g min=%.6g max=%.6g mean=%.6g"
                    % (name, h["count"], h["sum"], h["min"] or 0,
                       h["max"] or 0, h["mean"]))
    process = snapshot.get("process", {})
    if process:
        lines.append("  process:")
        for name, value in process.items():
            lines.append("    %s: %d" % (name, value))
    workers = snapshot.get("workers", {})
    if workers:
        lines.append("  worker jobs: %s"
                     % ", ".join("%s=%d" % (w, n)
                                 for w, n in workers.items()))
    return "\n".join(lines)
