"""Human-readable synthesis reports.

Turns a :class:`~repro.synth.engine.SynthesisResult` into:

* an annotated copy of the MiniC source, with a ``// >>> fence`` comment
  line after every source line that received a synthesized fence — the
  closest analogue of DFENCE writing fences back into the bytecode;
* a round-by-round textual summary of the engine's progress.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from ..ir.instructions import FenceKind
from .engine import SynthesisResult

_KIND_NAMES = {
    FenceKind.FULL: "full fence",
    FenceKind.ST_ST: "store-store fence",
    FenceKind.ST_LD: "store-load fence",
}


def annotate_source(result: SynthesisResult) -> str:
    """The program's MiniC source with fence annotations inserted.

    Every synthesized fence becomes a ``// >>> ...`` comment line right
    after the source line of the store it orders.  Raises ``ValueError``
    when the module was built without source (IR-level programs).
    """
    source = result.program.source
    if source is None:
        raise ValueError("module has no MiniC source to annotate")

    by_line: Dict[int, List[str]] = defaultdict(list)
    for placement in result.placements:
        if placement.after_line is None:
            continue
        by_line[placement.after_line].append(
            "// >>> %s synthesized here (in %s, from %r)"
            % (_KIND_NAMES[placement.kind], placement.function,
               placement.predicate))

    lines = []
    for number, line in enumerate(source.splitlines(), start=1):
        lines.append(line)
        indent = line[:len(line) - len(line.lstrip())]
        for note in by_line.get(number, ()):
            lines.append(indent + note)
    return "\n".join(lines)


def summarize(result: SynthesisResult) -> str:
    """A round-by-round account of the synthesis run."""
    lines = [
        "synthesis outcome: %s" % result.outcome.value,
        "total executions: %d across %d round(s)"
        % (result.total_executions, len(result.rounds)),
        "fences in final program: %d" % result.fence_count,
    ]
    for report in result.rounds:
        lines.append(
            "  round %d: %d runs, %d violations (%d unfixable, "
            "%d discarded), %d clauses over %d predicates, "
            "%d fences inserted"
            % (report.index, report.executions, report.violations,
               report.unfixable, report.discarded, report.clauses,
               report.distinct_predicates, len(report.inserted)))
        if report.example_violation:
            lines.append("    e.g. %s" % report.example_violation[:120])
    if result.placements:
        lines.append("fences:")
        for placement in result.placements:
            lines.append("  %s %s" % (placement.location(),
                                      placement.kind.value))
    return "\n".join(lines)
