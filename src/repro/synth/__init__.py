"""Dynamic fence synthesis (Algorithms 1 and 2 of the paper)."""

from .enforce import (
    CAS_DUMMY_GLOBAL,
    FencePlacement,
    enforce,
    enforce_with_cas,
    fence_still_present,
    synthesized_fences,
)
from .engine import (
    CHECK_SEED_STRIDE,
    CheckStats,
    RoundReport,
    SynthesisConfig,
    SynthesisEngine,
    SynthesisOutcome,
    SynthesisResult,
)
from .formula import RepairFormula
from .report import annotate_source, format_metrics, summarize

__all__ = [
    "CAS_DUMMY_GLOBAL", "CHECK_SEED_STRIDE", "CheckStats",
    "FencePlacement", "RepairFormula", "RoundReport",
    "SynthesisConfig", "SynthesisEngine", "SynthesisOutcome",
    "SynthesisResult", "annotate_source", "enforce", "enforce_with_cas",
    "fence_still_present", "format_metrics", "summarize",
    "synthesized_fences",
]
