"""Enforcing ordering predicates as fences (Algorithm 2).

``[l < k] = true`` is realised by inserting a memory fence right after
label ``l``; the fence flavour is store-load or store-store depending on
the statement at ``k`` (FULL when both flavours were demanded).  After
insertion, the redundant-fence merge pass runs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.instructions import Cas, Fence, FenceKind
from ..ir.module import Module, GlobalVar
from ..ir.operands import Const, Reg, Sym
from ..ir.passes.fences import insert_fence_after, merge_redundant_fences
from ..memory.predicates import OrderingPredicate


class FencePlacement:
    """A fence inserted by the engine, with reporting metadata.

    ``function``/``after_line``/``before_line`` give the paper-style triple
    "(method, line1:line2)": the fence sits between source lines
    ``after_line`` and ``before_line`` of ``function``.
    """

    def __init__(self, fence_label: int, function: str, kind: FenceKind,
                 after_line: Optional[int], before_line: Optional[int],
                 predicate: OrderingPredicate) -> None:
        self.fence_label = fence_label
        self.function = function
        self.kind = kind
        self.after_line = after_line
        self.before_line = before_line
        self.predicate = predicate

    def location(self) -> str:
        """The paper's (method, line1:line2) description."""
        first = "?" if self.after_line is None else str(self.after_line)
        second = "-" if self.before_line is None else str(self.before_line)
        return "(%s, %s:%s)" % (self.function, first, second)

    def __repr__(self) -> str:
        return "<Fence %s %s from %r>" % (
            self.location(), self.kind.value, self.predicate)


def enforce(module: Module, predicates: Sequence[OrderingPredicate],
            merge: bool = True) -> List[FencePlacement]:
    """Insert a fence for each predicate; returns the placements made.

    Predicates whose ``l`` is already immediately followed by a subsuming
    fence insert nothing.  With ``merge`` True the redundant-fence merge
    pass runs afterwards; placements whose fence was merged away are
    dropped from the returned list.
    """
    placements: List[FencePlacement] = []
    for pred in predicates:
        fn, store_instr = module.find_instr(pred.store_label)
        fence = insert_fence_after(module, pred.store_label, pred.kind)
        if fence is None:
            continue
        before_line = _next_source_line(module, fn.name, fence.label)
        placements.append(FencePlacement(
            fence.label, fn.name, pred.kind,
            store_instr.src_line, before_line, pred))

    if merge:
        merge_redundant_fences(module)
        placements = [p for p in placements
                      if fence_still_present(module, p.fence_label)]
    return placements


#: Name of the dummy location used by CAS-based enforcement.
CAS_DUMMY_GLOBAL = "__fence_dummy"


def enforce_with_cas(module: Module,
                     predicates: Sequence[OrderingPredicate]
                     ) -> List[int]:
    """Enforce predicates with CAS to a dummy location (paper §4.2).

    On TSO a locked compare-and-swap — regardless of success — drains the
    store buffer, so ``cas(dummy, 0, 0)`` right after label ``l`` orders
    ``l`` before everything later, exactly like a fence.  The paper notes
    this is *not* generally sound on PSO (a CAS only drains the target
    variable's buffer there); callers should use it for TSO programs.

    Returns the labels of the inserted CAS instructions.
    """
    if CAS_DUMMY_GLOBAL not in module.globals:
        module.add_global(GlobalVar(CAS_DUMMY_GLOBAL))
    inserted: List[int] = []
    for pred in predicates:
        fn, store_instr = module.find_instr(pred.store_label)
        pos = fn.index_of(pred.store_label)
        if pos + 1 < len(fn.body):
            nxt = fn.body[pos + 1]
            if isinstance(nxt, Cas) and nxt.addr == Sym(CAS_DUMMY_GLOBAL):
                continue  # already enforced here
        label = module.new_label()
        # The result register is never read; the CAS compares 0 with the
        # dummy cell (which stays 0), so memory is unchanged either way.
        cas = Cas(label, Reg(".fence_cas_%d" % label),
                  Sym(CAS_DUMMY_GLOBAL), Const(0), Const(0),
                  store_instr.src_line)
        fn.insert_after(pred.store_label, cas)
        inserted.append(label)
    return inserted


def synthesized_fences(module: Module) -> List[Fence]:
    """All engine-inserted fences currently present in the module."""
    fences = []
    for fn in module.functions.values():
        for instr in fn:
            if isinstance(instr, Fence) and instr.synthesized:
                fences.append(instr)
    return fences


def fence_still_present(module: Module, label: int) -> bool:
    """True if the fence inserted under *label* survives in the module.

    The redundant-fence merge pass replaces removed fences by same-label
    nops (and later enforcement rounds may merge earlier fences away), so
    placement lists are filtered through this after every merge.
    """
    try:
        _fn, instr = module.find_instr(label)
    except KeyError:
        return False
    # The merge pass replaces removed fences by same-label nops.
    return isinstance(instr, Fence)


#: Backwards-compatible alias of :func:`fence_still_present`.
_fence_still_present = fence_still_present


def _next_source_line(module: Module, fn_name: str,
                      fence_label: int) -> Optional[int]:
    """Source line of the first following instruction with one (for the
    "line2" half of the paper's reporting triple)."""
    fn = module.function(fn_name)
    pos = fn.index_of(fence_label)
    for instr in fn.body[pos + 1:]:
        if instr.src_line is not None:
            return instr.src_line
    return None
