"""The dynamic synthesis engine — Algorithm 1 of the paper.

Round-based loop: run K executions under the flush-delaying scheduler;
check each against the specification; accumulate ``avoid(p)`` clauses for
the violating ones; when the round ends, enforce a minimal satisfying
assignment of Φ as fences and reset Φ; terminate when a whole round
exposes no violation (or a violating execution has no repairing predicate,
the "cannot be fixed" abort).

The paper's non-deterministic choice "?" of when to enforce is realised —
as in DFENCE — by the executions-per-round count K.
"""

from __future__ import annotations

import enum
import time
from typing import Dict, List, Optional, Sequence

from ..ir.module import Module
from ..obs.recorder import NULL_RECORDER, NullRecorder
from ..parallel.pool import ExecutionPool, Job, make_pool
from ..sched.replay import Witness
from ..spec.specifications import Specification
from ..vm.compile import COMPILE_STATS, compile_stats_delta
from ..vm.interp import DEFAULT_MAX_STEPS
from .enforce import (
    FencePlacement,
    enforce,
    fence_still_present,
    synthesized_fences,
)
from .formula import RepairFormula

#: Seed offset applied to check-only (``test_program``) runs so that
#: validation never replays the exact executions synthesis already saw:
#: ``synthesize`` uses seeds ``cfg.seed + 0 .. cfg.seed + rounds*K - 1``,
#: while check-only sampling starts at ``cfg.seed + CHECK_SEED_STRIDE``.
#: The stride (2**24 ≈ 16.7M) exceeds any realistic rounds×K product.
CHECK_SEED_STRIDE = 1 << 24


class SynthesisOutcome(enum.Enum):
    CLEAN = "clean"             # a full round with no violations
    CANNOT_FIX = "cannot_fix"   # violation with no repairing predicate
    ROUND_LIMIT = "round_limit"  # max_rounds exhausted while still failing


class SynthesisConfig:
    """Tunable parameters of the engine (the paper's four dimensions).

    ``workers`` selects the execution backend: ``None`` runs every
    execution in-process (serial, the default); ``0`` fans rounds out to
    one worker process per CPU; a positive integer uses exactly that many
    worker processes.  All settings produce identical results — see
    ``repro.parallel`` for the determinism contract.
    """

    def __init__(self, memory_model: str = "pso", flush_prob: float = 0.5,
                 executions_per_round: int = 200, max_rounds: int = 12,
                 seed: int = 0, max_steps: int = DEFAULT_MAX_STEPS,
                 merge_fences: bool = True, por: bool = True,
                 abort_on_unfixable: bool = False,
                 workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 witness_limit: int = 5,
                 compiled: Optional[bool] = None) -> None:
        self.memory_model = memory_model
        self.flush_prob = flush_prob
        self.executions_per_round = executions_per_round
        self.max_rounds = max_rounds
        self.seed = seed
        self.max_steps = max_steps
        self.merge_fences = merge_fences
        self.por = por
        #: The paper's Algorithm 1 aborts on the first violating execution
        #: whose avoid(p) is empty.  The default here is the softer policy:
        #: count such executions and declare CANNOT_FIX only when a round's
        #: violations are *all* unfixable (no repair clause to enforce) —
        #: one blind-spot execution then cannot mask repairs that other
        #: violating executions of the same round do expose.
        self.abort_on_unfixable = abort_on_unfixable
        self.workers = workers
        #: Jobs per worker batch (None → sized by the pool).
        self.chunk_size = chunk_size
        if witness_limit < 0:
            raise ValueError("witness_limit must be non-negative")
        #: Reproducible violation witnesses kept per round (0 disables).
        self.witness_limit = witness_limit
        #: VM backend: True → closure-compiled, False → generic
        #: interpreter, None → the process default (compiled unless
        #: ``--no-compile``/``REPRO_NO_COMPILE``).  Both backends produce
        #: byte-identical results; see ``repro.vm.compile``.
        self.compiled = compiled


class RoundReport:
    """What happened during one round of K executions."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.executions = 0
        self.violations = 0
        self.unfixable = 0           # violations with an empty avoid(p)
        self.discarded = 0           # timeouts / deadlocks
        self.distinct_predicates = 0
        self.clauses = 0
        self.inserted: List[FencePlacement] = []
        self.example_violation: Optional[str] = None
        #: Reproducible (entry, seed) records of violating executions
        #: found this round (capped at ``SynthesisConfig.witness_limit``).
        self.witnesses: List[Witness] = []
        #: Wall-clock timing (seconds); machine-dependent, excluded from
        #: the serial ≡ parallel determinism contract.
        self.duration = 0.0
        self.execute_time = 0.0
        self.solve_time = 0.0
        self.enforce_time = 0.0

    def __repr__(self) -> str:
        return ("<Round %d: %d runs, %d violations, %d clauses, "
                "%d fences inserted>" % (
                    self.index, self.executions, self.violations,
                    self.clauses, len(self.inserted)))


class SynthesisResult:
    """Outcome of a synthesis run."""

    def __init__(self, program: Module, outcome: SynthesisOutcome,
                 rounds: List[RoundReport],
                 placements: List[FencePlacement]) -> None:
        self.program = program
        self.outcome = outcome
        self.rounds = rounds
        self.placements = placements
        #: Total wall-clock of the run (seconds); machine-dependent.
        self.duration = 0.0

    @property
    def total_executions(self) -> int:
        return sum(r.executions for r in self.rounds)

    @property
    def total_violations(self) -> int:
        return sum(r.violations for r in self.rounds)

    @property
    def fence_count(self) -> int:
        return len(synthesized_fences(self.program))

    @property
    def witnesses(self) -> List[Witness]:
        """Reproducible violating executions from every round."""
        return [w for r in self.rounds for w in r.witnesses]

    def fence_locations(self) -> List[str]:
        """Paper-style (method, line1:line2) strings, sorted."""
        return sorted("%s/%s" % (p.location(), p.kind.value)
                      for p in self.placements)

    def __repr__(self) -> str:
        return "<SynthesisResult %s: %d fences after %d rounds, %d runs>" % (
            self.outcome.value, self.fence_count, len(self.rounds),
            self.total_executions)


class CheckStats:
    """Outcome of a check-only (``test_program``) sampling run.

    ``runs`` counts completed executions, ``discarded`` the subset that
    was cut off (timeout/deadlock) and therefore never judged against the
    spec; ``violations`` only counts usable runs.  Unpacks like the legacy
    3-tuple: ``runs, violations, example = engine.test_program(...)``.
    """

    __slots__ = ("runs", "violations", "discarded", "example")

    def __init__(self, runs: int, violations: int, discarded: int,
                 example: Optional[str]) -> None:
        self.runs = runs
        self.violations = violations
        self.discarded = discarded
        self.example = example

    @property
    def usable(self) -> int:
        """Executions that actually reached the specification check."""
        return self.runs - self.discarded

    def __iter__(self):
        """Legacy unpacking: ``(runs, violations, example)``."""
        yield self.runs
        yield self.violations
        yield self.example

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CheckStats):
            return NotImplemented
        return (self.runs == other.runs
                and self.violations == other.violations
                and self.discarded == other.discarded
                and self.example == other.example)

    def __repr__(self) -> str:
        return "<CheckStats %d runs, %d violations, %d discarded>" % (
            self.runs, self.violations, self.discarded)


class SynthesisEngine:
    """Runs Algorithm 1 for one program/spec/model combination.

    ``recorder`` plugs in the observability subsystem (``repro.obs``):
    pass a :class:`~repro.obs.recorder.Recorder` to collect spans,
    metrics, and live progress.  The default is the shared no-op recorder
    — instrumentation then costs one no-op call per hook and the
    :class:`SynthesisResult` is identical to an uninstrumented run.
    """

    def __init__(self, config: SynthesisConfig,
                 recorder: Optional[NullRecorder] = None) -> None:
        self.config = config
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    def _make_pool(self) -> ExecutionPool:
        """Build the execution backend selected by ``config.workers``."""
        cfg = self.config
        return make_pool(cfg.workers, cfg.memory_model, cfg.flush_prob,
                         por=cfg.por, max_steps=cfg.max_steps,
                         chunk_size=cfg.chunk_size, compiled=cfg.compiled)

    # ------------------------------------------------------------------

    def synthesize(self, program: Module, spec: Specification,
                   entries: Sequence[str] = ("main",),
                   operations: Sequence[str] = ()) -> SynthesisResult:
        """Infer fences for *program* against *spec*.

        The input module is cloned; the returned result holds the repaired
        program.  ``entries`` lists the client entry functions (executions
        rotate through them, broadening coverage); ``operations`` names the
        functions recorded in histories.

        Each round's K executions run on the configured execution pool
        (serial in-process by default, multiprocess with ``workers`` set);
        summaries are folded in execution-index order, so the result is
        identical for every backend.
        """
        cfg = self.config
        rec = self.recorder
        module = program.clone()
        rounds: List[RoundReport] = []
        placements: List[FencePlacement] = []
        exec_counter = 0
        run_start = time.perf_counter()
        compile_before = COMPILE_STATS.snapshot() if rec.enabled else None

        with self._make_pool() as pool:
            with rec.span("broadcast"):
                pool.broadcast(module, spec, operations)
            for round_index in range(cfg.max_rounds):
                report = RoundReport(round_index)
                rounds.append(report)
                formula = RepairFormula()

                jobs: List[Job] = []
                for _ in range(cfg.executions_per_round):
                    entry = entries[exec_counter % len(entries)]
                    jobs.append((exec_counter, entry,
                                 cfg.seed + exec_counter))
                    exec_counter += 1

                outcome: Optional[SynthesisOutcome] = None
                round_start = time.perf_counter()
                with rec.span("round", index=round_index):
                    with rec.span("execute", index=round_index,
                                  jobs=len(jobs)):
                        aborted = self._fold_round(pool, jobs, report,
                                                   formula)
                    report.execute_time = \
                        time.perf_counter() - round_start
                    report.clauses = formula.num_clauses
                    report.distinct_predicates = formula.num_predicates

                    if aborted:
                        outcome = SynthesisOutcome.CANNOT_FIX
                    elif report.violations == 0:
                        outcome = SynthesisOutcome.CLEAN
                    elif formula.num_clauses == 0:
                        # Every violation this round was unfixable: the
                        # property fails independently of memory-model
                        # reordering (e.g. the algorithm itself is not
                        # linearizable).
                        outcome = SynthesisOutcome.CANNOT_FIX
                    else:
                        outcome = self._repair_round(
                            pool, module, spec, operations, report,
                            formula, placements, round_index)
                report.duration = time.perf_counter() - round_start
                rec.round_end(report, report.duration)
                if outcome is not None:
                    return self._finish(module, outcome, rounds,
                                        placements, run_start,
                                        compile_before)

        return self._finish(module, SynthesisOutcome.ROUND_LIMIT, rounds,
                            placements, run_start, compile_before)

    def _repair_round(self, pool: ExecutionPool, module: Module,
                      spec: Specification, operations: Sequence[str],
                      report: RoundReport, formula: RepairFormula,
                      placements: List[FencePlacement],
                      round_index: int) -> Optional[SynthesisOutcome]:
        """SAT-solve the round's Φ and enforce the minimal repair.

        Returns the run outcome when the round is terminal (no repair
        exists), None when synthesis continues into the next round.
        """
        cfg = self.config
        rec = self.recorder
        sat_stats: Optional[Dict[str, int]] = {} if rec.enabled else None
        solve_start = time.perf_counter()
        with rec.span("sat_solve", index=round_index,
                      clauses=report.clauses,
                      predicates=report.distinct_predicates):
            repair = formula.minimal_repair(stats=sat_stats)
        report.solve_time = time.perf_counter() - solve_start
        if sat_stats is not None:
            rec.sat(sat_stats)
        if repair is None:
            return SynthesisOutcome.CANNOT_FIX

        enforce_start = time.perf_counter()
        with rec.span("enforce", index=round_index,
                      predicates=len(repair)):
            inserted = enforce(module, repair, merge=cfg.merge_fences)
        report.enforce_time = time.perf_counter() - enforce_start
        report.inserted = inserted
        placements.extend(inserted)
        # The module changed: re-publish it to the workers for the
        # next round.
        with rec.span("broadcast", index=round_index):
            pool.broadcast(module, spec, operations)
        return None

    def _finish(self, module: Module, outcome: SynthesisOutcome,
                rounds: List[RoundReport],
                placements: List[FencePlacement],
                run_start: float,
                compile_before: Optional[dict] = None) -> SynthesisResult:
        result = SynthesisResult(module, outcome, rounds,
                                 self._surviving(module, placements))
        result.duration = time.perf_counter() - run_start
        if compile_before is not None:
            self.recorder.vm_compile(compile_stats_delta(compile_before))
        self.recorder.run_end(outcome.value, len(rounds),
                              result.fence_count, result.duration)
        return result

    def _fold_round(self, pool: ExecutionPool, jobs: Sequence[Job],
                    report: RoundReport, formula: RepairFormula) -> bool:
        """Merge one round's summaries (in index order) into the report.

        Returns True when the abort-on-unfixable policy fired; remaining
        executions are then cancelled/skipped, exactly like the serial
        loop's early return.
        """
        cfg = self.config
        rec = self.recorder
        summaries = pool.run(jobs)
        try:
            for summary in summaries:
                rec.execution(summary)
                report.executions += 1
                if not summary.usable:
                    report.discarded += 1
                    continue
                message = summary.violation
                if message is None:
                    continue
                report.violations += 1
                if report.example_violation is None:
                    report.example_violation = message
                if len(report.witnesses) < cfg.witness_limit:
                    report.witnesses.append(
                        Witness(summary.entry, summary.seed,
                                cfg.flush_prob, message, por=cfg.por))
                if not formula.add_execution(summary.predicate_objects()):
                    # avoid(p) is empty: no pending-store bypass occurred,
                    # so the predicate formalism offers no repair for this
                    # particular execution.
                    report.unfixable += 1
                    if cfg.abort_on_unfixable:
                        return True
        finally:
            summaries.close()
        return False

    # ------------------------------------------------------------------

    def test_program(self, program: Module, spec: Specification,
                     entries: Sequence[str] = ("main",),
                     operations: Sequence[str] = (),
                     executions: Optional[int] = None,
                     stop_on_first_violation: bool = False) -> CheckStats:
        """Check-only mode: run executions without repairing.

        Returns a :class:`CheckStats` (which still unpacks as the legacy
        ``(runs, violations, example)`` triple) — used both to validate
        repaired programs and to test properties under SC (e.g. the
        paper's finding that Cilk's THE queue is not linearizable even
        without memory-model effects).

        Seeds are offset by :data:`CHECK_SEED_STRIDE` from the synthesis
        seed space, so validating a repaired program samples fresh
        schedules instead of replaying the executions synthesis saw.

        With ``stop_on_first_violation`` the sampling stops — and, on the
        multiprocess backend, outstanding batches are cancelled — as soon
        as one violation is found; ``runs`` then reflects only the
        executions actually merged.  Plain counting always runs every
        execution to completion.
        """
        cfg = self.config
        rec = self.recorder
        module = program  # no mutation in check-only mode
        total = executions if executions is not None \
            else cfg.executions_per_round
        jobs: List[Job] = [
            (i, entries[i % len(entries)], cfg.seed + CHECK_SEED_STRIDE + i)
            for i in range(total)]
        runs = 0
        violations = 0
        discarded = 0
        example: Optional[str] = None
        compile_before = COMPILE_STATS.snapshot() if rec.enabled else None
        with self._make_pool() as pool:
            with rec.span("broadcast"):
                pool.broadcast(module, spec, operations)
            with rec.span("check", jobs=total):
                summaries = pool.run(jobs)
                try:
                    for summary in summaries:
                        rec.execution(summary)
                        runs += 1
                        if not summary.usable:
                            discarded += 1
                            continue
                        if summary.violation is not None:
                            violations += 1
                            if example is None:
                                example = summary.violation
                            if stop_on_first_violation:
                                break
                finally:
                    summaries.close()
        if compile_before is not None:
            rec.vm_compile(compile_stats_delta(compile_before))
        return CheckStats(runs, violations, discarded, example)

    @staticmethod
    def _surviving(module: Module,
                   placements: List[FencePlacement]) -> List[FencePlacement]:
        """Placements whose fence is still in the module (merge may have
        removed earlier-round fences)."""
        return [placement for placement in placements
                if fence_still_present(module, placement.fence_label)]
