"""The dynamic synthesis engine — Algorithm 1 of the paper.

Round-based loop: run K executions under the flush-delaying scheduler;
check each against the specification; accumulate ``avoid(p)`` clauses for
the violating ones; when the round ends, enforce a minimal satisfying
assignment of Φ as fences and reset Φ; terminate when a whole round
exposes no violation (or a violating execution has no repairing predicate,
the "cannot be fixed" abort).

The paper's non-deterministic choice "?" of when to enforce is realised —
as in DFENCE — by the executions-per-round count K.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from ..ir.module import Module
from ..memory.models import make_model
from ..sched.flush_random import FlushDelayScheduler
from ..sched.replay import Witness
from ..spec.specifications import Specification
from ..vm.driver import run_execution
from ..vm.interp import DEFAULT_MAX_STEPS
from .enforce import FencePlacement, enforce, synthesized_fences
from .formula import RepairFormula


class SynthesisOutcome(enum.Enum):
    CLEAN = "clean"             # a full round with no violations
    CANNOT_FIX = "cannot_fix"   # violation with no repairing predicate
    ROUND_LIMIT = "round_limit"  # max_rounds exhausted while still failing


class SynthesisConfig:
    """Tunable parameters of the engine (the paper's four dimensions)."""

    def __init__(self, memory_model: str = "pso", flush_prob: float = 0.5,
                 executions_per_round: int = 200, max_rounds: int = 12,
                 seed: int = 0, max_steps: int = DEFAULT_MAX_STEPS,
                 merge_fences: bool = True, por: bool = True,
                 abort_on_unfixable: bool = False) -> None:
        self.memory_model = memory_model
        self.flush_prob = flush_prob
        self.executions_per_round = executions_per_round
        self.max_rounds = max_rounds
        self.seed = seed
        self.max_steps = max_steps
        self.merge_fences = merge_fences
        self.por = por
        #: The paper's Algorithm 1 aborts on the first violating execution
        #: whose avoid(p) is empty.  The default here is the softer policy:
        #: count such executions and declare CANNOT_FIX only when a round's
        #: violations are *all* unfixable (no repair clause to enforce) —
        #: one blind-spot execution then cannot mask repairs that other
        #: violating executions of the same round do expose.
        self.abort_on_unfixable = abort_on_unfixable


class RoundReport:
    """What happened during one round of K executions."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.executions = 0
        self.violations = 0
        self.unfixable = 0           # violations with an empty avoid(p)
        self.discarded = 0           # timeouts / deadlocks
        self.distinct_predicates = 0
        self.clauses = 0
        self.inserted: List[FencePlacement] = []
        self.example_violation: Optional[str] = None
        #: Reproducible (entry, seed) records of violating executions
        #: found this round (capped).
        self.witnesses: List[Witness] = []

    def __repr__(self) -> str:
        return ("<Round %d: %d runs, %d violations, %d clauses, "
                "%d fences inserted>" % (
                    self.index, self.executions, self.violations,
                    self.clauses, len(self.inserted)))


class SynthesisResult:
    """Outcome of a synthesis run."""

    def __init__(self, program: Module, outcome: SynthesisOutcome,
                 rounds: List[RoundReport],
                 placements: List[FencePlacement]) -> None:
        self.program = program
        self.outcome = outcome
        self.rounds = rounds
        self.placements = placements

    @property
    def total_executions(self) -> int:
        return sum(r.executions for r in self.rounds)

    @property
    def total_violations(self) -> int:
        return sum(r.violations for r in self.rounds)

    @property
    def fence_count(self) -> int:
        return len(synthesized_fences(self.program))

    @property
    def witnesses(self) -> List[Witness]:
        """Reproducible violating executions from every round."""
        return [w for r in self.rounds for w in r.witnesses]

    def fence_locations(self) -> List[str]:
        """Paper-style (method, line1:line2) strings, sorted."""
        return sorted("%s/%s" % (p.location(), p.kind.value)
                      for p in self.placements)

    def __repr__(self) -> str:
        return "<SynthesisResult %s: %d fences after %d rounds, %d runs>" % (
            self.outcome.value, self.fence_count, len(self.rounds),
            self.total_executions)


class SynthesisEngine:
    """Runs Algorithm 1 for one program/spec/model combination."""

    def __init__(self, config: SynthesisConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------

    def synthesize(self, program: Module, spec: Specification,
                   entries: Sequence[str] = ("main",),
                   operations: Sequence[str] = ()) -> SynthesisResult:
        """Infer fences for *program* against *spec*.

        The input module is cloned; the returned result holds the repaired
        program.  ``entries`` lists the client entry functions (executions
        rotate through them, broadening coverage); ``operations`` names the
        functions recorded in histories.
        """
        cfg = self.config
        module = program.clone()
        model = make_model(cfg.memory_model)
        rounds: List[RoundReport] = []
        placements: List[FencePlacement] = []
        exec_counter = 0

        for round_index in range(cfg.max_rounds):
            report = RoundReport(round_index)
            rounds.append(report)
            formula = RepairFormula()

            for _ in range(cfg.executions_per_round):
                entry = entries[exec_counter % len(entries)]
                seed = cfg.seed + exec_counter
                exec_counter += 1
                scheduler = FlushDelayScheduler(
                    seed=seed, flush_prob=cfg.flush_prob, por=cfg.por)
                result = run_execution(
                    module, model, scheduler, entry=entry,
                    operations=operations, max_steps=cfg.max_steps)
                report.executions += 1
                if not result.usable:
                    report.discarded += 1
                    continue
                message = spec.check(result)
                if message is None:
                    continue
                report.violations += 1
                if report.example_violation is None:
                    report.example_violation = message
                if len(report.witnesses) < 5:
                    report.witnesses.append(
                        Witness(entry, seed, cfg.flush_prob, message))
                if not formula.add_execution(result.predicates):
                    # avoid(p) is empty: no pending-store bypass occurred,
                    # so the predicate formalism offers no repair for this
                    # particular execution.
                    report.unfixable += 1
                    if cfg.abort_on_unfixable:
                        report.clauses = formula.num_clauses
                        return SynthesisResult(
                            module, SynthesisOutcome.CANNOT_FIX, rounds,
                            self._surviving(module, placements))

            report.clauses = formula.num_clauses
            report.distinct_predicates = formula.num_predicates

            if report.violations == 0:
                return SynthesisResult(
                    module, SynthesisOutcome.CLEAN, rounds,
                    self._surviving(module, placements))

            if formula.num_clauses == 0:
                # Every violation this round was unfixable: the property
                # fails independently of memory-model reordering (e.g. the
                # algorithm itself is not linearizable).
                return SynthesisResult(
                    module, SynthesisOutcome.CANNOT_FIX, rounds,
                    self._surviving(module, placements))

            repair = formula.minimal_repair()
            if repair is None:
                return SynthesisResult(
                    module, SynthesisOutcome.CANNOT_FIX, rounds,
                    self._surviving(module, placements))
            inserted = enforce(module, repair, merge=cfg.merge_fences)
            report.inserted = inserted
            placements.extend(inserted)

        return SynthesisResult(module, SynthesisOutcome.ROUND_LIMIT, rounds,
                               self._surviving(module, placements))

    # ------------------------------------------------------------------

    def test_program(self, program: Module, spec: Specification,
                     entries: Sequence[str] = ("main",),
                     operations: Sequence[str] = (),
                     executions: Optional[int] = None
                     ) -> Tuple[int, int, Optional[str]]:
        """Check-only mode: run executions without repairing.

        Returns ``(runs, violations, example_message)`` — used both to
        validate repaired programs and to test properties under SC (e.g.
        the paper's finding that Cilk's THE queue is not linearizable even
        without memory-model effects).
        """
        cfg = self.config
        module = program  # no mutation in check-only mode
        model = make_model(cfg.memory_model)
        runs = executions if executions is not None \
            else cfg.executions_per_round
        violations = 0
        example: Optional[str] = None
        for i in range(runs):
            entry = entries[i % len(entries)]
            scheduler = FlushDelayScheduler(
                seed=cfg.seed + i, flush_prob=cfg.flush_prob, por=cfg.por)
            result = run_execution(module, model, scheduler, entry=entry,
                                   operations=operations,
                                   max_steps=cfg.max_steps)
            if not result.usable:
                continue
            message = spec.check(result)
            if message is not None:
                violations += 1
                if example is None:
                    example = message
        return runs, violations, example

    @staticmethod
    def _surviving(module: Module,
                   placements: List[FencePlacement]) -> List[FencePlacement]:
        """Placements whose fence is still in the module (merge may have
        removed earlier-round fences)."""
        from .enforce import _fence_still_present

        return [placement for placement in placements
                if _fence_still_present(module, placement.fence_label)]
