"""Random client generation — exploring the paper's client dimension.

Section 6.4 of the paper stresses that the *client* is one of the four
evaluation dimensions: it must produce executions short enough to check
(witness search is exponential in history length) yet rich enough to
expose violations.  This module generates random-but-well-formed MiniC
clients for the container benchmarks, so the engine can be fuzzed across
many client shapes instead of the hand-written ones.

A generated client has the shape::

    int fuzz_client_k() {
      [init();]
      <pre-fork ops by main>
      int tid = fork(fuzz_worker_k);
      <concurrent ops by main>
      join(tid);
      <post-join ops by main>
      return 0;
    }

with a matching worker function.  Mutator arguments are globally unique
values (so duplicate returns are detectable); set keys draw from a small
domain (so operations actually collide).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .algorithms.base import AlgorithmBundle
from .ir.module import Module
from .minic.lower import compile_source


class OpShape:
    """How to emit one operation call.

    ``arg`` is "unique" (a globally unique value), "key" (drawn from a
    small domain) or None (no argument).
    """

    def __init__(self, name: str, arg: Optional[str] = None) -> None:
        self.name = name
        self.arg = arg


#: Operation shapes per algorithm family.
WSQ_SHAPES = [OpShape("put", "unique"), OpShape("take"), OpShape("steal")]
QUEUE_SHAPES = [OpShape("enqueue", "unique"), OpShape("dequeue")]
SET_SHAPES = [OpShape("add", "key"), OpShape("remove", "key"),
              OpShape("contains", "key")]

#: (shapes, init function, owner-only ops) per known bundle name.
FAMILIES = {
    "chase_lev": (WSQ_SHAPES, None, ("put", "take")),
    "cilk_the": (WSQ_SHAPES, None, ("put", "take")),
    "fifo_wsq": (WSQ_SHAPES, None, ("put",)),
    "lifo_wsq": (WSQ_SHAPES, None, ()),
    "anchor_wsq": (WSQ_SHAPES, None, ("put", "take")),
    "fifo_iwsq": (WSQ_SHAPES, None, ("put", "take")),
    "lifo_iwsq": (WSQ_SHAPES, None, ("put", "take")),
    "anchor_iwsq": (WSQ_SHAPES, None, ("put", "take")),
    "ms2_queue": (QUEUE_SHAPES, "qinit", ()),
    "msn_queue": (QUEUE_SHAPES, "qinit", ()),
    "lazy_list": (SET_SHAPES, "sinit", ()),
    "harris_set": (SET_SHAPES, "sinit", ()),
}


class GeneratedClients:
    """The output of :func:`generate_clients`."""

    def __init__(self, module: Module, entries: Tuple[str, ...],
                 source: str) -> None:
        self.module = module
        self.entries = entries
        self.source = source


def generate_clients(bundle: AlgorithmBundle, count: int = 4,
                     ops_per_side: int = 3, seed: int = 0,
                     key_domain: Sequence[int] = (3, 5, 7)
                     ) -> GeneratedClients:
    """Generate *count* random clients for *bundle* and compile them.

    ``ops_per_side`` bounds the operations per program segment (pre-fork,
    worker, concurrent, post-join), keeping histories checkable.  Raises
    ``ValueError`` for bundles with no registered family (the allocator's
    malloc/free protocol needs dataflow and is not generated).
    """
    family = FAMILIES.get(bundle.name)
    if family is None:
        raise ValueError("no client family registered for %r" % bundle.name)
    shapes, init, owner_only = family
    rng = random.Random(seed)
    value_counter = [100]

    def emit_op(shape: OpShape, indent: str) -> str:
        if shape.arg == "unique":
            value_counter[0] += 1
            return "%s%s(%d);" % (indent, shape.name, value_counter[0])
        if shape.arg == "key":
            return "%s%s(%d);" % (indent, shape.name,
                                  rng.choice(list(key_domain)))
        return "%s%s();" % (indent, shape.name)

    def emit_ops(allowed: List[OpShape], limit: int, indent: str) -> str:
        lines = []
        for _ in range(rng.randint(1, max(1, limit))):
            lines.append(emit_op(rng.choice(allowed), indent))
        return "\n".join(lines)

    thief_shapes = [s for s in shapes if s.name not in owner_only]
    pieces: List[str] = []
    entries: List[str] = []
    for k in range(count):
        worker_ops = emit_ops(thief_shapes or shapes, ops_per_side, "  ")
        pieces.append("void fuzz_worker_%d() {\n%s\n}" % (k, worker_ops))
        body: List[str] = []
        if init:
            body.append("  %s();" % init)
        if rng.random() < 0.7:
            body.append(emit_ops(shapes, ops_per_side, "  "))
        body.append("  int tid = fork(fuzz_worker_%d);" % k)
        if rng.random() < 0.9:
            body.append(emit_ops(shapes, ops_per_side, "  "))
        body.append("  join(tid);")
        if rng.random() < 0.4:
            body.append(emit_ops(shapes, ops_per_side, "  "))
        body.append("  return 0;")
        name = "fuzz_client_%d" % k
        entries.append(name)
        pieces.append("int %s() {\n%s\n}" % (name, "\n".join(body)))

    source = bundle.source + "\n\n// ---- generated clients ----\n" \
        + "\n\n".join(pieces)
    module = compile_source(source, bundle.name + "_fuzz")
    return GeneratedClients(module, tuple(entries), source)
