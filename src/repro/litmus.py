"""A catalog of classic litmus tests with exact per-model outcome sets.

Each :class:`LitmusTest` carries MiniC source whose thread return values
are the observed registers, plus the *exact* set of outcomes each memory
model admits (verified exhaustively in tests/test_litmus_catalog.py via
the schedule explorer).  The catalog doubles as executable documentation
of what SC, TSO and PSO each allow:

========  ===========================  ====  ====  ====
name      relaxation observed          SC    TSO   PSO
========  ===========================  ====  ====  ====
sb        store -> load reorder        no    yes   yes
mp        store -> store reorder       no    no    yes
lb        load -> store reorder        no    no    no
corr      same-location read reorder   no    no    no
sb_fenced sb with st-ld fences         no    no    no
mp_fenced mp with a st-st fence        no    no    no
========  ===========================  ====  ====  ====

(Store buffers never reorder load->load/load->store or break
per-location coherence, hence the three permanent "no" rows.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from .minic.lower import compile_source


class LitmusTest:
    """One litmus test: program + exact expected outcomes per model.

    Outcomes are tuples of every thread's return value in tid order
    (tid 0 is main).
    """

    def __init__(self, name: str, description: str, source: str,
                 expected: Dict[str, FrozenSet[Tuple[int, ...]]],
                 relaxed_outcome: Tuple[int, ...]) -> None:
        self.name = name
        self.description = description
        self.source = source
        self.expected = expected
        #: The outcome that distinguishes relaxed from SC behaviour.
        self.relaxed_outcome = relaxed_outcome

    def compile(self):
        return compile_source(self.source, "litmus_" + self.name)

    def models_allowing_relaxation(self):
        return sorted(model for model, outcomes in self.expected.items()
                      if self.relaxed_outcome in outcomes)

    def __repr__(self) -> str:
        return "<LitmusTest %s>" % self.name


def _outcomes(*tuples) -> FrozenSet[Tuple[int, ...]]:
    return frozenset(tuples)


_SB_SOURCE = """
int X; int Y;
int t1() { X = 1; int r = Y; return r; }
int main() {
  int t = fork(t1);
  Y = 1;
  int r = X;
  join(t);
  return r;
}
"""

_SB_FENCED_SOURCE = """
int X; int Y;
int t1() { X = 1; fence_sl(); int r = Y; return r; }
int main() {
  int t = fork(t1);
  Y = 1;
  fence_sl();
  int r = X;
  join(t);
  return r;
}
"""

_MP_SOURCE = """
int D; int F;
int reader() {
  if (F == 1) { return D; }
  return 9;
}
int main() {
  int t = fork(reader);
  D = 1; F = 1;
  join(t);
  return 0;
}
"""

_MP_FENCED_SOURCE = """
int D; int F;
int reader() {
  if (F == 1) { return D; }
  return 9;
}
int main() {
  int t = fork(reader);
  D = 1;
  fence_ss();
  F = 1;
  join(t);
  return 0;
}
"""

_LB_SOURCE = """
int X; int Y;
int t1() { int r = X; Y = 1; return r; }
int main() {
  int t = fork(t1);
  int r = Y;
  X = 1;
  join(t);
  return r;
}
"""

_CORR_SOURCE = """
int X;
int reader() {
  int a = X;
  int b = X;
  return a * 10 + b;      // 10 would mean X went backwards
}
int main() {
  int t = fork(reader);
  X = 1;
  join(t);
  return 0;
}
"""

_SB_ALL = _outcomes((0, 1), (1, 0), (1, 1))
_SB_RELAXED = _outcomes((0, 0), (0, 1), (1, 0), (1, 1))
_MP_SC = _outcomes((0, 1), (0, 9))
_MP_RELAXED = _outcomes((0, 0), (0, 1), (0, 9))
_LB_SC = _outcomes((0, 0), (0, 1), (1, 0))
_CORR_OK = _outcomes((0, 0), (0, 1), (0, 11))

#: The catalog, keyed by short name.
LITMUS_TESTS: Dict[str, LitmusTest] = {
    "sb": LitmusTest(
        "sb",
        "Store buffering (Dekker): both threads store, then load the "
        "other's variable; (0, 0) needs a store->load reorder.",
        _SB_SOURCE,
        {"sc": _SB_ALL, "tso": _SB_RELAXED, "pso": _SB_RELAXED},
        relaxed_outcome=(0, 0)),
    "sb_fenced": LitmusTest(
        "sb_fenced",
        "SB with store-load fences: SC behaviour restored everywhere.",
        _SB_FENCED_SOURCE,
        {"sc": _SB_ALL, "tso": _SB_ALL, "pso": _SB_ALL},
        relaxed_outcome=(0, 0)),
    "mp": LitmusTest(
        "mp",
        "Message passing: data then flag; reading the flag but stale "
        "data ((0, 0)) needs a store->store reorder.",
        _MP_SOURCE,
        {"sc": _MP_SC, "tso": _MP_SC, "pso": _MP_RELAXED},
        relaxed_outcome=(0, 0)),
    "mp_fenced": LitmusTest(
        "mp_fenced",
        "MP with a store-store fence between data and flag.",
        _MP_FENCED_SOURCE,
        {"sc": _MP_SC, "tso": _MP_SC, "pso": _MP_SC},
        relaxed_outcome=(0, 0)),
    "lb": LitmusTest(
        "lb",
        "Load buffering: load then store in each thread; (1, 1) needs a "
        "load->store reorder, which store buffers never produce.",
        _LB_SOURCE,
        {"sc": _LB_SC, "tso": _LB_SC, "pso": _LB_SC},
        relaxed_outcome=(1, 1)),
    "corr": LitmusTest(
        "corr",
        "Coherence of read-read: two reads of one location must not go "
        "backwards (outcome 10), on any model.",
        _CORR_SOURCE,
        {"sc": _CORR_OK, "tso": _CORR_OK, "pso": _CORR_OK},
        relaxed_outcome=(0, 10)),
}
