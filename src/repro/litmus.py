"""A catalog of classic litmus tests with exact per-model outcome sets.

Each :class:`LitmusTest` carries MiniC source whose thread return values
are the observed registers, plus the *exact* set of outcomes each memory
model admits (verified exhaustively in tests/test_litmus_catalog.py via
the schedule explorer).  The catalog doubles as executable documentation
of what SC, TSO and PSO each allow:

============  ===========================  ====  ====  ====
name          relaxation observed          SC    TSO   PSO
============  ===========================  ====  ====  ====
sb            store -> load reorder        no    yes   yes
mp            store -> store reorder       no    no    yes
lb            load -> store reorder        no    no    no
corr          same-location read reorder   no    no    no
coww          same-location write order    no    no    no
corw          read-own-write forwarding    no    no    no
2+2w          store -> store reorder (x2)  no    no    yes
sb_fenced     sb with st-ld fences         no    no    no
sb_one_fence  sb fenced in one thread      no    yes   yes
mp_fenced     mp with a st-st fence        no    no    no
============  ===========================  ====  ====  ====

(Store buffers never reorder load->load/load->store or break
per-location coherence, hence the permanent "no" rows.  The
sb_one_fence row is the cautionary one: fencing only one side of a
Dekker race fixes nothing — both store->load pairs must be ordered.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from .minic.lower import compile_source


def thread_results(vm) -> Tuple[int, ...]:
    """The canonical litmus outcome: thread return values in tid order."""
    return tuple(vm.threads[tid].result for tid in sorted(vm.threads))


class LitmusTest:
    """One litmus test: program + exact expected outcomes per model.

    Outcomes are tuples of every thread's return value in tid order
    (tid 0 is main).
    """

    def __init__(self, name: str, description: str, source: str,
                 expected: Dict[str, FrozenSet[Tuple[int, ...]]],
                 relaxed_outcome: Tuple[int, ...]) -> None:
        self.name = name
        self.description = description
        self.source = source
        self.expected = expected
        #: The outcome that distinguishes relaxed from SC behaviour.
        self.relaxed_outcome = relaxed_outcome

    def compile(self):
        return compile_source(self.source, "litmus_" + self.name)

    def explore(self, model: str, max_paths: int = 60_000,
                reduction: str = "sleep+cache",
                workers=None):
        """Exhaustively enumerate this test's outcomes under *model*."""
        from .sched.explorer import explore
        return explore(self.compile(), model, outcome_fn=thread_results,
                       max_paths=max_paths, reduction=reduction,
                       workers=workers)

    def models_allowing_relaxation(self):
        return sorted(model for model, outcomes in self.expected.items()
                      if self.relaxed_outcome in outcomes)

    def __repr__(self) -> str:
        return "<LitmusTest %s>" % self.name


def _outcomes(*tuples) -> FrozenSet[Tuple[int, ...]]:
    return frozenset(tuples)


_SB_SOURCE = """
int X; int Y;
int t1() { X = 1; int r = Y; return r; }
int main() {
  int t = fork(t1);
  Y = 1;
  int r = X;
  join(t);
  return r;
}
"""

_SB_FENCED_SOURCE = """
int X; int Y;
int t1() { X = 1; fence_sl(); int r = Y; return r; }
int main() {
  int t = fork(t1);
  Y = 1;
  fence_sl();
  int r = X;
  join(t);
  return r;
}
"""

_MP_SOURCE = """
int D; int F;
int reader() {
  if (F == 1) { return D; }
  return 9;
}
int main() {
  int t = fork(reader);
  D = 1; F = 1;
  join(t);
  return 0;
}
"""

_MP_FENCED_SOURCE = """
int D; int F;
int reader() {
  if (F == 1) { return D; }
  return 9;
}
int main() {
  int t = fork(reader);
  D = 1;
  fence_ss();
  F = 1;
  join(t);
  return 0;
}
"""

_LB_SOURCE = """
int X; int Y;
int t1() { int r = X; Y = 1; return r; }
int main() {
  int t = fork(t1);
  int r = Y;
  X = 1;
  join(t);
  return r;
}
"""

_CORR_SOURCE = """
int X;
int reader() {
  int a = X;
  int b = X;
  return a * 10 + b;      // 10 would mean X went backwards
}
int main() {
  int t = fork(reader);
  X = 1;
  join(t);
  return 0;
}
"""

_SB_ONE_FENCE_SOURCE = """
int X; int Y;
int t1() { X = 1; fence_sl(); int r = Y; return r; }
int main() {
  int t = fork(t1);
  Y = 1;
  int r = X;
  join(t);
  return r;
}
"""

_TWO_PLUS_TWO_W_SOURCE = """
int X; int Y;
int t1() { X = 1; Y = 2; fence(); return 0; }
int main() {
  int t = fork(t1);
  Y = 1;
  X = 2;
  fence();
  join(t);
  int r0 = X;
  int r1 = Y;
  return r0 * 10 + r1;
}
"""

_COWW_SOURCE = """
int X;
int writer() { X = 1; X = 2; fence(); return 0; }
int main() {
  int t = fork(writer);
  int a = X;
  join(t);
  int b = X;
  return a * 10 + b;
}
"""

_CORW_SOURCE = """
int X;
int t1() { X = 1; return 0; }
int main() {
  int t = fork(t1);
  int r0 = X;
  X = 1;
  int r1 = X;
  join(t);
  return r0 * 10 + r1;
}
"""

_SB_ALL = _outcomes((0, 1), (1, 0), (1, 1))
_SB_RELAXED = _outcomes((0, 0), (0, 1), (1, 0), (1, 1))
_MP_SC = _outcomes((0, 1), (0, 9))
_MP_RELAXED = _outcomes((0, 0), (0, 1), (0, 9))
_LB_SC = _outcomes((0, 0), (0, 1), (1, 0))
_CORR_OK = _outcomes((0, 0), (0, 1), (0, 11))
#: 2+2w: both final values 1 means both threads' first store committed
#: last — a store->store reorder on *each* side, so PSO-only.  (Both
#: threads fence before main's post-join reads, so the finals are
#: committed values, never buffered ones.)
_2P2W_SC = _outcomes((12, 0), (21, 0), (22, 0))
_2P2W_RELAXED = _2P2W_SC | _outcomes((11, 0))
#: coww: the racing read a sees 0, 1 or 2; the post-join read b always
#: sees the final 2 — writes to one location commit in program order.
_COWW_OK = _outcomes((2, 0), (12, 0), (22, 0))
#: corw: the read after main's own ``X = 1`` must see it (forwarding),
#: so r1 is always 1; only the earlier racing read r0 varies.
_CORW_OK = _outcomes((1, 0), (11, 0))

#: The catalog, keyed by short name.
LITMUS_TESTS: Dict[str, LitmusTest] = {
    "sb": LitmusTest(
        "sb",
        "Store buffering (Dekker): both threads store, then load the "
        "other's variable; (0, 0) needs a store->load reorder.",
        _SB_SOURCE,
        {"sc": _SB_ALL, "tso": _SB_RELAXED, "pso": _SB_RELAXED},
        relaxed_outcome=(0, 0)),
    "sb_fenced": LitmusTest(
        "sb_fenced",
        "SB with store-load fences: SC behaviour restored everywhere.",
        _SB_FENCED_SOURCE,
        {"sc": _SB_ALL, "tso": _SB_ALL, "pso": _SB_ALL},
        relaxed_outcome=(0, 0)),
    "mp": LitmusTest(
        "mp",
        "Message passing: data then flag; reading the flag but stale "
        "data ((0, 0)) needs a store->store reorder.",
        _MP_SOURCE,
        {"sc": _MP_SC, "tso": _MP_SC, "pso": _MP_RELAXED},
        relaxed_outcome=(0, 0)),
    "mp_fenced": LitmusTest(
        "mp_fenced",
        "MP with a store-store fence between data and flag.",
        _MP_FENCED_SOURCE,
        {"sc": _MP_SC, "tso": _MP_SC, "pso": _MP_SC},
        relaxed_outcome=(0, 0)),
    "lb": LitmusTest(
        "lb",
        "Load buffering: load then store in each thread; (1, 1) needs a "
        "load->store reorder, which store buffers never produce.",
        _LB_SOURCE,
        {"sc": _LB_SC, "tso": _LB_SC, "pso": _LB_SC},
        relaxed_outcome=(1, 1)),
    "corr": LitmusTest(
        "corr",
        "Coherence of read-read: two reads of one location must not go "
        "backwards (outcome 10), on any model.",
        _CORR_SOURCE,
        {"sc": _CORR_OK, "tso": _CORR_OK, "pso": _CORR_OK},
        relaxed_outcome=(0, 10)),
    "coww": LitmusTest(
        "coww",
        "Coherence of write-write: one thread stores 1 then 2 to X; the "
        "final value is 2 on every model — same-location stores never "
        "reorder (a final 1 would show as outcome 1/11/21).",
        _COWW_SOURCE,
        {"sc": _COWW_OK, "tso": _COWW_OK, "pso": _COWW_OK},
        relaxed_outcome=(21, 0)),
    "corw": LitmusTest(
        "corw",
        "Coherence of read-own-write: a load after the thread's own "
        "store to X must see it via buffer forwarding (r1 is always 1; "
        "outcome 0/10 would mean the store was invisible to its own "
        "thread).",
        _CORW_SOURCE,
        {"sc": _CORW_OK, "tso": _CORW_OK, "pso": _CORW_OK},
        relaxed_outcome=(0, 0)),
    "2+2w": LitmusTest(
        "2+2w",
        "Two threads each store to both variables in opposite orders "
        "(X=1;Y=2 vs Y=1;X=2); both finals 1 (outcome 11) needs a "
        "store->store reorder in each thread, so PSO only.",
        _TWO_PLUS_TWO_W_SOURCE,
        {"sc": _2P2W_SC, "tso": _2P2W_SC, "pso": _2P2W_RELAXED},
        relaxed_outcome=(11, 0)),
    "sb_one_fence": LitmusTest(
        "sb_one_fence",
        "SB with a store-load fence in only one thread: the unfenced "
        "side can still defer its store past its load, so (0, 0) "
        "survives under TSO and PSO — half a fix is no fix.",
        _SB_ONE_FENCE_SOURCE,
        {"sc": _SB_ALL, "tso": _SB_RELAXED, "pso": _SB_RELAXED},
        relaxed_outcome=(0, 0)),
}
