"""MiniC abstract syntax tree.

Plain node classes with source-line tags.  The parser builds these; the
semantic pass and lowering consume them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class Node:
    """Base AST node carrying its source line."""

    __slots__ = ("line",)

    def __init__(self, line: int) -> None:
        self.line = line


# ----------------------------------------------------------------------
# Types as written in source

class TypeExpr(Node):
    """``int``/``void``/``struct S`` with ``stars`` levels of pointer."""

    __slots__ = ("base", "struct_name", "stars")

    def __init__(self, line: int, base: str,
                 struct_name: Optional[str] = None, stars: int = 0) -> None:
        super().__init__(line)
        self.base = base                  # 'int' | 'void' | 'struct'
        self.struct_name = struct_name
        self.stars = stars

    def __repr__(self) -> str:
        name = "struct %s" % self.struct_name if self.base == "struct" \
            else self.base
        return name + "*" * self.stars


# ----------------------------------------------------------------------
# Declarations

class Program(Node):
    __slots__ = ("decls",)

    def __init__(self, decls: List["Node"]) -> None:
        super().__init__(1)
        self.decls = decls


class StructDecl(Node):
    __slots__ = ("name", "fields")

    def __init__(self, line: int, name: str,
                 fields: List[Tuple[TypeExpr, str]]) -> None:
        super().__init__(line)
        self.name = name
        self.fields = fields


class ConstDecl(Node):
    __slots__ = ("name", "value")

    def __init__(self, line: int, name: str, value: "Expr") -> None:
        super().__init__(line)
        self.name = name
        self.value = value


class GlobalDecl(Node):
    __slots__ = ("type_expr", "name", "array_len", "init")

    def __init__(self, line: int, type_expr: TypeExpr, name: str,
                 array_len: Optional["Expr"] = None,
                 init: Optional["Expr"] = None) -> None:
        super().__init__(line)
        self.type_expr = type_expr
        self.name = name
        self.array_len = array_len
        self.init = init


class FuncDecl(Node):
    __slots__ = ("ret_type", "name", "params", "body")

    def __init__(self, line: int, ret_type: TypeExpr, name: str,
                 params: List[Tuple[TypeExpr, str]], body: "Block") -> None:
        super().__init__(line)
        self.ret_type = ret_type
        self.name = name
        self.params = params
        self.body = body


# ----------------------------------------------------------------------
# Statements

class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, line: int, stmts: List[Stmt]) -> None:
        super().__init__(line)
        self.stmts = stmts


class VarDecl(Stmt):
    __slots__ = ("type_expr", "name", "init")

    def __init__(self, line: int, type_expr: TypeExpr, name: str,
                 init: Optional["Expr"]) -> None:
        super().__init__(line)
        self.type_expr = type_expr
        self.name = name
        self.init = init


class If(Stmt):
    __slots__ = ("cond", "then", "els")

    def __init__(self, line: int, cond: "Expr", then: Stmt,
                 els: Optional[Stmt]) -> None:
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.els = els


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, line: int, cond: "Expr", body: Stmt) -> None:
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, line: int, init: Optional[Stmt],
                 cond: Optional["Expr"], step: Optional["Expr"],
                 body: Stmt) -> None:
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, line: int, value: Optional["Expr"]) -> None:
        super().__init__(line)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, line: int, expr: "Expr") -> None:
        super().__init__(line)
        self.expr = expr


class AssertStmt(Stmt):
    __slots__ = ("cond",)

    def __init__(self, line: int, cond: "Expr") -> None:
        super().__init__(line)
        self.cond = cond


# ----------------------------------------------------------------------
# Expressions

class Expr(Node):
    __slots__ = ()


class Num(Expr):
    __slots__ = ("value",)

    def __init__(self, line: int, value: int) -> None:
        super().__init__(line)
        self.value = value


class Ident(Expr):
    __slots__ = ("name",)

    def __init__(self, line: int, name: str) -> None:
        super().__init__(line)
        self.name = name


class Unary(Expr):
    """op in {'-', '!', '~'}."""

    __slots__ = ("op", "operand")

    def __init__(self, line: int, op: str, operand: Expr) -> None:
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, line: int, op: str, left: Expr, right: Expr) -> None:
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Ternary(Expr):
    __slots__ = ("cond", "then", "els")

    def __init__(self, line: int, cond: Expr, then: Expr, els: Expr) -> None:
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.els = els


class Assign(Expr):
    __slots__ = ("target", "value")

    def __init__(self, line: int, target: Expr, value: Expr) -> None:
        super().__init__(line)
        self.target = target
        self.value = value


class Call(Expr):
    __slots__ = ("name", "args")

    def __init__(self, line: int, name: str, args: List[Expr]) -> None:
        super().__init__(line)
        self.name = name
        self.args = args


class SizeOf(Expr):
    __slots__ = ("type_expr",)

    def __init__(self, line: int, type_expr: TypeExpr) -> None:
        super().__init__(line)
        self.type_expr = type_expr


class Index(Expr):
    __slots__ = ("base", "index")

    def __init__(self, line: int, base: Expr, index: Expr) -> None:
        super().__init__(line)
        self.base = base
        self.index = index


class Field(Expr):
    """``base.name`` (arrow=False) or ``base->name`` (arrow=True)."""

    __slots__ = ("base", "name", "arrow")

    def __init__(self, line: int, base: Expr, name: str, arrow: bool) -> None:
        super().__init__(line)
        self.base = base
        self.name = name
        self.arrow = arrow


class Deref(Expr):
    __slots__ = ("operand",)

    def __init__(self, line: int, operand: Expr) -> None:
        super().__init__(line)
        self.operand = operand


class AddrOf(Expr):
    __slots__ = ("operand",)

    def __init__(self, line: int, operand: Expr) -> None:
        super().__init__(line)
        self.operand = operand
