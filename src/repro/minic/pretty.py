"""MiniC pretty-printer (unparser) and structural AST comparison.

:func:`pretty` renders an AST back to compilable MiniC source;
:func:`ast_equal` compares two ASTs structurally (ignoring line numbers).
Together they give the round-trip property ``parse(pretty(parse(s)))``
structurally equal to ``parse(s)``, used heavily by the test suite.
"""

from __future__ import annotations

from typing import List

from . import ast

_INDENT = "  "


def pretty(program: ast.Program) -> str:
    """Render a parsed program back to MiniC source text."""
    chunks: List[str] = []
    for decl in program.decls:
        chunks.append(_decl(decl))
    return "\n\n".join(chunks) + "\n"


# ----------------------------------------------------------------------
# Declarations

def _decl(node: ast.Node) -> str:
    if isinstance(node, ast.StructDecl):
        fields = "".join("%s%s %s;\n" % (_INDENT, _type(t), n)
                         for (t, n) in node.fields)
        return "struct %s {\n%s};" % (node.name, fields)
    if isinstance(node, ast.ConstDecl):
        return "const %s = %s;" % (node.name, _expr(node.value))
    if isinstance(node, ast.GlobalDecl):
        text = "%s %s" % (_type(node.type_expr), node.name)
        if node.array_len is not None:
            text += "[%s]" % _expr(node.array_len)
        if node.init is not None:
            text += " = %s" % _expr(node.init)
        return text + ";"
    if isinstance(node, ast.FuncDecl):
        params = ", ".join("%s %s" % (_type(t), n)
                           for (t, n) in node.params)
        return "%s %s(%s) %s" % (_type(node.ret_type), node.name, params,
                                 _block(node.body, 0))
    raise TypeError("unknown declaration %r" % (node,))


def _type(node: ast.TypeExpr) -> str:
    base = "struct %s" % node.struct_name if node.base == "struct" \
        else node.base
    return base + "*" * node.stars


# ----------------------------------------------------------------------
# Statements

def _block(node: ast.Block, depth: int) -> str:
    inner = "".join(_INDENT * (depth + 1) + _stmt(s, depth + 1) + "\n"
                    for s in node.stmts)
    return "{\n%s%s}" % (inner, _INDENT * depth)


def _stmt(node: ast.Stmt, depth: int) -> str:
    if isinstance(node, ast.Block):
        return _block(node, depth)
    if isinstance(node, ast.VarDecl):
        text = "%s %s" % (_type(node.type_expr), node.name)
        if node.init is not None:
            text += " = %s" % _expr(node.init)
        return text + ";"
    if isinstance(node, ast.If):
        text = "if (%s) %s" % (_expr(node.cond), _stmt(node.then, depth))
        if node.els is not None:
            text += " else %s" % _stmt(node.els, depth)
        return text
    if isinstance(node, ast.While):
        return "while (%s) %s" % (_expr(node.cond), _stmt(node.body, depth))
    if isinstance(node, ast.For):
        init = _stmt(node.init, depth) if node.init is not None else ";"
        cond = _expr(node.cond) if node.cond is not None else ""
        step = _expr(node.step) if node.step is not None else ""
        return "for (%s %s; %s) %s" % (init, cond, step,
                                       _stmt(node.body, depth))
    if isinstance(node, ast.Return):
        if node.value is None:
            return "return;"
        return "return %s;" % _expr(node.value)
    if isinstance(node, ast.Break):
        return "break;"
    if isinstance(node, ast.Continue):
        return "continue;"
    if isinstance(node, ast.AssertStmt):
        return "assert(%s);" % _expr(node.cond)
    if isinstance(node, ast.ExprStmt):
        return "%s;" % _expr(node.expr)
    raise TypeError("unknown statement %r" % (node,))


# ----------------------------------------------------------------------
# Expressions (fully parenthesised: simple and always correct)

def _expr(node: ast.Expr) -> str:
    if isinstance(node, ast.Num):
        return str(node.value)
    if isinstance(node, ast.Ident):
        return node.name
    if isinstance(node, ast.Unary):
        return "(%s%s)" % (node.op, _expr(node.operand))
    if isinstance(node, ast.Binary):
        return "(%s %s %s)" % (_expr(node.left), node.op, _expr(node.right))
    if isinstance(node, ast.Ternary):
        return "(%s ? %s : %s)" % (_expr(node.cond), _expr(node.then),
                                   _expr(node.els))
    if isinstance(node, ast.Assign):
        # Parenthesised so a nested assignment, e.g. (a = b) + 1,
        # round-trips with the right structure.
        return "(%s = %s)" % (_expr(node.target), _expr(node.value))
    if isinstance(node, ast.Call):
        return "%s(%s)" % (node.name,
                           ", ".join(_expr(a) for a in node.args))
    if isinstance(node, ast.SizeOf):
        return "sizeof(%s)" % _type(node.type_expr)
    if isinstance(node, ast.Index):
        return "%s[%s]" % (_expr(node.base), _expr(node.index))
    if isinstance(node, ast.Field):
        sep = "->" if node.arrow else "."
        return "%s%s%s" % (_expr(node.base), sep, node.name)
    if isinstance(node, ast.Deref):
        return "(*%s)" % _expr(node.operand)
    if isinstance(node, ast.AddrOf):
        return "(&%s)" % _expr(node.operand)
    raise TypeError("unknown expression %r" % (node,))


# ----------------------------------------------------------------------
# Structural comparison

def ast_equal(a: ast.Node, b: ast.Node) -> bool:
    """Structural equality of two AST nodes, ignoring source lines."""
    if type(a) is not type(b):
        return False
    for slot in _all_slots(a):
        if slot == "line":
            continue
        va = getattr(a, slot)
        vb = getattr(b, slot)
        if not _value_equal(va, vb):
            return False
    return True


def _all_slots(node: ast.Node):
    slots = []
    for klass in type(node).__mro__:
        slots.extend(getattr(klass, "__slots__", ()))
    return slots


def _value_equal(va, vb) -> bool:
    if isinstance(va, ast.Node):
        return isinstance(vb, ast.Node) and ast_equal(va, vb)
    if isinstance(va, (list, tuple)):
        if not isinstance(vb, (list, tuple)) or len(va) != len(vb):
            return False
        return all(_value_equal(xa, xb) for xa, xb in zip(va, vb))
    return va == vb
