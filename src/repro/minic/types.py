"""MiniC semantic types.

Word-granular layout: ``int`` and every pointer occupy one shared-memory
cell; structs occupy consecutive cells (one per scalar/pointer field);
global arrays occupy ``count * elem.size`` cells.  ``sizeof`` is measured
in cells.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Type:
    """Base class of MiniC semantic types."""

    size = 1

    def is_pointer(self) -> bool:
        return False

    def is_arithmetic(self) -> bool:
        """Usable in arithmetic/conditions (ints and pointers both are —
        MiniC is weakly typed like the C the paper's tool consumes)."""
        return True


class IntType(Type):
    size = 1

    def __repr__(self) -> str:
        return "int"


class VoidType(Type):
    size = 0

    def is_arithmetic(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "void"


class PointerType(Type):
    size = 1

    def __init__(self, pointee: Type) -> None:
        self.pointee = pointee

    def is_pointer(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "%r*" % (self.pointee,)


class StructField:
    __slots__ = ("name", "type", "offset")

    def __init__(self, name: str, type_: Type, offset: int) -> None:
        self.name = name
        self.type = type_
        self.offset = offset


class StructType(Type):
    """A named struct; fields are laid out at consecutive cell offsets."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.fields: Dict[str, StructField] = {}
        self.size = 0
        self.complete = False

    def add_field(self, name: str, type_: Type) -> None:
        if name in self.fields:
            raise ValueError("duplicate field %r in struct %s"
                             % (name, self.name))
        self.fields[name] = StructField(name, type_, self.size)
        self.size += type_.size

    def field(self, name: str) -> Optional[StructField]:
        return self.fields.get(name)

    def is_arithmetic(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "struct %s" % self.name


class ArrayType(Type):
    """A global array (arrays exist only at module scope in MiniC)."""

    def __init__(self, elem: Type, count: int) -> None:
        self.elem = elem
        self.count = count
        self.size = elem.size * count

    def is_arithmetic(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "%r[%d]" % (self.elem, self.count)


class FuncSig:
    """A function signature: return type + parameter types."""

    def __init__(self, name: str, ret: Type,
                 params: List[Tuple[str, Type]]) -> None:
        self.name = name
        self.ret = ret
        self.params = params

    def __repr__(self) -> str:
        return "%r %s(%s)" % (
            self.ret, self.name, ", ".join(repr(t) for _n, t in self.params))


#: Shared singletons.
INT = IntType()
VOID = VoidType()
