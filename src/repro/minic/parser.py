"""MiniC recursive-descent parser.

Produces the AST of :mod:`repro.minic.ast`.  Compound assignments
(``+=`` etc.) are desugared at parse time; ``++``/``--`` are rejected with
a helpful message (MiniC keeps side effects explicit).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .lexer import Token, tokenize


class ParseError(Exception):
    """Raised on syntax errors, with the offending line."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__("line %d: %s" % (line, message))
        self.line = line


_COMPOUND_ASSIGN = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

#: Binary operator precedence tiers, loosest first.
_BINARY_TIERS = [
    ["||"], ["&&"], ["|"], ["^"], ["&"],
    ["==", "!="], ["<", "<=", ">", ">="],
    ["<<", ">>"], ["+", "-"], ["*", "/", "%"],
]


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.cur
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.at(kind, text):
            want = text if text is not None else kind
            raise ParseError("expected %r, found %r" % (want, self.cur.text),
                             self.cur.line)
        return self.advance()

    # ------------------------------------------------------------------
    # Program structure

    def parse_program(self) -> ast.Program:
        decls: List[ast.Node] = []
        while not self.at("eof"):
            decls.append(self._declaration())
        return ast.Program(decls)

    def _declaration(self) -> ast.Node:
        if self.at("kw", "const"):
            return self._const_decl()
        if self.at("kw", "struct") and self.peek(2).text == "{":
            return self._struct_decl()
        return self._global_or_func()

    def _const_decl(self) -> ast.ConstDecl:
        line = self.expect("kw", "const").line
        name = self.expect("ident").text
        self.expect("op", "=")
        value = self._expression()
        self.expect("op", ";")
        return ast.ConstDecl(line, name, value)

    def _struct_decl(self) -> ast.StructDecl:
        line = self.expect("kw", "struct").line
        name = self.expect("ident").text
        self.expect("op", "{")
        fields: List[Tuple[ast.TypeExpr, str]] = []
        while not self.accept("op", "}"):
            ftype = self._type_expr()
            fname = self.expect("ident").text
            self.expect("op", ";")
            fields.append((ftype, fname))
        self.expect("op", ";")
        return ast.StructDecl(line, name, fields)

    def _global_or_func(self) -> ast.Node:
        type_expr = self._type_expr()
        name_tok = self.expect("ident")
        if self.at("op", "("):
            return self._func_decl(type_expr, name_tok)
        return self._global_decl(type_expr, name_tok)

    def _func_decl(self, ret_type: ast.TypeExpr,
                   name_tok: Token) -> ast.FuncDecl:
        self.expect("op", "(")
        params: List[Tuple[ast.TypeExpr, str]] = []
        if not self.at("op", ")"):
            if self.accept("kw", "void") and self.at("op", ")"):
                pass  # f(void)
            else:
                if self.tokens[self.pos - 1].text == "void":
                    self.pos -= 1  # it was the start of 'void*' etc.
                while True:
                    ptype = self._type_expr()
                    pname = self.expect("ident").text
                    params.append((ptype, pname))
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        body = self._block()
        return ast.FuncDecl(name_tok.line, ret_type, name_tok.text,
                            params, body)

    def _global_decl(self, type_expr: ast.TypeExpr,
                     name_tok: Token) -> ast.GlobalDecl:
        array_len = None
        init = None
        if self.accept("op", "["):
            array_len = self._expression()
            self.expect("op", "]")
        if self.accept("op", "="):
            init = self._expression()
        self.expect("op", ";")
        return ast.GlobalDecl(name_tok.line, type_expr, name_tok.text,
                              array_len, init)

    # ------------------------------------------------------------------
    # Types

    def _looks_like_type(self) -> bool:
        return (self.at("kw", "int") or self.at("kw", "void")
                or self.at("kw", "struct"))

    def _type_expr(self) -> ast.TypeExpr:
        tok = self.cur
        if self.accept("kw", "int"):
            node = ast.TypeExpr(tok.line, "int")
        elif self.accept("kw", "void"):
            node = ast.TypeExpr(tok.line, "void")
        elif self.accept("kw", "struct"):
            name = self.expect("ident").text
            node = ast.TypeExpr(tok.line, "struct", struct_name=name)
        else:
            raise ParseError("expected a type, found %r" % tok.text, tok.line)
        while self.accept("op", "*"):
            node.stars += 1
        return node

    # ------------------------------------------------------------------
    # Statements

    def _block(self) -> ast.Block:
        open_tok = self.expect("op", "{")
        stmts: List[ast.Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self._statement())
        return ast.Block(open_tok.line, stmts)

    def _statement(self) -> ast.Stmt:
        tok = self.cur
        if self.at("op", "{"):
            return self._block()
        if self._looks_like_type():
            return self._var_decl()
        if self.accept("kw", "if"):
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            then = self._statement()
            els = self._statement() if self.accept("kw", "else") else None
            return ast.If(tok.line, cond, then, els)
        if self.accept("kw", "while"):
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            body = self._statement()
            return ast.While(tok.line, cond, body)
        if self.accept("kw", "for"):
            return self._for_stmt(tok.line)
        if self.accept("kw", "return"):
            value = None if self.at("op", ";") else self._expression()
            self.expect("op", ";")
            return ast.Return(tok.line, value)
        if self.accept("kw", "break"):
            self.expect("op", ";")
            return ast.Break(tok.line)
        if self.accept("kw", "continue"):
            self.expect("op", ";")
            return ast.Continue(tok.line)
        if self.accept("kw", "assert"):
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            self.expect("op", ";")
            return ast.AssertStmt(tok.line, cond)
        expr = self._expression()
        self.expect("op", ";")
        return ast.ExprStmt(tok.line, expr)

    def _var_decl(self) -> ast.VarDecl:
        type_expr = self._type_expr()
        name_tok = self.expect("ident")
        init = self._expression() if self.accept("op", "=") else None
        self.expect("op", ";")
        return ast.VarDecl(name_tok.line, type_expr, name_tok.text, init)

    def _for_stmt(self, line: int) -> ast.For:
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.at("op", ";"):
            if self._looks_like_type():
                init = self._var_decl()  # consumes the ';'
            else:
                expr = self._expression()
                self.expect("op", ";")
                init = ast.ExprStmt(line, expr)
        else:
            self.expect("op", ";")
        cond = None if self.at("op", ";") else self._expression()
        self.expect("op", ";")
        step = None if self.at("op", ")") else self._expression()
        self.expect("op", ")")
        body = self._statement()
        return ast.For(line, init, cond, step, body)

    # ------------------------------------------------------------------
    # Expressions

    def _expression(self) -> ast.Expr:
        return self._assignment()

    def _assignment(self) -> ast.Expr:
        left = self._ternary()
        tok = self.cur
        if self.accept("op", "="):
            value = self._assignment()
            return ast.Assign(tok.line, left, value)
        if tok.kind == "op" and tok.text in _COMPOUND_ASSIGN:
            self.advance()
            value = self._assignment()
            op = _COMPOUND_ASSIGN[tok.text]
            return ast.Assign(tok.line, left,
                              ast.Binary(tok.line, op, left, value))
        return left

    def _ternary(self) -> ast.Expr:
        cond = self._binary(0)
        if self.at("op", "?"):
            line = self.advance().line
            then = self._assignment()
            self.expect("op", ":")
            els = self._assignment()
            return ast.Ternary(line, cond, then, els)
        return cond

    def _binary(self, tier: int) -> ast.Expr:
        if tier >= len(_BINARY_TIERS):
            return self._unary()
        left = self._binary(tier + 1)
        ops = _BINARY_TIERS[tier]
        while self.cur.kind == "op" and self.cur.text in ops:
            tok = self.advance()
            right = self._binary(tier + 1)
            left = ast.Binary(tok.line, tok.text, left, right)
        return left

    def _unary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == "op" and tok.text in ("++", "--"):
            raise ParseError(
                "%s is not supported; write x = x %s 1 instead"
                % (tok.text, tok.text[0]), tok.line)
        if self.accept("op", "-"):
            return ast.Unary(tok.line, "-", self._unary())
        if self.accept("op", "!"):
            return ast.Unary(tok.line, "!", self._unary())
        if self.accept("op", "~"):
            return ast.Unary(tok.line, "~", self._unary())
        if self.accept("op", "*"):
            return ast.Deref(tok.line, self._unary())
        if self.accept("op", "&"):
            return ast.AddrOf(tok.line, self._unary())
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            tok = self.cur
            if self.accept("op", "["):
                index = self._expression()
                self.expect("op", "]")
                expr = ast.Index(tok.line, expr, index)
            elif self.accept("op", "->"):
                name = self.expect("ident").text
                expr = ast.Field(tok.line, expr, name, arrow=True)
            elif self.accept("op", "."):
                name = self.expect("ident").text
                expr = ast.Field(tok.line, expr, name, arrow=False)
            elif tok.kind == "op" and tok.text in ("++", "--"):
                raise ParseError(
                    "%s is not supported; write x = x %s 1 instead"
                    % (tok.text, tok.text[0]), tok.line)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == "num":
            self.advance()
            return ast.Num(tok.line, int(tok.text, 0))
        if self.accept("kw", "sizeof"):
            self.expect("op", "(")
            type_expr = self._type_expr()
            self.expect("op", ")")
            return ast.SizeOf(tok.line, type_expr)
        if tok.kind == "ident":
            self.advance()
            if self.at("op", "("):
                return self._call(tok)
            return ast.Ident(tok.line, tok.text)
        if self.accept("op", "("):
            expr = self._expression()
            self.expect("op", ")")
            return expr
        raise ParseError("unexpected token %r" % tok.text, tok.line)

    def _call(self, name_tok: Token) -> ast.Call:
        self.expect("op", "(")
        args: List[ast.Expr] = []
        if not self.at("op", ")"):
            while True:
                args.append(self._expression())
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return ast.Call(name_tok.line, name_tok.text, args)


def parse(source: str) -> ast.Program:
    """Parse MiniC source text into an AST."""
    return Parser(source).parse_program()
