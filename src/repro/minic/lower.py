"""MiniC → DIR lowering (with integrated type checking).

A light module-level pass collects structs, constants, globals and
function signatures; then each function body is lowered to DIR with types
tracked per expression.  MiniC is deliberately weakly typed across
int/pointer boundaries (matching the C-via-LLVM setting of the paper) but
rejects struct misuse, bad field accesses, arity errors, and address-of on
locals (locals are registers and have no address).

Built-in primitives recognised as calls:

``cas(addr, expected, new)``, ``fence()``, ``fence_ss()``, ``fence_sl()``,
``fork(fn, args...)``, ``join(tid)``, ``self()``, ``pagealloc(n)``,
``pagefree(p)``, ``lock(addr)``, ``unlock(addr)``.

``lock``/``unlock`` lower to the paper's treatment: a CAS spin-loop /
releasing store, each wrapped with full fences before and after, which
simulates the volatile lock variable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..ir.builder import IRBuilder
from ..ir.instructions import FenceKind
from ..ir.module import GlobalVar, Module
from ..ir.operands import Const, Reg, Sym
from ..ir.verifier import verify_module
from . import ast
from .parser import parse
from .types import (
    INT,
    VOID,
    ArrayType,
    FuncSig,
    PointerType,
    StructType,
    Type,
)


class CompileError(Exception):
    """Semantic error in MiniC source."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


Operand = Union[Reg, Const, Sym]
#: An lvalue is either a register or a shared-memory address.
LValue = Tuple[str, Operand, Type]  # ("reg"|"mem", operand, value type)

_BINOP_MAP = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}


class ModuleEnv:
    """Module-level symbol tables."""

    def __init__(self) -> None:
        self.structs: Dict[str, StructType] = {}
        self.consts: Dict[str, int] = {}
        self.globals: Dict[str, Type] = {}
        self.funcs: Dict[str, FuncSig] = {}

    def resolve(self, type_expr: ast.TypeExpr) -> Type:
        if type_expr.base == "int":
            base: Type = INT
        elif type_expr.base == "void":
            base = VOID
        else:
            struct = self.structs.get(type_expr.struct_name)
            if struct is None:
                raise CompileError("unknown struct %r" % type_expr.struct_name,
                                   type_expr.line)
            base = struct
        for _ in range(type_expr.stars):
            base = PointerType(base)
        return base


# ----------------------------------------------------------------------
# Constant expressions

def _const_eval(expr: ast.Expr, env: ModuleEnv) -> int:
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Ident):
        if expr.name in env.consts:
            return env.consts[expr.name]
        raise CompileError("%r is not a constant" % expr.name, expr.line)
    if isinstance(expr, ast.Unary):
        value = _const_eval(expr.operand, env)
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return int(value == 0)
        if expr.op == "~":
            return ~value
    if isinstance(expr, ast.Binary):
        left = _const_eval(expr.left, env)
        right = _const_eval(expr.right, env)
        try:
            return _fold_binary(expr.op, left, right)
        except ZeroDivisionError:
            raise CompileError("division by zero in constant", expr.line) \
                from None
    if isinstance(expr, ast.SizeOf):
        return env.resolve(expr.type_expr).size
    raise CompileError("expression is not constant", expr.line)


def _fold_binary(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    if op == "%":
        r = abs(a) % abs(b)
        return r if a >= 0 else -r
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return a << b
    if op == ">>":
        return a >> b
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    raise CompileError("operator %r not allowed in constants" % op)


# ----------------------------------------------------------------------
# Module-level compilation

def compile_source(source: str, name: str = "module",
                   optimize: bool = False) -> Module:
    """Compile MiniC source text to a verified DIR module.

    With ``optimize`` True the clean-up pipeline (constant folding,
    unreachable-code and dead-register elimination) runs after lowering;
    shared-memory operations are never optimised away.
    """
    program = parse(source)
    module = Module(name)
    module.source = source
    env = ModuleEnv()

    # Pass 1a: struct shells (so pointer fields may reference any struct).
    for decl in program.decls:
        if isinstance(decl, ast.StructDecl):
            if decl.name in env.structs:
                raise CompileError("duplicate struct %r" % decl.name,
                                   decl.line)
            env.structs[decl.name] = StructType(decl.name)

    # Pass 1b: struct bodies, constants, globals, function signatures.
    func_decls: List[ast.FuncDecl] = []
    for decl in program.decls:
        if isinstance(decl, ast.StructDecl):
            struct = env.structs[decl.name]
            for ftype_expr, fname in decl.fields:
                ftype = env.resolve(ftype_expr)
                if isinstance(ftype, StructType):
                    raise CompileError(
                        "field %r: nested struct fields must be pointers"
                        % fname, decl.line)
                struct.add_field(fname, ftype)
            struct.complete = True
        elif isinstance(decl, ast.ConstDecl):
            if decl.name in env.consts:
                raise CompileError("duplicate const %r" % decl.name, decl.line)
            env.consts[decl.name] = _const_eval(decl.value, env)
        elif isinstance(decl, ast.GlobalDecl):
            _declare_global(decl, env, module)
        elif isinstance(decl, ast.FuncDecl):
            if decl.name in env.funcs:
                raise CompileError("duplicate function %r" % decl.name,
                                   decl.line)
            ret = env.resolve(decl.ret_type)
            params = [(pname, env.resolve(ptype))
                      for ptype, pname in decl.params]
            for pname, ptype in params:
                if isinstance(ptype, (StructType, ArrayType)):
                    raise CompileError(
                        "parameter %r: pass structs by pointer" % pname,
                        decl.line)
            env.funcs[decl.name] = FuncSig(decl.name, ret, params)
            func_decls.append(decl)

    # Pass 2: function bodies.
    for decl in func_decls:
        _FunctionLowerer(module, env, decl).lower()

    verify_module(module)
    if optimize:
        from ..ir.passes.optimize import optimize_module
        optimize_module(module)
    return module


def _declare_global(decl: ast.GlobalDecl, env: ModuleEnv,
                    module: Module) -> None:
    if decl.name in env.globals or decl.name in env.consts:
        raise CompileError("duplicate global %r" % decl.name, decl.line)
    base = env.resolve(decl.type_expr)
    if isinstance(base, StructType) and not base.complete:
        raise CompileError("global of incomplete struct", decl.line)
    init: List[int] = []
    if decl.array_len is not None:
        count = _const_eval(decl.array_len, env)
        if count <= 0:
            raise CompileError("array length must be positive", decl.line)
        if isinstance(base, (StructType, ArrayType)) and \
                isinstance(base, ArrayType):
            raise CompileError("multi-dimensional arrays are not supported",
                               decl.line)
        var_type: Type = ArrayType(base, count)
        if decl.init is not None:
            raise CompileError("array initialisers are not supported",
                               decl.line)
    else:
        var_type = base
        if base is VOID:
            raise CompileError("global of type void", decl.line)
        if decl.init is not None:
            if isinstance(base, StructType):
                raise CompileError("struct initialisers are not supported",
                                   decl.line)
            init = [_const_eval(decl.init, env)]
    env.globals[decl.name] = var_type
    module.add_global(GlobalVar(decl.name, var_type.size, init))


# ----------------------------------------------------------------------
# Function lowering

class _LoopLabels:
    __slots__ = ("break_label", "continue_label")

    def __init__(self, break_label, continue_label) -> None:
        self.break_label = break_label
        self.continue_label = continue_label


class _FunctionLowerer:
    def __init__(self, module: Module, env: ModuleEnv,
                 decl: ast.FuncDecl) -> None:
        self.env = env
        self.decl = decl
        self.sig = env.funcs[decl.name]
        self.builder = IRBuilder(module, decl.name,
                                 [pname for pname, _t in self.sig.params])
        self.scopes: List[Dict[str, Tuple[str, Type]]] = [{}]
        self.loops: List[_LoopLabels] = []
        self._rename = 0

    # -- scope helpers -------------------------------------------------

    def _declare(self, name: str, type_: Type, line: int) -> Reg:
        scope = self.scopes[-1]
        if name in scope:
            raise CompileError("duplicate variable %r" % name, line)
        if any(name == p for p, _t in self.sig.params) \
                and len(self.scopes) == 1:
            raise CompileError("%r shadows a parameter" % name, line)
        reg_name = name
        if any(name in s for s in self.scopes[:-1]):
            self._rename += 1
            reg_name = "%s.%d" % (name, self._rename)
        scope[name] = (reg_name, type_)
        return Reg(reg_name)

    def _lookup(self, name: str) -> Optional[Tuple[str, Type]]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- entry ----------------------------------------------------------

    def lower(self) -> None:
        for pname, ptype in self.sig.params:
            self.scopes[0][pname] = (pname, ptype)
        self.builder.cur_line = self.decl.line
        self._stmt(self.decl.body)
        self.builder.finish()

    # -- statements ------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        b = self.builder
        b.cur_line = stmt.line
        if isinstance(stmt, ast.Block):
            self.scopes.append({})
            for inner in stmt.stmts:
                self._stmt(inner)
            self.scopes.pop()
        elif isinstance(stmt, ast.VarDecl):
            var_type = self.env.resolve(stmt.type_expr)
            if isinstance(var_type, (StructType, ArrayType)) \
                    or var_type is VOID:
                raise CompileError(
                    "locals must be int or pointer (structs/arrays live in "
                    "globals or pagealloc'd memory)", stmt.line)
            reg = self._declare(stmt.name, var_type, stmt.line)
            if stmt.init is not None:
                value, vtype = self._rvalue(stmt.init)
                self._check_assignable(var_type, vtype, stmt.line)
                b.mov(reg, value)
        elif isinstance(stmt, ast.If):
            cond, ctype = self._rvalue(stmt.cond)
            self._require_arith(ctype, stmt.cond.line)
            then_l = b.block_label("then")
            else_l = b.block_label("else")
            end_l = b.block_label("endif")
            b.cbr(cond, then_l, else_l)
            b.bind(then_l)
            self._stmt(stmt.then)
            b.br(end_l)
            b.bind(else_l)
            if stmt.els is not None:
                self._stmt(stmt.els)
            b.br(end_l)
            b.bind(end_l)
        elif isinstance(stmt, ast.While):
            cond_l = b.block_label("while.cond")
            body_l = b.block_label("while.body")
            end_l = b.block_label("while.end")
            b.br(cond_l)
            b.bind(cond_l)
            b.cur_line = stmt.line
            cond, ctype = self._rvalue(stmt.cond)
            self._require_arith(ctype, stmt.cond.line)
            b.cbr(cond, body_l, end_l)
            b.bind(body_l)
            self.loops.append(_LoopLabels(end_l, cond_l))
            self._stmt(stmt.body)
            self.loops.pop()
            b.br(cond_l)
            b.bind(end_l)
        elif isinstance(stmt, ast.For):
            self.scopes.append({})
            if stmt.init is not None:
                self._stmt(stmt.init)
            cond_l = b.block_label("for.cond")
            body_l = b.block_label("for.body")
            step_l = b.block_label("for.step")
            end_l = b.block_label("for.end")
            b.br(cond_l)
            b.bind(cond_l)
            if stmt.cond is not None:
                b.cur_line = stmt.line
                cond, ctype = self._rvalue(stmt.cond)
                self._require_arith(ctype, stmt.cond.line)
                b.cbr(cond, body_l, end_l)
            else:
                b.br(body_l)
            b.bind(body_l)
            self.loops.append(_LoopLabels(end_l, step_l))
            self._stmt(stmt.body)
            self.loops.pop()
            b.br(step_l)
            b.bind(step_l)
            if stmt.step is not None:
                b.cur_line = stmt.step.line
                self._rvalue(stmt.step)
            b.br(cond_l)
            b.bind(end_l)
            self.scopes.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                b.ret(Const(0))
            else:
                value, vtype = self._rvalue(stmt.value)
                if self.sig.ret is VOID:
                    raise CompileError(
                        "void function %r returns a value" % self.sig.name,
                        stmt.line)
                self._check_assignable(self.sig.ret, vtype, stmt.line)
                b.ret(value)
        elif isinstance(stmt, ast.Break):
            if not self.loops:
                raise CompileError("break outside a loop", stmt.line)
            b.br(self.loops[-1].break_label)
        elif isinstance(stmt, ast.Continue):
            if not self.loops:
                raise CompileError("continue outside a loop", stmt.line)
            b.br(self.loops[-1].continue_label)
        elif isinstance(stmt, ast.ExprStmt):
            self._rvalue(stmt.expr, allow_void=True)
        elif isinstance(stmt, ast.AssertStmt):
            cond, ctype = self._rvalue(stmt.cond)
            self._require_arith(ctype, stmt.line)
            b.assert_(cond, "assert at line %d" % stmt.line)
        else:
            raise CompileError("unsupported statement %r" % stmt, stmt.line)

    # -- type utilities ---------------------------------------------------

    def _require_arith(self, type_: Type, line: int) -> None:
        if not type_.is_arithmetic():
            raise CompileError("value of type %r not usable here" % type_,
                               line)

    def _check_assignable(self, dst: Type, src: Type, line: int) -> None:
        if dst.is_arithmetic() and src.is_arithmetic():
            return  # int <-> pointer freely, as in the paper's C
        raise CompileError("cannot assign %r to %r" % (src, dst), line)

    # -- lvalues ------------------------------------------------------------

    def _lvalue(self, expr: ast.Expr) -> LValue:
        b = self.builder
        if isinstance(expr, ast.Ident):
            local = self._lookup(expr.name)
            if local is not None:
                reg_name, type_ = local
                return ("reg", Reg(reg_name), type_)
            if expr.name in self.env.globals:
                gtype = self.env.globals[expr.name]
                if isinstance(gtype, ArrayType):
                    raise CompileError(
                        "cannot assign to array %r" % expr.name, expr.line)
                return ("mem", Sym(expr.name), gtype)
            if expr.name in self.env.consts:
                raise CompileError("cannot assign to constant %r" % expr.name,
                                   expr.line)
            raise CompileError("unknown variable %r" % expr.name, expr.line)
        if isinstance(expr, ast.Deref):
            addr, atype = self._rvalue(expr.operand)
            pointee = atype.pointee if isinstance(atype, PointerType) else INT
            if isinstance(pointee, (StructType, VOID.__class__)):
                if isinstance(pointee, StructType):
                    raise CompileError(
                        "cannot use a whole struct as a value", expr.line)
                pointee = INT
            return ("mem", addr, pointee)
        if isinstance(expr, ast.Index):
            return self._index_lvalue(expr)
        if isinstance(expr, ast.Field):
            return self._field_lvalue(expr)
        raise CompileError("expression is not assignable", expr.line)

    def _index_lvalue(self, expr: ast.Index) -> LValue:
        b = self.builder
        base, btype = self._rvalue(expr.base)
        if isinstance(btype, PointerType):
            elem = btype.pointee
        else:
            elem = INT
        if isinstance(elem, StructType):
            raise CompileError("indexing yields a struct; access a field",
                               expr.line)
        index, itype = self._rvalue(expr.index)
        self._require_arith(itype, expr.line)
        addr = self.builder.tmp()
        if elem.size != 1:
            scaled = self.builder.tmp()
            b.binop(scaled, "mul", index, Const(elem.size))
            b.binop(addr, "add", base, scaled)
        else:
            b.binop(addr, "add", base, index)
        return ("mem", addr, elem)

    def _field_lvalue(self, expr: ast.Field) -> LValue:
        b = self.builder
        if expr.arrow:
            base, btype = self._rvalue(expr.base)
            struct = btype.pointee if isinstance(btype, PointerType) else None
            if not isinstance(struct, StructType):
                raise CompileError(
                    "-> on non-struct-pointer (type %r)" % btype, expr.line)
        else:
            kind, base, btype = self._address_of(expr.base)
            struct = btype
            if not isinstance(struct, StructType):
                raise CompileError(". on non-struct (type %r)" % btype,
                                   expr.line)
        field = struct.field(expr.name)
        if field is None:
            raise CompileError("struct %s has no field %r"
                               % (struct.name, expr.name), expr.line)
        if field.offset == 0:
            return ("mem", base, field.type)
        addr = b.tmp()
        b.binop(addr, "add", base, Const(field.offset))
        return ("mem", addr, field.type)

    def _address_of(self, expr: ast.Expr) -> Tuple[str, Operand, Type]:
        """Address of an lvalue; returns ("mem", addr, pointee type)."""
        if isinstance(expr, ast.Ident):
            local = self._lookup(expr.name)
            if local is not None:
                raise CompileError(
                    "cannot take the address of local %r (locals are "
                    "registers in MiniC)" % expr.name, expr.line)
            if expr.name in self.env.globals:
                gtype = self.env.globals[expr.name]
                return ("mem", Sym(expr.name), gtype)
            raise CompileError("unknown variable %r" % expr.name, expr.line)
        kind, operand, type_ = self._lvalue(expr)
        if kind != "mem":
            raise CompileError("cannot take this address", expr.line)
        return (kind, operand, type_)

    # -- rvalues -----------------------------------------------------------

    def _rvalue(self, expr: ast.Expr,
                allow_void: bool = False) -> Tuple[Operand, Type]:
        b = self.builder
        if isinstance(expr, ast.Num):
            return (Const(expr.value), INT)
        if isinstance(expr, ast.Ident):
            if expr.name in self.env.consts:
                return (Const(self.env.consts[expr.name]), INT)
            local = self._lookup(expr.name)
            if local is not None:
                reg_name, type_ = local
                return (Reg(reg_name), type_)
            if expr.name in self.env.globals:
                gtype = self.env.globals[expr.name]
                if isinstance(gtype, ArrayType):
                    # Array decays to a pointer to its first element.
                    dst = b.tmp()
                    b.mov(dst, Sym(expr.name))
                    return (dst, PointerType(gtype.elem))
                if isinstance(gtype, StructType):
                    raise CompileError(
                        "cannot use struct %r as a value (use &%s or a "
                        "field)" % (expr.name, expr.name), expr.line)
                dst = b.tmp()
                b.load(dst, Sym(expr.name))
                return (dst, gtype)
            raise CompileError("unknown identifier %r" % expr.name, expr.line)
        if isinstance(expr, ast.SizeOf):
            return (Const(self.env.resolve(expr.type_expr).size), INT)
        if isinstance(expr, ast.Unary):
            value, vtype = self._rvalue(expr.operand)
            self._require_arith(vtype, expr.line)
            dst = b.tmp()
            op = {"-": "neg", "!": "not", "~": "bnot"}[expr.op]
            b.unop(dst, op, value)
            return (dst, INT)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._ternary(expr)
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr, allow_void)
        if isinstance(expr, ast.Deref):
            kind, operand, type_ = self._lvalue(expr)
            dst = b.tmp()
            b.load(dst, operand)
            return (dst, type_)
        if isinstance(expr, ast.Index):
            kind, operand, type_ = self._index_lvalue(expr)
            dst = b.tmp()
            b.load(dst, operand)
            return (dst, type_)
        if isinstance(expr, ast.Field):
            kind, operand, type_ = self._field_lvalue(expr)
            if isinstance(type_, StructType):
                raise CompileError("cannot load a whole struct", expr.line)
            dst = b.tmp()
            b.load(dst, operand)
            return (dst, type_)
        if isinstance(expr, ast.AddrOf):
            _kind, operand, type_ = self._address_of(expr.operand)
            dst = b.tmp()
            b.mov(dst, operand)
            if isinstance(type_, ArrayType):
                return (dst, PointerType(type_.elem))
            return (dst, PointerType(type_))
        raise CompileError("unsupported expression %r" % expr, expr.line)

    def _binary(self, expr: ast.Binary) -> Tuple[Operand, Type]:
        b = self.builder
        if expr.op in ("&&", "||"):
            return self._short_circuit(expr)
        left, ltype = self._rvalue(expr.left)
        right, rtype = self._rvalue(expr.right)
        self._require_arith(ltype, expr.line)
        self._require_arith(rtype, expr.line)

        # Pointer arithmetic scaling (C semantics, in cells).
        if expr.op in ("+", "-"):
            lp = isinstance(ltype, PointerType)
            rp = isinstance(rtype, PointerType)
            if lp and not rp and ltype.pointee.size != 1:
                scaled = b.tmp()
                b.binop(scaled, "mul", right, Const(ltype.pointee.size))
                right = scaled
            elif rp and not lp and expr.op == "+" \
                    and rtype.pointee.size != 1:
                scaled = b.tmp()
                b.binop(scaled, "mul", left, Const(rtype.pointee.size))
                left = scaled
            if lp and rp and expr.op == "-":
                diff = b.tmp()
                b.binop(diff, "sub", left, right)
                if ltype.pointee.size != 1:
                    dst = b.tmp()
                    b.binop(dst, "div", diff, Const(ltype.pointee.size))
                    return (dst, INT)
                return (diff, INT)

        dst = b.tmp()
        b.binop(dst, _BINOP_MAP[expr.op], left, right)
        result_type: Type = INT
        if expr.op in ("+", "-"):
            if isinstance(ltype, PointerType):
                result_type = ltype
            elif isinstance(rtype, PointerType) and expr.op == "+":
                result_type = rtype
        return (dst, result_type)

    def _short_circuit(self, expr: ast.Binary) -> Tuple[Operand, Type]:
        b = self.builder
        result = b.tmp()
        rhs_l = b.block_label("sc.rhs")
        end_l = b.block_label("sc.end")
        short_l = b.block_label("sc.short")
        left, ltype = self._rvalue(expr.left)
        self._require_arith(ltype, expr.line)
        if expr.op == "&&":
            b.cbr(left, rhs_l, short_l)
        else:
            b.cbr(left, short_l, rhs_l)
        b.bind(short_l)
        b.const(result, 0 if expr.op == "&&" else 1)
        b.br(end_l)
        b.bind(rhs_l)
        right, rtype = self._rvalue(expr.right)
        self._require_arith(rtype, expr.line)
        b.binop(result, "ne", right, Const(0))
        b.br(end_l)
        b.bind(end_l)
        return (result, INT)

    def _ternary(self, expr: ast.Ternary) -> Tuple[Operand, Type]:
        b = self.builder
        result = b.tmp()
        then_l = b.block_label("t.then")
        else_l = b.block_label("t.else")
        end_l = b.block_label("t.end")
        cond, ctype = self._rvalue(expr.cond)
        self._require_arith(ctype, expr.line)
        b.cbr(cond, then_l, else_l)
        b.bind(then_l)
        tval, ttype = self._rvalue(expr.then)
        self._require_arith(ttype, expr.line)
        b.mov(result, tval)
        b.br(end_l)
        b.bind(else_l)
        eval_, etype = self._rvalue(expr.els)
        self._require_arith(etype, expr.line)
        b.mov(result, eval_)
        b.br(end_l)
        b.bind(end_l)
        return (result, ttype)

    def _assign(self, expr: ast.Assign) -> Tuple[Operand, Type]:
        b = self.builder
        value, vtype = self._rvalue(expr.value)
        kind, target, ttype = self._lvalue(expr.target)
        self._check_assignable(ttype, vtype, expr.line)
        if kind == "reg":
            b.mov(target, value)
        else:
            b.store(value, target)
        return (value, ttype)

    # -- calls and builtins ---------------------------------------------

    def _call(self, expr: ast.Call,
              allow_void: bool) -> Tuple[Operand, Type]:
        b = self.builder
        name = expr.name
        handler = _BUILTINS.get(name)
        if handler is not None:
            return handler(self, expr, allow_void)
        sig = self.env.funcs.get(name)
        if sig is None:
            raise CompileError("unknown function %r" % name, expr.line)
        if len(expr.args) != len(sig.params):
            raise CompileError(
                "%s expects %d arguments, got %d"
                % (name, len(sig.params), len(expr.args)), expr.line)
        args = []
        for arg, (_pname, ptype) in zip(expr.args, sig.params):
            value, vtype = self._rvalue(arg)
            self._check_assignable(ptype, vtype, arg.line)
            args.append(value)
        if sig.ret is VOID:
            if not allow_void:
                raise CompileError(
                    "void call %s() used as a value" % name, expr.line)
            b.call(None, name, args)
            return (Const(0), VOID)
        dst = b.tmp()
        b.call(dst, name, args)
        return (dst, sig.ret)

    # builtin implementations ------------------------------------------

    def _builtin_cas(self, expr, allow_void):
        b = self.builder
        if len(expr.args) != 3:
            raise CompileError("cas(addr, expected, new)", expr.line)
        addr, atype = self._rvalue(expr.args[0])
        self._require_arith(atype, expr.line)
        expected, _t1 = self._rvalue(expr.args[1])
        new, _t2 = self._rvalue(expr.args[2])
        dst = b.tmp()
        b.cas(dst, addr, expected, new)
        return (dst, INT)

    def _builtin_fence(self, kind: FenceKind):
        def handler(self_, expr, allow_void):
            if expr.args:
                raise CompileError("fence takes no arguments", expr.line)
            self_.builder.fence(kind)
            return (Const(0), VOID)
        return handler

    def _builtin_fork(self, expr, allow_void):
        b = self.builder
        if not expr.args or not isinstance(expr.args[0], ast.Ident):
            raise CompileError("fork(function, args...)", expr.line)
        fn_name = expr.args[0].name
        sig = self.env.funcs.get(fn_name)
        if sig is None:
            raise CompileError("fork of unknown function %r" % fn_name,
                               expr.line)
        arg_exprs = expr.args[1:]
        if len(arg_exprs) != len(sig.params):
            raise CompileError(
                "fork(%s): expects %d thread arguments, got %d"
                % (fn_name, len(sig.params), len(arg_exprs)), expr.line)
        args = [self._rvalue(arg)[0] for arg in arg_exprs]
        dst = b.tmp()
        b.fork(dst, fn_name, args)
        return (dst, INT)

    def _builtin_join(self, expr, allow_void):
        if len(expr.args) != 1:
            raise CompileError("join(tid)", expr.line)
        tid, ttype = self._rvalue(expr.args[0])
        self._require_arith(ttype, expr.line)
        self.builder.join(tid)
        return (Const(0), VOID)

    def _builtin_self(self, expr, allow_void):
        if expr.args:
            raise CompileError("self() takes no arguments", expr.line)
        dst = self.builder.tmp()
        self.builder.self_id(dst)
        return (dst, INT)

    def _builtin_pagealloc(self, expr, allow_void):
        if len(expr.args) != 1:
            raise CompileError("pagealloc(cells)", expr.line)
        size, stype = self._rvalue(expr.args[0])
        self._require_arith(stype, expr.line)
        dst = self.builder.tmp()
        self.builder.pagealloc(dst, size)
        return (dst, PointerType(INT))

    def _builtin_pagefree(self, expr, allow_void):
        if len(expr.args) != 1:
            raise CompileError("pagefree(ptr)", expr.line)
        addr, atype = self._rvalue(expr.args[0])
        self._require_arith(atype, expr.line)
        self.builder.pagefree(addr)
        return (Const(0), VOID)

    def _builtin_lock(self, expr, allow_void):
        """lock(addr): fenced CAS spin-loop (the paper's lock treatment)."""
        b = self.builder
        if len(expr.args) != 1:
            raise CompileError("lock(addr)", expr.line)
        addr, atype = self._rvalue(expr.args[0])
        self._require_arith(atype, expr.line)
        b.fence(FenceKind.FULL)
        retry = b.block_label("lock.retry")
        done = b.block_label("lock.done")
        b.br(retry)
        b.bind(retry)
        got = b.tmp()
        b.cas(got, addr, Const(0), Const(1))
        b.cbr(got, done, retry)
        b.bind(done)
        b.fence(FenceKind.FULL)
        return (Const(0), VOID)

    def _builtin_unlock(self, expr, allow_void):
        """unlock(addr): fenced releasing store."""
        b = self.builder
        if len(expr.args) != 1:
            raise CompileError("unlock(addr)", expr.line)
        addr, atype = self._rvalue(expr.args[0])
        self._require_arith(atype, expr.line)
        b.fence(FenceKind.FULL)
        b.store(Const(0), addr)
        b.fence(FenceKind.FULL)
        return (Const(0), VOID)


_BUILTINS = {
    "cas": _FunctionLowerer._builtin_cas,
    "fence": _FunctionLowerer._builtin_fence(None, FenceKind.FULL),
    "fence_ss": _FunctionLowerer._builtin_fence(None, FenceKind.ST_ST),
    "fence_sl": _FunctionLowerer._builtin_fence(None, FenceKind.ST_LD),
    "fork": _FunctionLowerer._builtin_fork,
    "join": _FunctionLowerer._builtin_join,
    "self": _FunctionLowerer._builtin_self,
    "pagealloc": _FunctionLowerer._builtin_pagealloc,
    "pagefree": _FunctionLowerer._builtin_pagefree,
    "lock": _FunctionLowerer._builtin_lock,
    "unlock": _FunctionLowerer._builtin_unlock,
}
