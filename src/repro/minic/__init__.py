"""MiniC — the C-like source language of the reproduction.

The paper consumes concurrent C via LLVM bytecode; here the benchmark
algorithms are written in MiniC and compiled by this package to DIR.
"""

from .ast import Program
from .lexer import LexError, Token, tokenize
from .lower import CompileError, compile_source
from .parser import ParseError, parse

__all__ = [
    "CompileError", "LexError", "ParseError", "Program", "Token",
    "compile_source", "parse", "tokenize",
]
