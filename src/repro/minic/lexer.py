"""MiniC lexer.

MiniC is the C-like source language of the reproduction — the concurrent
algorithms are written in it and compiled to DIR.  The lexer produces a
token stream with line information (fence reports are given in source
lines, like the paper's ``(method, line1:line2)`` triples).
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

KEYWORDS = frozenset([
    "int", "void", "struct", "const", "if", "else", "while", "for",
    "return", "break", "continue", "assert", "sizeof",
])

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=",  # recognised but rejected later (no compound assignment)
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ",", ";", ".", "?", ":",
]


class Token(NamedTuple):
    kind: str    # 'ident', 'num', 'kw', 'op', 'eof'
    text: str
    line: int


class LexError(Exception):
    """Raised on malformed input, with the offending line number."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__("line %d: %s" % (line, message))
        self.line = line


def tokenize(source: str) -> List[Token]:
    """Tokenise MiniC source; returns tokens ending with an 'eof' token."""
    tokens: List[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            try:
                int(text, 0)
            except ValueError:
                raise LexError("bad number literal %r" % text, line) from None
            tokens.append(Token("num", text, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise LexError("unexpected character %r" % ch, line)
    tokens.append(Token("eof", "", line))
    return tokens
