"""Specifications and history checkers.

The paper checks three properties: memory safety, operation-level
sequential consistency, and linearizability — the latter two against
executable sequential specifications of each algorithm.
"""

from .checker import find_witness, is_linearizable, is_sequentially_consistent
from .quiescent import (
    QuiescentConsistencySpec,
    find_quiescent_witness,
    is_quiescently_consistent,
)
from .sequential import (
    EMPTY,
    AllocatorSpec,
    QueueSpec,
    RegisterSpec,
    SequentialSpec,
    SetSpec,
    StackSpec,
    WSQDequeSpec,
    WSQFifoSpec,
    WSQLifoSpec,
)
from .specifications import (
    GarbageFreeSpec,
    LinearizabilitySpec,
    MemorySafetySpec,
    SequentialConsistencySpec,
    Specification,
)

__all__ = [
    "EMPTY", "AllocatorSpec", "GarbageFreeSpec", "LinearizabilitySpec",
    "MemorySafetySpec", "QueueSpec", "RegisterSpec",
    "SequentialConsistencySpec", "SequentialSpec", "SetSpec",
    "QuiescentConsistencySpec", "Specification", "StackSpec",
    "WSQDequeSpec", "WSQFifoSpec", "WSQLifoSpec", "find_quiescent_witness",
    "find_witness", "is_linearizable", "is_quiescently_consistent",
    "is_sequentially_consistent",
]
