"""Executable sequential specifications.

SC/linearizability checking needs "a semantic sequential specification of
the algorithm" (paper §5.2): a machine that says which operation results
are legal in which order.  Specs are *pure*: ``init()`` produces a hashable
state and ``apply(state, name, args, result)`` returns ``(ok, new_state)``
without mutation, so the history checker can memoise and backtrack freely.

A spec validates results rather than predicting them, which neatly handles
nondeterministic-by-nature operations (e.g. ``malloc`` may legally return
any fresh address).
"""

from __future__ import annotations

from typing import Hashable, Tuple

#: Conventional "nothing there" return value used by all the algorithms.
EMPTY = -1


class SequentialSpec:
    """Base class for sequential specifications."""

    #: Human-readable spec name.
    name = "spec"

    def init(self) -> Hashable:
        """The initial abstract state."""
        raise NotImplementedError

    def apply(self, state: Hashable, name: str, args: Tuple[int, ...],
              result: int) -> Tuple[bool, Hashable]:
        """Check one operation against *state*.

        Returns ``(ok, new_state)``; when ``ok`` is False the new state is
        meaningless.
        """
        raise NotImplementedError


class WSQDequeSpec(SequentialSpec):
    """Work-stealing deque: put/take at the tail, steal at the head.

    The sequential behaviour of the Chase-Lev queue, Cilk's THE queue and
    the Anchor WSQ.  State: tuple of queued items, head on the left.
    """

    name = "wsq-deque"

    def init(self):
        return ()

    def apply(self, state, name, args, result):
        if name == "put":
            return (True, state + (args[0],))
        if name == "take":
            if not state:
                return (result == EMPTY, state)
            return (result == state[-1], state[:-1])
        if name == "steal":
            if not state:
                return (result == EMPTY, state)
            return (result == state[0], state[1:])
        return (False, state)


class WSQFifoSpec(SequentialSpec):
    """FIFO work-stealing queue: put at the tail, take *and* steal at the
    head (the FIFO WSQ / FIFO iWSQ shape)."""

    name = "wsq-fifo"

    def init(self):
        return ()

    def apply(self, state, name, args, result):
        if name == "put":
            return (True, state + (args[0],))
        if name in ("take", "steal"):
            if not state:
                return (result == EMPTY, state)
            return (result == state[0], state[1:])
        return (False, state)


class WSQLifoSpec(SequentialSpec):
    """LIFO work-stealing queue: put, take and steal all at the top."""

    name = "wsq-lifo"

    def init(self):
        return ()

    def apply(self, state, name, args, result):
        if name == "put":
            return (True, state + (args[0],))
        if name in ("take", "steal"):
            if not state:
                return (result == EMPTY, state)
            return (result == state[-1], state[:-1])
        return (False, state)


class QueueSpec(SequentialSpec):
    """FIFO queue with enqueue/dequeue (MS2 and MSN queues)."""

    name = "queue"

    def init(self):
        return ()

    def apply(self, state, name, args, result):
        if name == "enqueue":
            return (True, state + (args[0],))
        if name == "dequeue":
            if not state:
                return (result == EMPTY, state)
            return (result == state[0], state[1:])
        return (False, state)


class StackSpec(SequentialSpec):
    """LIFO stack with push/pop (Treiber-style examples)."""

    name = "stack"

    def init(self):
        return ()

    def apply(self, state, name, args, result):
        if name == "push":
            return (True, state + (args[0],))
        if name == "pop":
            if not state:
                return (result == EMPTY, state)
            return (result == state[-1], state[:-1])
        return (False, state)


class SetSpec(SequentialSpec):
    """Integer set with add/remove/contains (LazyList, Harris).

    add/remove return 1 on success and 0 when the element was already
    present/absent; contains returns membership.
    """

    name = "set"

    def init(self):
        return frozenset()

    def apply(self, state, name, args, result):
        value = args[0]
        if name == "add":
            if value in state:
                return (result == 0, state)
            return (result == 1, state | {value})
        if name == "remove":
            if value not in state:
                return (result == 0, state)
            return (result == 1, state - {value})
        if name == "contains":
            return (result == int(value in state), state)
        return (False, state)


class AllocatorSpec(SequentialSpec):
    """Memory allocator: malloc()/free(p).

    A ``malloc`` may return any non-NULL address that is not currently
    live (no double-handed-out blocks); ``free`` must target a live block.
    State: frozenset of live block addresses.
    """

    name = "allocator"

    def init(self):
        return frozenset()

    def apply(self, state, name, args, result):
        if name == "malloc":
            if result == 0 or result in state:
                return (False, state)
            return (True, state | {result})
        if name == "free":
            addr = args[0]
            if addr not in state:
                return (False, state)
            return (True, state - {addr})
        return (False, state)


class RegisterSpec(SequentialSpec):
    """A single atomic register: write(v) / read()->v (used in examples)."""

    name = "register"

    def __init__(self, initial: int = 0) -> None:
        self.initial = initial

    def init(self):
        return self.initial

    def apply(self, state, name, args, result):
        if name == "write":
            return (True, args[0])
        if name == "read":
            return (result == state, state)
        return (False, state)
