"""Quiescent consistency — the third classic correctness criterion.

The paper studies linearizability and operation-level sequential
consistency, both from Herlihy & Shavit's taxonomy [14, Ch. 3.3-3.5]; the
chapter's third criterion is *quiescent consistency*: method calls
separated by a period of quiescence (no operation in flight) must take
effect in their real-time order, but calls within the same busy period
may be reordered arbitrarily — even against program order.

Implementation: split the history into *epochs* at quiescent points, then
search for a spec-legal order that is any permutation within epochs but
never crosses them backwards.  QC is incomparable with SC (it drops
program order, adds quiescence order) and strictly weaker than
linearizability.
"""

from __future__ import annotations

from typing import List, Optional

from ..vm.driver import ExecutionResult
from ..vm.events import History, Operation
from .checker import find_witness  # noqa: F401  (re-exported context)
from .sequential import SequentialSpec
from .specifications import Specification


def assign_epochs(operations: List[Operation]) -> List[int]:
    """Epoch index per operation (same order as the input list).

    A new epoch starts at each quiescent point: a moment before an
    invocation at which every earlier operation has already returned.
    """
    ops = sorted(operations, key=lambda op: op.call_seq)
    epoch_of = {}
    epoch = 0
    busy_until = -1
    for op in ops:
        if op.call_seq > busy_until:
            epoch += 1
        epoch_of[id(op)] = epoch
        busy_until = max(busy_until, op.ret_seq)
    return [epoch_of[id(op)] for op in operations]


def find_quiescent_witness(history: History, spec: SequentialSpec
                           ) -> Optional[List[Operation]]:
    """A spec-legal order respecting epoch boundaries, or None.

    Within an epoch any permutation is allowed (quiescent consistency
    does not preserve program order); across epochs the real-time order
    of quiescent periods is fixed.
    """
    operations = [op for op in history.operations if op.complete]
    if not operations:
        return []
    epochs = assign_epochs(operations)

    order = sorted(range(len(operations)),
                   key=lambda i: operations[i].call_seq)
    witness: List[Operation] = []
    failed = set()

    def search(consumed: frozenset, state) -> bool:
        if len(consumed) == len(operations):
            return True
        key = (consumed, state)
        if key in failed:
            return False
        pending_epochs = [epochs[i] for i in order if i not in consumed]
        floor = min(pending_epochs)
        for i in order:
            if i in consumed or epochs[i] != floor:
                continue
            op = operations[i]
            ok, new_state = spec.apply(state, op.name, op.args, op.result)
            if not ok:
                continue
            witness.append(op)
            if search(consumed | {i}, new_state):
                return True
            witness.pop()
        failed.add(key)
        return False

    if search(frozenset(), spec.init()):
        return list(witness)
    return None


def is_quiescently_consistent(history: History,
                              spec: SequentialSpec) -> bool:
    return find_quiescent_witness(history, spec) is not None


class QuiescentConsistencySpec(Specification):
    """Memory safety + quiescent consistency of the history."""

    name = "quiescent_consistency"

    def __init__(self, spec: SequentialSpec) -> None:
        self.spec = spec

    def check(self, result: ExecutionResult) -> Optional[str]:
        crash = self._crash(result)
        if crash is not None:
            return crash
        if not is_quiescently_consistent(result.history, self.spec):
            return ("history not quiescently consistent: %r"
                    % (result.history.complete_ops(),))
        return None
