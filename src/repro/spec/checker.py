"""History checking: operation-level sequential consistency and
linearizability.

Both criteria ask for a *sequentialisation* of the concurrent history that
the sequential specification accepts:

* **sequential consistency** — the witness must respect each thread's
  program order;
* **linearizability** — additionally, the witness must respect real-time
  order: if operation A returned before operation B was invoked, A comes
  first.

The search is the classical Wing & Gong backtracking over "which operation
linearises next", memoised on (per-thread progress, spec state).  This is
worst-case exponential in history length — the reason the paper keeps
clients short — but with memoisation it is fast for the histories the
clients here generate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..vm.events import History, Operation
from .sequential import SequentialSpec


def find_witness(history: History, spec: SequentialSpec,
                 real_time: bool) -> Optional[List[Operation]]:
    """Search for a legal sequentialisation of *history*.

    Returns the witness order (list of operations) or None when no legal
    sequentialisation exists.  ``real_time=True`` checks linearizability,
    False checks operation-level sequential consistency.  Incomplete
    operations (no response) are ignored: with the drivers here they only
    occur in runs that already crashed for other reasons.
    """
    per_thread: List[List[Operation]] = []
    for _tid, ops in sorted(history.by_thread().items()):
        complete = [op for op in ops if op.complete]
        if complete:
            per_thread.append(complete)

    total = sum(len(ops) for ops in per_thread)
    if total == 0:
        return []

    failed = set()
    witness: List[Operation] = []

    def next_ret_floor(progress: Tuple[int, ...]) -> float:
        """Smallest response time among not-yet-consumed operations.

        Within a thread operations are serial, so the thread's *next*
        unconsumed operation has the minimal ret_seq of that thread.
        """
        floor = float("inf")
        for ti, ops in enumerate(per_thread):
            i = progress[ti]
            if i < len(ops) and ops[i].ret_seq < floor:
                floor = ops[i].ret_seq
        return floor

    def search(progress: Tuple[int, ...], state) -> bool:
        if len(witness) == total:
            return True
        key = (progress, state)
        if key in failed:
            return False
        floor = next_ret_floor(progress) if real_time else None
        for ti, ops in enumerate(per_thread):
            i = progress[ti]
            if i >= len(ops):
                continue
            op = ops[i]
            if real_time and op.call_seq > floor:
                # Some pending operation returned before this one started:
                # it must be linearised first.
                continue
            ok, new_state = spec.apply(state, op.name, op.args, op.result)
            if not ok:
                continue
            witness.append(op)
            new_progress = progress[:ti] + (i + 1,) + progress[ti + 1:]
            if search(new_progress, new_state):
                return True
            witness.pop()
        failed.add(key)
        return False

    start = tuple(0 for _ in per_thread)
    if search(start, spec.init()):
        return list(witness)
    return None


def is_sequentially_consistent(history: History,
                               spec: SequentialSpec) -> bool:
    """Operation-level sequential consistency of *history* w.r.t. *spec*."""
    return find_witness(history, spec, real_time=False) is not None


def is_linearizable(history: History, spec: SequentialSpec) -> bool:
    """Linearizability of *history* w.r.t. *spec*."""
    return find_witness(history, spec, real_time=True) is not None
