"""Top-level specifications the synthesis engine checks executions against.

Three specification strengths, matching the paper's evaluation dimensions:

* :class:`MemorySafetySpec` — the execution must not crash (out-of-bounds,
  freed/NULL access, failed assertion).  Always on; the other specs layer
  on top of it, exactly as in the paper ("memory safety checking is always
  on, hence Linearizability and Sequential Consistency columns include
  fences inferred due to memory safety violations").
* :class:`SequentialConsistencySpec` — operation-level SC of the history.
* :class:`LinearizabilitySpec` — linearizability of the history.

Plus :class:`GarbageFreeSpec`, the "no garbage tasks returned" property the
paper uses for the idempotent work-stealing queues (every returned task
must have been put, and returned at most ``multiplicity`` times).
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from ..vm.driver import ExecutionResult
from .checker import is_linearizable, is_sequentially_consistent
from .sequential import EMPTY, SequentialSpec


class Specification:
    """Base class: maps an execution result to a violation message."""

    name = "spec"

    def check(self, result: ExecutionResult) -> Optional[str]:
        """Return a violation description, or None if the execution is OK.

        Executions that were cut off (timeout/deadlock) are never judged
        violating here; the driver filters them out.
        """
        raise NotImplementedError

    def _crash(self, result: ExecutionResult) -> Optional[str]:
        if result.crashed:
            return "%s: %s" % (result.status.value, result.error)
        return None


class MemorySafetySpec(Specification):
    """Crash-freedom only."""

    name = "memory_safety"

    def check(self, result: ExecutionResult) -> Optional[str]:
        return self._crash(result)


class SequentialConsistencySpec(Specification):
    """Memory safety + operation-level sequential consistency."""

    name = "sequential_consistency"

    def __init__(self, spec: SequentialSpec) -> None:
        self.spec = spec

    def check(self, result: ExecutionResult) -> Optional[str]:
        crash = self._crash(result)
        if crash is not None:
            return crash
        if not is_sequentially_consistent(result.history, self.spec):
            return ("history not sequentially consistent: %r"
                    % (result.history.complete_ops(),))
        return None


class LinearizabilitySpec(Specification):
    """Memory safety + linearizability."""

    name = "linearizability"

    def __init__(self, spec: SequentialSpec) -> None:
        self.spec = spec

    def check(self, result: ExecutionResult) -> Optional[str]:
        crash = self._crash(result)
        if crash is not None:
            return crash
        if not is_linearizable(result.history, self.spec):
            return ("history not linearizable: %r"
                    % (result.history.complete_ops(),))
        return None


class GarbageFreeSpec(Specification):
    """No garbage tasks: every non-EMPTY take/steal result was previously
    put, and no task is returned more often than it was put times
    ``multiplicity`` (1 for exact queues; idempotent queues allow
    duplicates, i.e. unbounded multiplicity, but never invented values).

    The check is causal, not serial, so it needs no search: a returned
    task must have been put by an operation that was *invoked before the
    get returned* (a get overlapping its put may legitimately see the
    value).
    """

    name = "garbage_free"

    def __init__(self, put_op: str = "put",
                 get_ops=("take", "steal"),
                 multiplicity: Optional[int] = 1) -> None:
        self.put_op = put_op
        self.get_ops = frozenset(get_ops)
        self.multiplicity = multiplicity

    def check(self, result: ExecutionResult) -> Optional[str]:
        crash = self._crash(result)
        if crash is not None:
            return crash
        ops = result.history.complete_ops()
        puts = [op for op in ops if op.name == self.put_op]
        returned = Counter()
        for op in sorted(ops, key=lambda o: o.ret_seq):
            if op.name not in self.get_ops or op.result == EMPTY:
                continue
            value = op.result
            eligible = sum(1 for put in puts
                           if put.args[0] == value
                           and put.call_seq < op.ret_seq)
            if eligible == 0:
                return ("garbage task %d returned by %s (never put)"
                        % (value, op.name))
            returned[value] += 1
            if (self.multiplicity is not None
                    and returned[value] > eligible * self.multiplicity):
                return ("task %d returned %d times but put at most %d "
                        "times" % (value, returned[value], eligible))
        return None
