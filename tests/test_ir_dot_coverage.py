"""Tests for DOT export and VM coverage collection."""

from repro.algorithms import ALGORITHMS
from repro.ir.dot import cfg_to_dot, module_to_dot
from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import FlushDelayScheduler, RoundRobinScheduler
from repro.spec import MemorySafetySpec
from repro.synth import SynthesisConfig, SynthesisEngine
from repro.vm import VM
from repro.vm.driver import run_execution


class TestDotExport:
    def test_function_dot_structure(self):
        module = compile_source(
            "int main(int c) { if (c) { return 1; } return 2; }")
        dot = cfg_to_dot(module.function("main"))
        assert dot.startswith('digraph "main"')
        assert dot.rstrip().endswith("}")
        assert "bb0 -> bb1" in dot or "bb0 -> bb2" in dot

    def test_module_dot_has_cluster_per_function(self):
        module = ALGORITHMS["ms2_queue"].compile()
        dot = module_to_dot(module)
        for fn_name in module.functions:
            assert 'label="%s"' % fn_name in dot

    def test_synthesized_fences_highlighted(self):
        source = """
        int D; int F;
        void r() { while (F == 0) {} assert(D == 1); }
        int main() { int t = fork(r); D = 1; F = 1; join(t); return 0; }
        """
        engine = SynthesisEngine(SynthesisConfig(
            memory_model="pso", flush_prob=0.3,
            executions_per_round=300, seed=3))
        result = engine.synthesize(compile_source(source),
                                   MemorySafetySpec())
        assert result.fence_count >= 1
        dot = cfg_to_dot(result.program.function("main"))
        assert "fillcolor" in dot

    def test_quotes_escaped(self):
        module = compile_source("int main() { return 0; }")
        dot = cfg_to_dot(module.function("main"), graph_name='a"b')
        assert '\\"' in dot.splitlines()[0]


class TestCoverage:
    def test_straight_line_coverage_complete(self):
        module = compile_source("int main() { int a = 1; return a; }")
        covered = set()
        vm = VM(module, make_model("sc"), coverage=covered)
        RoundRobinScheduler().run(vm)
        all_labels = {i.label for i in module.function("main").body}
        assert covered == all_labels

    def test_untaken_branch_not_covered(self):
        module = compile_source(
            "int main(int c) { if (c) { return 1; } return 2; }")
        covered = set()
        vm = VM(module, make_model("sc"), entry_args=(0,),
                coverage=covered)
        RoundRobinScheduler().run(vm)
        all_labels = {i.label for i in module.function("main").body}
        assert covered < all_labels

    def test_coverage_accumulates_across_runs(self):
        module = compile_source(
            "int main(int c) { if (c) { return 1; } return 2; }")
        one_branch = set()
        vm = VM(module, make_model("sc"), entry_args=(0,),
                coverage=one_branch)
        RoundRobinScheduler().run(vm)
        both_branches = set()
        for arg in (0, 1):
            vm = VM(module, make_model("sc"), entry_args=(arg,),
                    coverage=both_branches)
            RoundRobinScheduler().run(vm)
        assert one_branch < both_branches

    def test_driver_threads_coverage_through(self):
        module = compile_source("int main() { return 0; }")
        covered = set()
        run_execution(module, make_model("sc"),
                      FlushDelayScheduler(seed=0), coverage=covered)
        assert covered

    def test_no_coverage_by_default(self):
        module = compile_source("int main() { return 0; }")
        vm = VM(module, make_model("sc"))
        assert vm.coverage is None
