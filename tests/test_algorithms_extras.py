"""Tests for the extra (beyond-Table-2) algorithm bundles."""

import pytest

from repro.algorithms import ALGORITHMS, DEKKER, PETERSON, TREIBER_STACK
from repro.synth import SynthesisConfig, SynthesisEngine, SynthesisOutcome


def synthesize(bundle, model, kind=None, k=500, seed=7, max_steps=200000):
    kind = kind or bundle.supports[-1]
    config = SynthesisConfig(
        memory_model=model, flush_prob=bundle.flush_prob[model],
        executions_per_round=k, max_rounds=12, seed=seed,
        max_steps=max_steps)
    engine = SynthesisEngine(config)
    return engine.synthesize(bundle.compile(), bundle.spec(kind),
                             entries=bundle.entries,
                             operations=bundle.operations)


def check_sc(bundle, kind=None, runs=300):
    kind = kind or bundle.supports[-1]
    engine = SynthesisEngine(SynthesisConfig(
        memory_model="sc", executions_per_round=runs, seed=19))
    return engine.test_program(bundle.compile(), bundle.spec(kind),
                               entries=bundle.entries,
                               operations=bundle.operations)


class TestRegistry:
    def test_extras_not_in_table2(self):
        for name in ("dekker", "peterson", "treiber_stack"):
            assert name not in ALGORITHMS


@pytest.mark.parametrize("bundle", [DEKKER, PETERSON, TREIBER_STACK],
                         ids=lambda b: b.name)
class TestSequentialConsistencyBaseline:
    def test_correct_under_sc(self, bundle):
        _runs, violations, example = check_sc(bundle)
        assert violations == 0, example


@pytest.fixture(scope="module")
def dekker_tso():
    # Dekker's retry-path fence is rare: it needs K=1000, and a tight
    # step cap discards the long spin-heavy schedules (the paper's
    # per-execution timeout) which otherwise dominate wall time.
    return synthesize(DEKKER, "tso", k=1000, seed=7, max_steps=5000)


@pytest.mark.slow
class TestDekker:
    def test_tso_needs_store_load_fences_in_both_entries(self, dekker_tso):
        assert dekker_tso.outcome is SynthesisOutcome.CLEAN
        functions = {p.function for p in dekker_tso.placements}
        assert {"enter0", "enter1"} <= functions
        kinds = {p.kind.value for p in dekker_tso.placements}
        assert kinds <= {"st_ld", "full"}

    def test_repaired_dekker_is_mutual_exclusive(self, dekker_tso):
        engine = SynthesisEngine(SynthesisConfig(
            memory_model="tso", flush_prob=0.1, seed=404,
            max_steps=5000))
        unfenced_engine = SynthesisEngine(SynthesisConfig(
            memory_model="tso", flush_prob=0.1, seed=404,
            max_steps=5000))
        _r, before, _ = unfenced_engine.test_program(
            DEKKER.compile(), DEKKER.spec("memory_safety"),
            entries=DEKKER.entries, executions=600)
        _r, after, example = engine.test_program(
            dekker_tso.program, DEKKER.spec("memory_safety"),
            entries=DEKKER.entries, executions=600)
        assert before > 0
        assert after == 0, example


class TestPeterson:
    def test_tso_fences_in_both_entries(self):
        result = synthesize(PETERSON, "tso", max_steps=5000)
        assert result.outcome is SynthesisOutcome.CLEAN
        functions = {p.function for p in result.placements}
        assert {"enter0", "enter1"} <= functions

    def test_violations_exist_without_fences(self):
        engine = SynthesisEngine(SynthesisConfig(
            memory_model="tso", flush_prob=0.1, seed=7,
            max_steps=5000))
        _runs, violations, _ = engine.test_program(
            PETERSON.compile(), PETERSON.spec("memory_safety"),
            entries=PETERSON.entries, executions=600)
        assert violations > 0


class TestTreiberStack:
    def test_fence_free_on_tso(self):
        result = synthesize(TREIBER_STACK, "tso")
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.fence_count == 0

    def test_push_fence_on_pso(self):
        result = synthesize(TREIBER_STACK, "pso")
        assert result.outcome is SynthesisOutcome.CLEAN
        assert any(p.function == "push" for p in result.placements)

    def test_lin_and_sc_agree_here(self):
        sc = synthesize(TREIBER_STACK, "pso", kind="sc")
        lin = synthesize(TREIBER_STACK, "pso", kind="lin")
        assert {p.function for p in sc.placements} == \
            {p.function for p in lin.placements}
