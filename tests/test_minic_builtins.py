"""Unit tests for MiniC builtin primitives (cas/fence/fork/lock/...)."""

import pytest

from repro.ir.instructions import Cas, Fence, FenceKind, Fork, Join, PageAlloc
from repro.memory import make_model
from repro.minic import CompileError, compile_source
from repro.sched import FlushDelayScheduler, RoundRobinScheduler
from repro.vm import VM


def result_of(source, model="sc"):
    module = compile_source(source)
    vm = VM(module, make_model(model))
    RoundRobinScheduler().run(vm)
    return vm.threads[0].result


def instrs_of(source, fn="main"):
    return list(compile_source(source).function(fn).body)


class TestCas:
    def test_lowered_to_cas_instruction(self):
        instrs = instrs_of("int G; int main() { return cas(&G, 0, 1); }")
        assert any(isinstance(i, Cas) for i in instrs)

    def test_cas_on_struct_field(self):
        src = """
        struct S { int a; int b; };
        struct S G;
        int main() {
          G.b = 5;
          int ok = cas(&G.b, 5, 6);
          return ok * 10 + G.b;
        }
        """
        assert result_of(src) == 16

    def test_wrong_arity(self):
        with pytest.raises(CompileError):
            compile_source("int G; int main() { return cas(&G, 1); }")


class TestFences:
    def test_fence_kinds_lowered(self):
        src = ("int main() { fence(); fence_ss(); fence_sl(); return 0; }")
        fences = [i for i in instrs_of(src) if isinstance(i, Fence)]
        assert [f.kind for f in fences] == [
            FenceKind.FULL, FenceKind.ST_ST, FenceKind.ST_LD]
        assert not any(f.synthesized for f in fences)

    def test_fence_orders_pso_stores(self):
        # Without the fence, FLAG can commit before DATA under PSO.
        src = """
        int DATA; int FLAG; int BAD;
        void reader() {
          while (FLAG == 0) {}
          if (DATA == 0) { BAD = 1; }
        }
        int main() {
          int t = fork(reader);
          DATA = 1;
          %s
          FLAG = 1;
          join(t);
          return BAD;
        }
        """
        unfenced = compile_source(src % "")
        fenced = compile_source(src % "fence_ss();")
        saw_bad = False
        for seed in range(80):
            vm = VM(unfenced, make_model("pso"))
            FlushDelayScheduler(seed=seed, flush_prob=0.3).run(vm)
            if vm.threads[0].result == 1:
                saw_bad = True
        assert saw_bad, "PSO reordering never observed without fence"
        for seed in range(80):
            vm = VM(fenced, make_model("pso"))
            FlushDelayScheduler(seed=seed, flush_prob=0.3).run(vm)
            assert vm.threads[0].result == 0


class TestForkJoinSelf:
    def test_instructions_lowered(self):
        src = """
        void w(int x) { }
        int main() { int t = fork(w, 1); join(t); return self(); }
        """
        instrs = instrs_of(src)
        assert any(isinstance(i, Fork) for i in instrs)
        assert any(isinstance(i, Join) for i in instrs)

    def test_fork_arity_checked(self):
        with pytest.raises(CompileError, match="thread arguments"):
            compile_source("void w(int x) { } int main() "
                           "{ fork(w); return 0; }")

    def test_fork_requires_function_name(self):
        with pytest.raises(CompileError):
            compile_source("int main() { fork(3); return 0; }")

    def test_main_tid_is_zero(self):
        assert result_of("int main() { return self(); }") == 0


class TestPageAllocFree:
    def test_lowered(self):
        instrs = instrs_of("int main() { int* p = pagealloc(4); "
                           "pagefree(p); return 0; }")
        assert any(isinstance(i, PageAlloc) for i in instrs)

    def test_distinct_allocations(self):
        src = """
        int main() {
          int* a = pagealloc(2);
          int* b = pagealloc(2);
          return a != b;
        }
        """
        assert result_of(src) == 1


class TestLockUnlock:
    def test_mutual_exclusion(self):
        src = """
        int L; int C;
        void w() {
          for (int i = 0; i < 20; i = i + 1) {
            lock(&L);
            int c = C;
            C = c + 1;
            unlock(&L);
          }
        }
        int main() {
          int t1 = fork(w);
          int t2 = fork(w);
          join(t1);
          join(t2);
          return C;
        }
        """
        module = compile_source(src)
        for model_name in ("sc", "tso", "pso"):
            for seed in range(6):
                vm = VM(module, make_model(model_name))
                FlushDelayScheduler(seed=seed, flush_prob=0.4).run(vm)
                assert vm.threads[0].result == 40, (model_name, seed)

    def test_lock_emits_fenced_cas_loop(self):
        instrs = instrs_of("int L; int main() { lock(&L); unlock(&L); "
                           "return 0; }")
        fences = [i for i in instrs if isinstance(i, Fence)]
        cases = [i for i in instrs if isinstance(i, Cas)]
        assert len(fences) == 4  # two per lock / unlock
        assert len(cases) == 1

    def test_unlock_publishes_critical_stores_under_pso(self):
        src = """
        int L; int A; int B; int BAD;
        void reader() {
          while (B == 0) {}
          if (A == 0) { BAD = 1; }
        }
        int main() {
          int t = fork(reader);
          lock(&L);
          A = 1;
          B = 1;
          unlock(&L);
          join(t);
          return BAD;
        }
        """
        # B == 1 can only become visible after unlock's closing fence,
        # which also flushed A... actually both flush at unlock; but B may
        # flush before A *within* the critical section under PSO.  The
        # reader may therefore see B=1, A=0 -- this is the known PSO lock
        # caveat the paper handles by fencing lock bodies; here we only
        # check executions terminate and BAD is 0 or 1.
        module = compile_source(src)
        for seed in range(30):
            vm = VM(module, make_model("pso"))
            FlushDelayScheduler(seed=seed, flush_prob=0.4).run(vm)
            assert vm.threads[0].result in (0, 1)
