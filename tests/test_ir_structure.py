"""Unit tests for Function / Module / IRBuilder / printer."""

import pytest

from repro.ir import (
    Const,
    FenceKind,
    Function,
    GlobalVar,
    IRBuilder,
    Module,
    Reg,
    Sym,
    format_function,
    format_module,
)
from repro.ir import instructions as ins


def build_linear_function(module, name="f", n=3):
    builder = IRBuilder(module, name)
    for i in range(n):
        builder.const(Reg("r%d" % i), i)
    builder.ret()
    return builder.finish()


class TestFunction:
    def test_label_index(self):
        m = Module()
        fn = build_linear_function(m)
        for i, instr in enumerate(fn.body):
            assert fn.index_of(instr.label) == i
            assert fn.instr_at(instr.label) is instr

    def test_insert_after_keeps_labels_valid(self):
        m = Module()
        fn = build_linear_function(m)
        first = fn.body[0].label
        nop = ins.Nop(m.new_label())
        fn.insert_after(first, nop)
        assert fn.index_of(nop.label) == 1
        assert fn.index_of(first) == 0

    def test_remove(self):
        m = Module()
        fn = build_linear_function(m)
        victim = fn.body[1].label
        removed = fn.remove(victim)
        assert removed.label == victim
        assert not fn.has_label(victim)

    def test_duplicate_labels_detected(self):
        fn = Function("g")
        fn.body = [ins.Nop(0), ins.Nop(0)]
        fn.invalidate_index()
        with pytest.raises(ValueError):
            fn.label_index


class TestModule:
    def test_labels_unique_across_functions(self):
        m = Module()
        build_linear_function(m, "a")
        build_linear_function(m, "b")
        labels = [i.label for fn in m.functions.values() for i in fn.body]
        assert len(labels) == len(set(labels))

    def test_duplicate_global_rejected(self):
        m = Module()
        m.add_global(GlobalVar("X"))
        with pytest.raises(ValueError):
            m.add_global(GlobalVar("X"))

    def test_duplicate_function_rejected(self):
        m = Module()
        build_linear_function(m, "a")
        with pytest.raises(ValueError):
            build_linear_function(m, "a")

    def test_find_instr(self):
        m = Module()
        fn = build_linear_function(m, "a")
        label = fn.body[1].label
        found_fn, found = m.find_instr(label)
        assert found_fn is fn
        assert found.label == label
        with pytest.raises(KeyError):
            m.find_instr(999999)

    def test_clone_preserves_labels_and_isolates_mutation(self):
        m = Module("orig")
        m.add_global(GlobalVar("X", 2, [7]))
        fn = build_linear_function(m)
        clone = m.clone()
        assert clone.function("f").labels() == fn.labels()
        assert clone.globals["X"].init == [7]
        # Mutating the clone must not touch the original.
        clone.function("f").remove(fn.body[0].label)
        assert len(fn.body) == 4
        # New labels in the clone do not collide with original labels.
        assert clone.new_label() == m.new_label()

    def test_counts(self):
        m = Module()
        b = IRBuilder(m, "f")
        b.store(Const(1), Sym("X"))
        b.store(Const(2), Sym("X"))
        b.load(Reg("r"), Sym("X"))
        b.ret()
        m.add_global(GlobalVar("X"))
        b.finish()
        assert m.store_count() == 2
        assert m.instruction_count() == 4


class TestBuilder:
    def test_forward_branch_resolution(self):
        m = Module()
        b = IRBuilder(m, "f")
        end = b.block_label("end")
        b.br(end)
        b.const(Reg("dead"), 0)
        b.bind(end)
        b.ret()
        fn = b.finish()
        br = fn.body[0]
        assert isinstance(br, ins.Br)
        target = fn.instr_at(br.target)
        assert isinstance(target, ins.Ret)

    def test_label_bound_at_end_gets_anchor(self):
        m = Module()
        b = IRBuilder(m, "f")
        end = b.block_label("end")
        b.br(end)
        b.bind(end)
        fn = b.finish()
        # Branch resolves into the function and a terminator exists.
        assert fn.body[-1].is_terminator()
        br = fn.body[0]
        assert fn.has_label(br.target)

    def test_implicit_return_appended(self):
        m = Module()
        b = IRBuilder(m, "f")
        b.const(Reg("x"), 1)
        fn = b.finish()
        assert isinstance(fn.body[-1], ins.Ret)

    def test_unbound_label_rejected(self):
        m = Module()
        b = IRBuilder(m, "f")
        dangling = b.block_label()
        b.br(dangling)
        with pytest.raises(ValueError):
            b.finish()

    def test_double_bind_rejected(self):
        m = Module()
        b = IRBuilder(m, "f")
        label = b.block_label()
        b.bind(label)
        b.nop()
        with pytest.raises(ValueError):
            b.bind(label)

    def test_tmp_registers_unique(self):
        m = Module()
        b = IRBuilder(m, "f")
        names = {b.tmp().name for _ in range(100)}
        assert len(names) == 100


class TestPrinter:
    def test_format_function_lists_instructions(self):
        m = Module()
        fn = build_linear_function(m, "f", 2)
        text = format_function(fn)
        assert text.startswith("func f(")
        assert text.count("\n") == len(fn.body) + 1

    def test_format_module_includes_globals(self):
        m = Module("demo")
        m.add_global(GlobalVar("X", 4))
        build_linear_function(m)
        text = format_module(m)
        assert "module demo" in text
        assert "global X[4]" in text
        assert "func f" in text
