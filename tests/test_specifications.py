"""Unit tests for the top-level specification classes."""

from repro.spec import (
    EMPTY,
    GarbageFreeSpec,
    LinearizabilitySpec,
    MemorySafetySpec,
    QueueSpec,
    SequentialConsistencySpec,
)
from repro.vm.driver import ExecutionResult, ExecutionStatus
from repro.vm.events import History


def make_result(status=ExecutionStatus.OK, ops=(), error=None):
    h = History()
    for (tid, name, args, result, call, ret) in ops:
        op = h.begin(tid, name, args, call)
        op.result = result
        op.ret_seq = ret
    return ExecutionResult(status, h, [], steps=10, error=error)


class TestMemorySafetySpec:
    def test_ok_execution_passes(self):
        assert MemorySafetySpec().check(make_result()) is None

    def test_memory_violation_reported(self):
        result = make_result(ExecutionStatus.MEMORY_VIOLATION,
                             error="NULL deref")
        message = MemorySafetySpec().check(result)
        assert message is not None
        assert "NULL deref" in message

    def test_assertion_violation_reported(self):
        result = make_result(ExecutionStatus.ASSERTION_VIOLATION,
                             error="assert at line 3")
        assert MemorySafetySpec().check(result) is not None


class TestHistorySpecs:
    def ops_fifo_ok(self):
        return [
            (0, "enqueue", (1,), 0, 1, 2),
            (1, "dequeue", (), 1, 3, 4),
        ]

    def ops_stale_empty(self):
        # Non-overlapping enqueue then EMPTY dequeue: SC-legal, not
        # linearizable.
        return [
            (0, "enqueue", (1,), 0, 1, 2),
            (1, "dequeue", (), EMPTY, 5, 6),
        ]

    def test_sc_accepts_legal_history(self):
        spec = SequentialConsistencySpec(QueueSpec())
        assert spec.check(make_result(ops=self.ops_fifo_ok())) is None

    def test_sc_weaker_than_lin(self):
        result = make_result(ops=self.ops_stale_empty())
        assert SequentialConsistencySpec(QueueSpec()).check(result) is None
        assert LinearizabilitySpec(QueueSpec()).check(result) is not None

    def test_crash_dominates_history_check(self):
        result = make_result(ExecutionStatus.MEMORY_VIOLATION,
                             ops=self.ops_fifo_ok(), error="boom")
        assert SequentialConsistencySpec(QueueSpec()).check(result) is not None
        assert LinearizabilitySpec(QueueSpec()).check(result) is not None

    def test_sc_rejects_garbage_value(self):
        result = make_result(ops=[(0, "dequeue", (), 42, 1, 2)])
        assert SequentialConsistencySpec(QueueSpec()).check(result) is not None


class TestGarbageFreeSpec:
    def test_returned_task_must_have_been_put(self):
        spec = GarbageFreeSpec(multiplicity=None)
        ok = make_result(ops=[
            (0, "put", (7,), 0, 1, 2),
            (1, "steal", (), 7, 3, 4),
        ])
        assert spec.check(ok) is None
        bad = make_result(ops=[
            (0, "put", (7,), 0, 1, 2),
            (1, "steal", (), 9, 3, 4),
        ])
        assert spec.check(bad) is not None

    def test_overlapping_put_and_steal_allowed(self):
        # steal invoked before put but returning after it started: legal.
        spec = GarbageFreeSpec(multiplicity=None)
        result = make_result(ops=[
            (1, "steal", (), 7, 1, 10),
            (0, "put", (7,), 0, 2, 3),
        ])
        assert spec.check(result) is None

    def test_value_returned_before_any_put_is_garbage(self):
        spec = GarbageFreeSpec(multiplicity=None)
        result = make_result(ops=[
            (1, "steal", (), 7, 1, 2),
            (0, "put", (7,), 0, 5, 6),
        ])
        assert spec.check(result) is not None

    def test_duplicates_allowed_with_unbounded_multiplicity(self):
        spec = GarbageFreeSpec(multiplicity=None)
        result = make_result(ops=[
            (0, "put", (7,), 0, 1, 2),
            (0, "take", (), 7, 3, 4),
            (1, "steal", (), 7, 5, 6),
        ])
        assert spec.check(result) is None

    def test_duplicates_rejected_with_multiplicity_one(self):
        spec = GarbageFreeSpec(multiplicity=1)
        result = make_result(ops=[
            (0, "put", (7,), 0, 1, 2),
            (0, "take", (), 7, 3, 4),
            (1, "steal", (), 7, 5, 6),
        ])
        assert spec.check(result) is not None

    def test_empty_results_ignored(self):
        spec = GarbageFreeSpec(multiplicity=None)
        result = make_result(ops=[(1, "steal", (), EMPTY, 1, 2)])
        assert spec.check(result) is None

    def test_crash_reported(self):
        spec = GarbageFreeSpec()
        result = make_result(ExecutionStatus.MEMORY_VIOLATION, error="x")
        assert spec.check(result) is not None
