"""Unit tests for fence enforcement (Algorithm 2)."""

from repro.ir import Const, FenceKind, GlobalVar, IRBuilder, Module, Reg, Sym
from repro.ir.instructions import Fence
from repro.memory.predicates import OrderingPredicate
from repro.synth import enforce, synthesized_fences


def two_store_module():
    m = Module()
    m.add_global(GlobalVar("X"))
    m.add_global(GlobalVar("Y"))
    b = IRBuilder(m, "f")
    b.cur_line = 10
    s1 = b.store(Const(1), Sym("X"))
    b.cur_line = 11
    s2 = b.store(Const(2), Sym("Y"))
    b.cur_line = 12
    b.load(Reg("r"), Sym("X"))
    b.ret()
    b.finish()
    return m, s1, s2


class TestEnforce:
    def test_fence_inserted_after_store(self):
        m, s1, s2 = two_store_module()
        pred = OrderingPredicate(s1.label, s2.label, FenceKind.ST_ST)
        placements = enforce(m, [pred])
        assert len(placements) == 1
        fn = m.function("f")
        fence = fn.body[fn.index_of(s1.label) + 1]
        assert isinstance(fence, Fence)
        assert fence.kind is FenceKind.ST_ST
        assert fence.synthesized

    def test_placement_reports_source_lines(self):
        m, s1, s2 = two_store_module()
        pred = OrderingPredicate(s1.label, s2.label, FenceKind.ST_ST)
        placement = enforce(m, [pred])[0]
        assert placement.function == "f"
        assert placement.after_line == 10
        assert placement.before_line == 11
        assert placement.location() == "(f, 10:11)"

    def test_duplicate_predicate_inserts_once(self):
        m, s1, s2 = two_store_module()
        pred = OrderingPredicate(s1.label, s2.label, FenceKind.ST_ST)
        assert len(enforce(m, [pred])) == 1
        assert enforce(m, [pred]) == []
        assert len(synthesized_fences(m)) == 1

    def test_stronger_fence_replaces_nothing_but_adds(self):
        m, s1, s2 = two_store_module()
        weak = OrderingPredicate(s1.label, s2.label, FenceKind.ST_ST)
        strong = OrderingPredicate(s1.label, s2.label, FenceKind.ST_LD)
        enforce(m, [weak])
        placements = enforce(m, [strong])
        assert len(placements) == 1
        kinds = {f.kind for f in synthesized_fences(m)}
        assert FenceKind.ST_LD in kinds

    def test_merge_drops_adjacent_redundant_fences(self):
        m, s1, s2 = two_store_module()
        # Two predicates that would place fences after s1 (same spot via
        # merge): one directly, one after s2 but with nothing in between
        # except the other fence... construct back-to-back case:
        p1 = OrderingPredicate(s1.label, s2.label, FenceKind.FULL)
        placements = enforce(m, [p1], merge=True)
        assert len(placements) == 1
        # Insert a weaker one right after the same store: merge kills it.
        p2 = OrderingPredicate(s1.label, s2.label, FenceKind.ST_ST)
        assert enforce(m, [p2], merge=True) == []

    def test_synthesized_fences_ignores_source_fences(self):
        m = Module()
        m.add_global(GlobalVar("X"))
        b = IRBuilder(m, "f")
        b.fence(FenceKind.FULL)  # a programmer-written fence
        b.store(Const(1), Sym("X"))
        b.ret()
        b.finish()
        assert synthesized_fences(m) == []
