"""End-to-end tests of the synthesis engine on small litmus programs."""

import pytest

from repro.minic import compile_source
from repro.spec import MemorySafetySpec, RegisterSpec, SequentialConsistencySpec
from repro.synth import SynthesisConfig, SynthesisEngine, SynthesisOutcome

# Message passing through a data/flag pair: the classic PSO litmus.  The
# assert makes staleness a crash, so MemorySafetySpec suffices.
MP_ASSERT = """
int DATA;
int FLAG;

void reader() {
  while (FLAG == 0) {}
  assert(DATA == 1);
}

int main() {
  int t = fork(reader);
  DATA = 1;
  FLAG = 1;
  join(t);
  return 0;
}
"""

# Dekker-style store buffering: both threads can read 0 under TSO.
SB_ASSERT = """
int X; int Y;
int r1; int r2;

void t1() {
  X = 1;
  r1 = Y;
}

int main() {
  int t = fork(t1);
  Y = 1;
  r2 = X;
  join(t);
  assert(r1 == 1 || r2 == 1);
  return 0;
}
"""


def engine(model, k=300, rounds=8, seed=3, flush_prob=0.3, **kw):
    return SynthesisEngine(SynthesisConfig(
        memory_model=model, flush_prob=flush_prob,
        executions_per_round=k, max_rounds=rounds, seed=seed, **kw))


class TestMessagePassing:
    def test_pso_infers_store_store_fence(self):
        module = compile_source(MP_ASSERT)
        result = engine("pso").synthesize(module, MemorySafetySpec())
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.fence_count >= 1
        # The fence sits in main between the DATA and FLAG stores.
        locations = result.fence_locations()
        assert any("(main" in loc for loc in locations)

    def test_tso_needs_no_fence(self):
        module = compile_source(MP_ASSERT)
        result = engine("tso", flush_prob=0.1).synthesize(
            module, MemorySafetySpec())
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.fence_count == 0

    def test_repaired_program_is_clean(self):
        module = compile_source(MP_ASSERT)
        result = engine("pso").synthesize(module, MemorySafetySpec())
        checker = engine("pso", seed=1234)
        runs, violations, _ = checker.test_program(
            result.program, MemorySafetySpec(), executions=400)
        assert violations == 0


class TestStoreBuffering:
    def test_tso_infers_store_load_fence(self):
        module = compile_source(SB_ASSERT)
        result = engine("tso", flush_prob=0.1, k=400).synthesize(
            module, MemorySafetySpec())
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.fence_count >= 1
        kinds = {p.kind.value for p in result.placements}
        assert "st_ld" in kinds or "full" in kinds

    def test_sc_model_never_violates(self):
        module = compile_source(SB_ASSERT)
        result = engine("sc").synthesize(module, MemorySafetySpec())
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.fence_count == 0


class TestCannotFix:
    def test_logic_bug_is_unfixable(self):
        src = """
        int main() {
          assert(1 == 2);
          return 0;
        }
        """
        module = compile_source(src)
        result = engine("pso").synthesize(module, MemorySafetySpec())
        assert result.outcome is SynthesisOutcome.CANNOT_FIX
        assert result.fence_count == 0

    def test_abort_policy_stops_immediately(self):
        src = "int main() { assert(0); return 0; }"
        module = compile_source(src)
        eng = engine("pso", abort_on_unfixable=True)
        result = eng.synthesize(module, MemorySafetySpec())
        assert result.outcome is SynthesisOutcome.CANNOT_FIX
        assert result.rounds[0].unfixable == 1


class TestRounds:
    def test_round_reports_populated(self):
        module = compile_source(MP_ASSERT)
        result = engine("pso").synthesize(module, MemorySafetySpec())
        first = result.rounds[0]
        assert first.executions > 0
        assert first.violations > 0
        assert first.clauses > 0
        last = result.rounds[-1]
        assert last.violations == 0

    def test_total_executions_sum(self):
        module = compile_source(MP_ASSERT)
        result = engine("pso", k=123).synthesize(module, MemorySafetySpec())
        assert result.total_executions == sum(
            r.executions for r in result.rounds)
        assert result.total_executions % 123 == 0

    def test_round_limit_outcome(self):
        # Zero rounds allowed: engine gives up immediately.
        module = compile_source(MP_ASSERT)
        eng = SynthesisEngine(SynthesisConfig(
            memory_model="pso", max_rounds=0))
        result = eng.synthesize(module, MemorySafetySpec())
        assert result.outcome is SynthesisOutcome.ROUND_LIMIT


class TestCheckOnlyMode:
    def test_test_program_does_not_mutate(self):
        module = compile_source(MP_ASSERT)
        before = module.instruction_count()
        eng = engine("pso")
        runs, violations, example = eng.test_program(
            module, MemorySafetySpec(), executions=200)
        assert runs == 200
        assert violations > 0
        assert example is not None
        assert module.instruction_count() == before

    def test_history_spec_in_check_mode(self):
        src = """
        int R;
        int read() { return R; }
        void write(int v) { R = v; }
        int main() { write(1); read(); return 0; }
        """
        module = compile_source(src)
        eng = engine("sc")
        runs, violations, _ = eng.test_program(
            module, SequentialConsistencySpec(RegisterSpec()),
            operations=("read", "write"), executions=50)
        assert violations == 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        module = compile_source(MP_ASSERT)
        r1 = engine("pso", seed=77).synthesize(module, MemorySafetySpec())
        r2 = engine("pso", seed=77).synthesize(module, MemorySafetySpec())
        assert r1.fence_locations() == r2.fence_locations()
        assert [r.violations for r in r1.rounds] == \
            [r.violations for r in r2.rounds]
