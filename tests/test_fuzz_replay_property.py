"""Property: witness replay is deterministic on fuzz-generated programs.

For any generated program and any scheduler seed, recording an execution
with :class:`TracingScheduler` and replaying its trace decision-for-
decision on a fresh VM must reproduce the identical event trace, status,
and outcome — and re-recording with the same seed on another fresh VM
must agree too.  This is the reproducibility contract the synthesis
engine's witnesses (and the fuzz campaign's reproducers) stand on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz import ProgramGenerator
from repro.memory import make_model
from repro.sched.replay import ReplayScheduler, TracingScheduler
from repro.vm.driver import run_execution

pytestmark = pytest.mark.fuzz

GENERATOR = ProgramGenerator()


def record(module, model_name, sched_seed):
    tracer = TracingScheduler(seed=sched_seed, flush_prob=0.3)
    result = run_execution(module, make_model(model_name), tracer,
                           collect_predicates=False)
    return result, tracer.trace


@settings(max_examples=20, deadline=None)
@given(program_seed=st.integers(0, 60), sched_seed=st.integers(0, 9),
       model_name=st.sampled_from(["tso", "pso"]))
def test_trace_and_outcome_replay_identically(program_seed, sched_seed,
                                              model_name):
    module = GENERATOR.generate(program_seed).compile()

    # Two independent recordings on fresh VMs agree exactly.
    first, first_trace = record(module, model_name, sched_seed)
    second, second_trace = record(module, model_name, sched_seed)
    assert first_trace == second_trace
    assert first.status == second.status
    assert first.error == second.error
    assert first.thread_results == second.thread_results

    # Replaying the recorded trace reproduces the execution.
    replayed = run_execution(module, make_model(model_name),
                             ReplayScheduler(first_trace),
                             collect_predicates=False)
    assert replayed.status == first.status
    assert replayed.error == first.error
    assert replayed.thread_results == first.thread_results
