"""Unit tests for the IR optimisation passes."""

import pytest

from repro.algorithms import ALGORITHMS
from repro.ir import Const, GlobalVar, IRBuilder, Module, Reg, Sym
from repro.ir import instructions as ins
from repro.ir.passes import (
    fold_constants,
    optimize_module,
    remove_dead_registers,
    remove_unreachable,
)
from repro.ir.verifier import verify_module
from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import RoundRobinScheduler
from repro.vm import VM


def run_main(module, entry="main"):
    vm = VM(module, make_model("sc"), entry=entry)
    RoundRobinScheduler().run(vm)
    return vm.threads[0].result


class TestConstantFolding:
    def test_binop_folded(self):
        m = Module()
        b = IRBuilder(m, "f")
        b.const(Reg("a"), 2)
        b.const(Reg("b"), 3)
        b.binop(Reg("c"), "mul", Reg("a"), Reg("b"))
        b.ret(Reg("c"))
        fn = b.finish()
        assert fold_constants(fn) >= 1
        folded = fn.body[2]
        assert isinstance(folded, ins.ConstInstr)
        assert folded.value == 6

    def test_division_by_zero_not_folded(self):
        m = Module()
        b = IRBuilder(m, "f")
        b.const(Reg("z"), 0)
        b.binop(Reg("c"), "div", Const(5), Reg("z"))
        b.ret(Reg("c"))
        fn = b.finish()
        fold_constants(fn)
        assert isinstance(fn.body[1], ins.BinOp)

    def test_constant_branch_becomes_unconditional(self):
        src = "int main() { if (1) { return 7; } return 8; }"
        module = compile_source(src, optimize=True)
        body = module.function("main").body
        assert not any(isinstance(i, ins.Cbr) for i in body)
        assert run_main(module) == 7

    def test_knowledge_killed_by_redefinition(self):
        m = Module()
        m.add_global(GlobalVar("X"))
        b = IRBuilder(m, "f")
        b.const(Reg("a"), 2)
        b.load(Reg("a"), Sym("X"))  # 'a' is no longer the constant 2
        b.binop(Reg("c"), "add", Reg("a"), Const(1))
        b.ret(Reg("c"))
        fn = b.finish()
        fold_constants(fn)
        assert isinstance(fn.body[2], ins.BinOp)

    def test_loads_never_folded(self):
        src = "int G = 5; int main() { return G + 1; }"
        module = compile_source(src, optimize=True)
        assert any(i.is_load() for i in module.function("main").body)


class TestUnreachable:
    def test_code_after_constant_branch_removed(self):
        src = """
        int main() {
          if (1) { return 1; }
          return 2;
        }
        """
        module = compile_source(src, optimize=True)
        rets = [i for i in module.function("main").body
                if isinstance(i, ins.Ret)]
        # The 'return 2' path is unreachable and eliminated.
        assert run_main(module) == 1
        assert len(rets) <= 2  # 'return 1' + builder's implicit return

    def test_reachable_code_preserved(self):
        src = "int main(int c) { if (c) { return 1; } return 2; }"
        module = compile_source(src, optimize=True)
        vm = VM(module, make_model("sc"), entry="main", entry_args=(0,))
        RoundRobinScheduler().run(vm)
        assert vm.threads[0].result == 2


class TestDeadRegisters:
    def test_unused_chain_removed(self):
        m = Module()
        b = IRBuilder(m, "f")
        b.const(Reg("a"), 1)
        b.binop(Reg("b"), "add", Reg("a"), Const(1))  # b unused
        b.ret(Const(0))
        fn = b.finish()
        removed = remove_dead_registers(fn)
        assert removed == 2  # both 'b' and then 'a' die
        assert len(fn.body) == 1

    def test_shared_stores_never_removed(self):
        src = """
        int G;
        int main() { G = 5; return 0; }
        """
        module = compile_source(src, optimize=True)
        assert any(i.is_store() for i in module.function("main").body)

    def test_branch_target_replaced_by_nop(self):
        m = Module()
        b = IRBuilder(m, "f")
        top = b.block_label("top")
        b.br(top)
        b.bind(top)
        b.const(Reg("dead"), 1)  # targeted by the branch, never read
        b.ret(Const(0))
        fn = b.finish()
        remove_dead_registers(fn)
        verify_module_single(m)
        target = fn.instr_at(fn.body[0].target)
        assert isinstance(target, ins.Nop)


def verify_module_single(m):
    verify_module(m)


class TestWholePrograms:
    @pytest.mark.parametrize("name", ["chase_lev", "msn_queue",
                                      "michael_allocator"])
    def test_optimized_benchmarks_verify(self, name):
        module = compile_source(ALGORITHMS[name].source, name,
                                optimize=True)
        verify_module(module)

    def test_optimization_shrinks_code(self):
        source = ALGORITHMS["chase_lev"].source
        plain = compile_source(source)
        optimized = compile_source(source, optimize=True)
        assert optimized.instruction_count() <= plain.instruction_count()

    def test_optimization_preserves_behaviour(self):
        bundle = ALGORITHMS["chase_lev"]
        extra = """
        int seqtest() {
          put(1); put(2); put(3);
          return take() * 100 + steal() * 10 + take();
        }
        """
        plain = compile_source(bundle.source + extra)
        optimized = compile_source(bundle.source + extra, optimize=True)
        assert run_main(plain, "seqtest") == run_main(optimized, "seqtest")

    def test_optimization_preserves_fence_inference(self):
        # The engine must find the same fence functions on optimized IR.
        from repro.spec import SequentialConsistencySpec, WSQDequeSpec
        from repro.synth import SynthesisConfig, SynthesisEngine

        bundle = ALGORITHMS["chase_lev"]
        module = compile_source(bundle.source, optimize=True)
        engine = SynthesisEngine(SynthesisConfig(
            memory_model="pso", flush_prob=0.2,
            executions_per_round=600, seed=7))
        result = engine.synthesize(
            module, SequentialConsistencySpec(WSQDequeSpec()),
            entries=bundle.entries, operations=bundle.operations)
        functions = {p.function for p in result.placements}
        assert "put" in functions
