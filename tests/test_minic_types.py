"""Unit tests for MiniC semantic types."""

import pytest

from repro.minic.types import (
    INT,
    VOID,
    ArrayType,
    FuncSig,
    PointerType,
    StructType,
)


class TestScalars:
    def test_int_properties(self):
        assert INT.size == 1
        assert INT.is_arithmetic()
        assert not INT.is_pointer()

    def test_void_properties(self):
        assert VOID.size == 0
        assert not VOID.is_arithmetic()


class TestPointer:
    def test_size_is_one_cell(self):
        assert PointerType(INT).size == 1

    def test_pointer_is_arithmetic(self):
        # MiniC treats pointers as weakly-typed integers.
        p = PointerType(INT)
        assert p.is_pointer()
        assert p.is_arithmetic()

    def test_nested_pointee(self):
        pp = PointerType(PointerType(INT))
        assert pp.pointee.pointee is INT

    def test_repr(self):
        assert repr(PointerType(INT)) == "int*"


class TestStruct:
    def test_field_offsets_sequential(self):
        s = StructType("S")
        s.add_field("a", INT)
        s.add_field("b", PointerType(INT))
        s.add_field("c", INT)
        assert s.field("a").offset == 0
        assert s.field("b").offset == 1
        assert s.field("c").offset == 2
        assert s.size == 3

    def test_duplicate_field_rejected(self):
        s = StructType("S")
        s.add_field("a", INT)
        with pytest.raises(ValueError):
            s.add_field("a", INT)

    def test_missing_field_is_none(self):
        s = StructType("S")
        assert s.field("nope") is None

    def test_struct_not_arithmetic(self):
        assert not StructType("S").is_arithmetic()

    def test_self_referential_via_pointer(self):
        s = StructType("Node")
        s.add_field("next", PointerType(s))
        assert s.field("next").type.pointee is s
        assert s.size == 1


class TestArray:
    def test_size(self):
        assert ArrayType(INT, 8).size == 8

    def test_struct_array_size(self):
        s = StructType("S")
        s.add_field("a", INT)
        s.add_field("b", INT)
        assert ArrayType(s, 3).size == 6

    def test_array_not_arithmetic(self):
        assert not ArrayType(INT, 4).is_arithmetic()


class TestFuncSig:
    def test_repr(self):
        sig = FuncSig("f", INT, [("a", INT), ("p", PointerType(INT))])
        text = repr(sig)
        assert "f(" in text
        assert "int*" in text
