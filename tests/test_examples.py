"""Smoke tests: every example script runs to completion."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, argv=()):
    path = os.path.join(EXAMPLES_DIR, name)
    old_argv = sys.argv
    sys.argv = [path] + list(argv)
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "Chase-Lev" in out
    assert "synthesized fences" in out


def test_custom_algorithm(capsys):
    run_example("custom_algorithm.py")
    out = capsys.readouterr().out
    assert "fence (push" in out
    assert "0 violations" in out


def test_spec_comparison(capsys):
    run_example("spec_comparison.py", ["lifo_wsq"])
    out = capsys.readouterr().out
    assert "lifo_wsq" in out
    assert "tso" in out and "pso" in out


def test_memory_model_explorer(capsys):
    run_example("memory_model_explorer.py")
    out = capsys.readouterr().out
    assert "relaxed behaviour" in out
    assert "Summary" in out


def test_exhaustive_litmus(capsys):
    run_example("exhaustive_litmus.py")
    out = capsys.readouterr().out
    assert "SB / Dekker" in out
    assert "exact" in out


@pytest.mark.slow
def test_full_workflow(capsys):
    run_example("full_workflow.py")
    out = capsys.readouterr().out
    assert "witness replay" in out
    assert "repaired program : ok" in out
