"""Tests for the random client generator and engine fuzzing."""

import pytest

from repro.algorithms import ALGORITHMS
from repro.clientgen import FAMILIES, generate_clients
from repro.synth import SynthesisConfig, SynthesisEngine, SynthesisOutcome


class TestGeneration:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_generated_clients_compile(self, name):
        generated = generate_clients(ALGORITHMS[name], count=3, seed=1)
        for entry in generated.entries:
            assert entry in generated.module.functions

    def test_deterministic_per_seed(self):
        a = generate_clients(ALGORITHMS["chase_lev"], seed=5)
        b = generate_clients(ALGORITHMS["chase_lev"], seed=5)
        assert a.source == b.source

    def test_different_seeds_differ(self):
        a = generate_clients(ALGORITHMS["chase_lev"], seed=5)
        b = generate_clients(ALGORITHMS["chase_lev"], seed=6)
        assert a.source != b.source

    def test_unique_values_for_mutators(self):
        generated = generate_clients(ALGORITHMS["chase_lev"], count=4,
                                     seed=2)
        import re
        values = re.findall(r"put\((\d+)\)", generated.source)
        assert len(values) == len(set(values))

    def test_owner_only_ops_stay_out_of_workers(self):
        generated = generate_clients(ALGORITHMS["chase_lev"], count=5,
                                     seed=3)
        for chunk in generated.source.split("// ---- generated")[1] \
                .split("int fuzz_client")[0].split("void fuzz_worker"):
            assert "put(" not in chunk.split("}")[0]

    def test_allocator_not_generatable(self):
        with pytest.raises(ValueError):
            generate_clients(ALGORITHMS["michael_allocator"])


class TestFuzzedCorrectness:
    @pytest.mark.parametrize("name", ["chase_lev", "msn_queue",
                                      "lazy_list"])
    def test_generated_clients_clean_under_sc(self, name):
        bundle = ALGORITHMS[name]
        generated = generate_clients(bundle, count=4, seed=11)
        engine = SynthesisEngine(SynthesisConfig(
            memory_model="sc", executions_per_round=200, seed=4))
        _runs, violations, example = engine.test_program(
            generated.module, bundle.spec(bundle.supports[-1]),
            entries=generated.entries, operations=bundle.operations)
        assert violations == 0, example

    def test_fuzzed_synthesis_finds_the_put_fence(self):
        # The core Chase-Lev PSO fence must be found regardless of which
        # random clients drive the engine.
        bundle = ALGORITHMS["chase_lev"]
        found_put = 0
        for seed in (1, 2, 3):
            generated = generate_clients(bundle, count=4, seed=seed,
                                         ops_per_side=3)
            engine = SynthesisEngine(SynthesisConfig(
                memory_model="pso", flush_prob=0.2,
                executions_per_round=500, max_rounds=10, seed=7))
            result = engine.synthesize(
                generated.module, bundle.spec("sc"),
                entries=generated.entries, operations=bundle.operations)
            if any(p.function == "put" for p in result.placements):
                found_put += 1
        assert found_put >= 2

    @pytest.mark.slow
    def test_fuzzed_repair_converges(self):
        bundle = ALGORITHMS["msn_queue"]
        generated = generate_clients(bundle, count=4, seed=9)
        engine = SynthesisEngine(SynthesisConfig(
            memory_model="pso", flush_prob=0.2,
            executions_per_round=500, max_rounds=12, seed=5))
        result = engine.synthesize(
            generated.module, bundle.spec("sc"),
            entries=generated.entries, operations=bundle.operations)
        assert result.outcome is SynthesisOutcome.CLEAN
