// repro fuzz reproducer (auto-generated, delta-debugged)
// seed: 1
// oracle fenced_sc under pso: fully-fenced outcomes diverge from SC (extra: [(0, 0)], lost: [])
// oracle synthesis under pso: repaired module still admits non-SC outcomes [(0, 0)] after 1 synthesis attempts
// statements: 4 (from 4)
int A;
int B;

int t1() {
  int r0 = 0;
  int r1 = 0;
  B = 1;
  r0 = A;
  return r0 * 10 + r1;
}

int main() {
  int h1 = fork(t1);
  int r0 = 0;
  int r1 = 0;
  A = 1;
  r0 = B;
  join(h1);
  return r0 * 10 + r1;
}
