// repro fuzz reproducer (auto-generated, delta-debugged)
// seed: 9001
// oracle inclusion under pso: TSO outcomes [(21, 0)] not reproducible under PSO
// statements: 4 (from 4)
int A;

int t1() {
  int r0 = 0;
  int r1 = 0;
  A = 1;
  A = 2;
  return r0 * 10 + r1;
}

int main() {
  int h1 = fork(t1);
  int r0 = 0;
  int r1 = 0;
  r0 = A;
  r1 = A;
  join(h1);
  return r0 * 10 + r1;
}
