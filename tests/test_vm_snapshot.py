"""VM snapshot/restore: the foundation of the fork-and-backtrack DFS.

A snapshot must be a complete, independent copy of the execution state:
restoring it (any number of times) must reproduce the exact behaviour of
a fresh run replayed to the same point, under every memory model.
"""

import pytest

from repro.memory.models import make_model
from repro.minic import compile_source
from repro.vm.compile import CompiledVM, make_vm
from repro.vm.interp import VM

SB_SOURCE = """
int X; int Y;
int t1() { X = 1; int r = Y; return r; }
int main() {
  int t = fork(t1);
  Y = 1;
  int r = X;
  join(t);
  return r;
}
"""

OP_SOURCE = """
int X;
int bump() { X = X + 1; return X; }
int main() {
  int a = bump();
  int b = bump();
  return a + b;
}
"""

MODELS = ["sc", "tso", "pso"]


def _drive(vm, steps):
    """Round-robin *steps* enabled-thread steps (deterministic)."""
    for _ in range(steps):
        enabled = vm.enabled_tids()
        if not enabled:
            return
        vm.step(enabled[0])


def _run_to_end(vm):
    while True:
        enabled = vm.enabled_tids()
        if enabled:
            vm.step(enabled[0])
        elif vm.tids_with_pending():
            vm.flush_one(vm.tids_with_pending()[0])
        else:
            return tuple(vm.threads[tid].result for tid in sorted(vm.threads))


def _observable_state(vm):
    return (
        {tid: (t.status.value, t.join_target, t.result,
               [(f.fn.name, f.ip, dict(f.regs)) for f in t.frames])
         for tid, t in vm.threads.items()},
        vm.memory.fingerprint(),
        vm.model.fingerprint(),
        vm.steps, vm.seq, vm.flushes, vm._next_tid,
    )


@pytest.mark.parametrize("model", MODELS)
def test_snapshot_restore_roundtrip(model):
    module = compile_source(SB_SOURCE, "sb")
    vm = VM(module, make_model(model), max_steps=500)
    _drive(vm, 6)
    snap = vm.snapshot()
    before = _observable_state(vm)

    first = _run_to_end(vm)
    assert _observable_state(vm) != before  # execution really moved

    vm.restore(snap)
    assert _observable_state(vm) == before
    second = _run_to_end(vm)
    assert second == first  # deterministic continuation reproduced


@pytest.mark.parametrize("model", MODELS)
def test_snapshot_is_isolated_from_execution(model):
    """Running past a snapshot must not mutate the snapshot."""
    module = compile_source(SB_SOURCE, "sb")
    vm = VM(module, make_model(model), max_steps=500)
    _drive(vm, 5)
    snap = vm.snapshot()
    reference = vm.snapshot()
    _run_to_end(vm)

    vm.restore(snap)
    restored = _observable_state(vm)
    vm.restore(reference)
    assert _observable_state(vm) == restored


@pytest.mark.parametrize("model", MODELS)
def test_consume_restore_matches_copy_restore(model):
    module = compile_source(SB_SOURCE, "sb")
    vm = VM(module, make_model(model), max_steps=500)
    _drive(vm, 6)
    snap = vm.snapshot()
    expected = _observable_state(vm)
    _run_to_end(vm)
    vm.restore(snap, consume=True)
    assert _observable_state(vm) == expected
    assert _run_to_end(vm) is not None


@pytest.mark.parametrize("model", MODELS)
def test_restore_rebuilds_scheduling_sets(model):
    """enabled_tids/tids_with_pending are incremental sets; a restore
    must leave them consistent with a full scan of the thread table."""
    module = compile_source(SB_SOURCE, "sb")
    vm = VM(module, make_model(model), max_steps=500)
    _drive(vm, 4)
    snap = vm.snapshot()
    _run_to_end(vm)
    vm.restore(snap)

    runnable_scan = sorted(
        tid for tid, t in vm.threads.items()
        if t.status.value == "runnable"
        or (t.status.value == "blocked_join"
            and vm.threads[t.join_target].finished))
    assert vm.enabled_tids() == runnable_scan
    pending_scan = sorted(tid for tid in vm.threads
                          if vm.model.has_pending(tid))
    assert vm.tids_with_pending() == pending_scan


def test_history_cloned_with_inflight_operations():
    """Snapshots taken inside a recorded operation remap the frame's
    op_record onto the cloned history, so completing the restored run
    does not retroactively complete the original history's record."""
    module = compile_source(OP_SOURCE, "ops")
    vm = VM(module, make_model("sc"), operations=("bump",), max_steps=500)
    # Step until we are inside the first bump() call.
    while not any(f.op_record is not None
                  for t in vm.threads.values() for f in t.frames):
        vm.step(vm.enabled_tids()[0])
    snap = vm.snapshot()
    in_flight = [op for op in vm.history if not op.complete]
    assert in_flight, "expected an in-flight operation"

    _run_to_end(vm)
    assert all(op.complete for op in vm.history)
    finished_history = vm.history

    vm.restore(snap)
    assert vm.history is not finished_history
    assert any(not op.complete for op in vm.history)
    frames = [f for t in vm.threads.values() for f in t.frames
              if f.op_record is not None]
    for frame in frames:
        assert frame.op_record in list(vm.history)
        assert frame.op_record not in list(finished_history)
    _run_to_end(vm)
    assert all(op.complete for op in vm.history)


# ----------------------------------------------------------------------
# Compiled backend (repro.vm.compile): snapshots must stay valid across
# closure-compiled execution, including fused superinstruction runs.

FUSED_SOURCE = """
int X;
int main() {
  int a = 1;
  int b = 2;
  int c = a + b;
  int d = c * 3;
  int e = d - a;
  X = e;
  return e + c;
}
"""


def _run_local_to_end(vm):
    """Finish the run preferring bulk run_local bursts (fused path)."""
    while True:
        enabled = vm.enabled_tids()
        if enabled:
            tid = enabled[0]
            if not vm.run_local(tid, 1_000):
                vm.step(tid)
        elif vm.tids_with_pending():
            vm.flush_one(vm.tids_with_pending()[0])
        else:
            return tuple(vm.threads[tid].result for tid in sorted(vm.threads))


@pytest.mark.parametrize("model", MODELS)
def test_compiled_snapshot_restore_roundtrip(model):
    module = compile_source(SB_SOURCE, "sb")
    vm = make_vm(module, make_model(model), compiled=True, max_steps=500)
    assert isinstance(vm, CompiledVM)
    _drive(vm, 6)
    snap = vm.snapshot()
    before = _observable_state(vm)

    first = _run_to_end(vm)
    vm.restore(snap)
    assert _observable_state(vm) == before
    assert _run_to_end(vm) == first


@pytest.mark.parametrize("model", MODELS)
def test_compiled_and_interpreted_snapshots_agree(model):
    """Step-for-step, both backends expose the same observable state."""
    module = compile_source(SB_SOURCE, "sb")
    vms = [make_vm(module, make_model(model), compiled=c, max_steps=500)
           for c in (False, True)]
    for _ in range(6):
        for vm in vms:
            _drive(vm, 1)
        assert _observable_state(vms[0]) == _observable_state(vms[1])
    assert _run_to_end(vms[0]) == _run_to_end(vms[1])


def test_restore_mid_superinstruction_resumes_singly():
    """A snapshot taken at an interior offset of a fused run must restore
    and continue correctly: every offset keeps a single-op closure, so
    the burst loop re-enters the run one op at a time."""
    module = compile_source(FUSED_SOURCE, "fused")
    vm = make_vm(module, make_model("sc"), compiled=True, max_steps=500)
    code = vm._code_for(module.functions["main"])
    head = next(i for i, n in enumerate(code.ops) if n > 1)
    interior = head + 1  # inside the fused run, not at its head

    guard = 0
    while vm.threads[0].top.ip != interior:
        vm.step(0)
        guard += 1
        assert guard < 50, "never reached the fused run interior"
    snap = vm.snapshot()
    before = _observable_state(vm)

    first = _run_local_to_end(vm)
    vm.restore(snap)
    assert _observable_state(vm) == before
    second = _run_local_to_end(vm)
    assert second == first

    # And a plain single-step continuation agrees too.
    vm.restore(snap)
    assert _run_to_end(vm) == first


@pytest.mark.parametrize("model", ["tso", "pso"])
def test_snapshot_captures_buffered_stores(model):
    module = compile_source(SB_SOURCE, "sb")
    vm = VM(module, make_model(model), max_steps=500)
    # Step main until its store to Y is buffered.
    while not vm.model.has_pending(0):
        vm.step(0)
    snap = vm.snapshot()
    pending_before = vm.model.pending_addrs(0)
    vm.flush_one(0)
    assert vm.model.pending_addrs(0) != pending_before or \
        not vm.model.has_pending(0)
    vm.restore(snap)
    assert vm.model.pending_addrs(0) == pending_before
    assert vm.tids_with_pending() == [0]
