"""Exhaustive verification of the litmus catalog.

Every expected outcome set in :mod:`repro.litmus` is checked *exactly*
against the schedule explorer — the catalog is executable documentation
and this test keeps it honest.
"""

import pytest

from repro.litmus import LITMUS_TESTS
from repro.sched.exhaustive import explore


def thread_results(vm):
    return tuple(vm.threads[tid].result for tid in sorted(vm.threads))


@pytest.mark.parametrize("name", [
    # 2+2w explores ~100k paths under the relaxed models: slow-marked.
    pytest.param(name, marks=pytest.mark.slow) if name == "2+2w"
    else name
    for name in sorted(LITMUS_TESTS)])
@pytest.mark.parametrize("model", ["sc", "tso", "pso"])
def test_catalog_outcomes_exact(name, model):
    test = LITMUS_TESTS[name]
    module = test.compile()
    result = explore(module, model, outcome_fn=thread_results,
                     max_paths=60_000)
    assert result.complete, "budget too small for %s/%s" % (name, model)
    assert result.outcomes == test.expected[model], (name, model)


def test_relaxation_table():
    """The summary table in the module docstring."""
    allowing = {name: test.models_allowing_relaxation()
                for name, test in LITMUS_TESTS.items()}
    assert allowing["sb"] == ["pso", "tso"]
    assert allowing["mp"] == ["pso"]
    assert allowing["lb"] == []
    assert allowing["corr"] == []
    assert allowing["coww"] == []
    assert allowing["corw"] == []
    assert allowing["2+2w"] == ["pso"]
    assert allowing["sb_fenced"] == []
    assert allowing["sb_one_fence"] == ["pso", "tso"]
    assert allowing["mp_fenced"] == []


def test_catalog_programs_compile():
    for test in LITMUS_TESTS.values():
        module = test.compile()
        assert "main" in module.functions
