"""Exhaustive verification of the litmus catalog.

Every expected outcome set in :mod:`repro.litmus` is checked *exactly*
against the schedule explorer — the catalog is executable documentation
and this test keeps it honest.
"""

import pytest

from repro.litmus import LITMUS_TESTS


# The snapshot explorer's sleep+cache reduction makes even 2+2w (~30k
# replay paths under PSO) a few-path exploration, so the whole catalog
# runs unmarked; tests/test_explore_equivalence.py cross-checks the
# reduced engine against the replay baseline.
@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
@pytest.mark.parametrize("model", ["sc", "tso", "pso"])
def test_catalog_outcomes_exact(name, model):
    test = LITMUS_TESTS[name]
    result = test.explore(model)
    assert result.complete, "budget too small for %s/%s" % (name, model)
    assert result.outcomes == test.expected[model], (name, model)


def test_relaxation_table():
    """The summary table in the module docstring."""
    allowing = {name: test.models_allowing_relaxation()
                for name, test in LITMUS_TESTS.items()}
    assert allowing["sb"] == ["pso", "tso"]
    assert allowing["mp"] == ["pso"]
    assert allowing["lb"] == []
    assert allowing["corr"] == []
    assert allowing["coww"] == []
    assert allowing["corw"] == []
    assert allowing["2+2w"] == ["pso"]
    assert allowing["sb_fenced"] == []
    assert allowing["sb_one_fence"] == ["pso", "tso"]
    assert allowing["mp_fenced"] == []


def test_catalog_programs_compile():
    for test in LITMUS_TESTS.values():
        module = test.compile()
        assert "main" in module.functions
