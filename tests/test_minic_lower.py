"""Unit tests for MiniC lowering: compiled programs run correctly, and
semantic errors are rejected with useful messages."""

import pytest

from repro.memory import make_model
from repro.minic import CompileError, compile_source
from repro.sched import RoundRobinScheduler
from repro.vm import VM


def result_of(source, model="sc"):
    module = compile_source(source)
    vm = VM(module, make_model(model))
    RoundRobinScheduler().run(vm)
    return vm.threads[0].result


class TestGlobals:
    def test_scalar_init(self):
        assert result_of("int G = 41; int main() { return G + 1; }") == 42

    def test_const_expressions(self):
        src = """
        const A = 3;
        const B = A * 4 + 1;
        int main() { return B; }
        """
        assert result_of(src) == 13

    def test_negative_const(self):
        assert result_of("const E = 0 - 1; int main() { return E; }") == -1

    def test_array_indexing(self):
        src = """
        int arr[5];
        int main() {
          for (int i = 0; i < 5; i = i + 1) { arr[i] = i * i; }
          return arr[3] + arr[4];
        }
        """
        assert result_of(src) == 25

    def test_array_decays_to_pointer(self):
        src = """
        int arr[3];
        int main() {
          int* p = arr;
          p[1] = 7;
          return arr[1];
        }
        """
        assert result_of(src) == 7

    def test_address_of_global(self):
        src = """
        int G;
        int main() {
          int* p = &G;
          *p = 11;
          return G;
        }
        """
        assert result_of(src) == 11

    def test_address_of_array_element(self):
        src = """
        int arr[4];
        int main() {
          int* p = &arr[2];
          *p = 9;
          return arr[2];
        }
        """
        assert result_of(src) == 9


class TestStructs:
    SRC = """
    struct Pair { int a; int b; };
    struct Pair G;

    int main() {
      G.a = 3;
      G.b = 4;
      struct Pair* p = &G;
      p->a = p->a + 10;
      return p->a * 100 + G.b;
    }
    """

    def test_fields_via_dot_and_arrow(self):
        assert result_of(self.SRC) == 1304

    def test_sizeof(self):
        src = """
        struct Pair { int a; int b; };
        int main() { return sizeof(struct Pair) + sizeof(int); }
        """
        assert result_of(src) == 3

    def test_heap_structs(self):
        src = """
        struct Node { int v; struct Node* next; };
        int main() {
          struct Node* a = pagealloc(sizeof(struct Node));
          struct Node* b = pagealloc(sizeof(struct Node));
          a->v = 1;
          a->next = b;
          b->v = 2;
          b->next = 0;
          return a->next->v;
        }
        """
        assert result_of(src) == 2

    def test_pointer_arithmetic_scaled(self):
        src = """
        struct Pair { int a; int b; };
        int main() {
          struct Pair* base = pagealloc(sizeof(struct Pair) * 3);
          struct Pair* second = base + 1;
          second->a = 5;
          int* raw = base;
          return raw[2];
        }
        """
        assert result_of(src) == 5

    def test_pointer_difference(self):
        src = """
        struct Pair { int a; int b; };
        int main() {
          struct Pair* base = pagealloc(sizeof(struct Pair) * 4);
          struct Pair* p = base + 3;
          return p - base;
        }
        """
        assert result_of(src) == 3


class TestScoping:
    def test_block_shadowing(self):
        src = """
        int main() {
          int x = 1;
          { int x = 2; }
          return x;
        }
        """
        assert result_of(src) == 1

    def test_for_scope(self):
        src = """
        int main() {
          int i = 100;
          for (int i = 0; i < 3; i = i + 1) { }
          return i;
        }
        """
        assert result_of(src) == 100

    def test_param_use(self):
        src = "int add(int a, int b) { return a + b; } " \
              "int main() { return add(2, 3); }"
        assert result_of(src) == 5


class TestErrors:
    def err(self, source, pattern):
        with pytest.raises(CompileError, match=pattern):
            compile_source(source)

    def test_address_of_local(self):
        self.err("int main() { int x; int* p = &x; return 0; }",
                 "address of local")

    def test_unknown_variable(self):
        self.err("int main() { return nope; }", "unknown identifier")

    def test_unknown_function(self):
        self.err("int main() { return nope(); }", "unknown function")

    def test_call_arity(self):
        self.err("int f(int a) { return a; } int main() { return f(); }",
                 "expects 1")

    def test_duplicate_global(self):
        self.err("int X; int X;", "duplicate global")

    def test_duplicate_function(self):
        self.err("void f() { } void f() { }", "duplicate function")

    def test_duplicate_local(self):
        self.err("int main() { int x; int x; return 0; }",
                 "duplicate variable")

    def test_assign_to_const(self):
        self.err("const N = 3; int main() { N = 4; return 0; }",
                 "constant")

    def test_assign_to_array(self):
        self.err("int arr[3]; int main() { arr = 0; return 0; }",
                 "array")

    def test_struct_as_value(self):
        self.err("struct P { int a; }; struct P G; "
                 "int main() { return G; }", "struct")

    def test_local_struct_rejected(self):
        self.err("struct P { int a; }; int main() { struct P x; return 0; }",
                 "locals must be int or pointer")

    def test_nested_struct_field_rejected(self):
        self.err("struct A { int x; }; struct B { struct A inner; };",
                 "pointers")

    def test_unknown_struct(self):
        self.err("struct Nope* p;", "unknown struct")

    def test_unknown_field(self):
        self.err("struct P { int a; }; struct P G; "
                 "int main() { return G.b; }", "no field")

    def test_arrow_on_int(self):
        self.err("int main() { int x; return x->f; }", "non-struct")

    def test_void_call_as_value(self):
        self.err("void f() { } int main() { return f(); }",
                 "used as a value")

    def test_break_outside_loop(self):
        self.err("int main() { break; return 0; }", "outside")

    def test_void_function_returning_value(self):
        self.err("void f() { return 3; }", "void function")

    def test_non_constant_global_init(self):
        self.err("int A; int B = A; int main() { return 0; }",
                 "not a constant")

    def test_negative_array_length(self):
        self.err("int arr[0];", "positive")

    def test_error_carries_line_number(self):
        try:
            compile_source("int x;\nint main() {\n  return nope;\n}")
        except CompileError as exc:
            assert "line 3" in str(exc)
        else:
            pytest.fail("expected CompileError")


class TestLineNumbers:
    def test_instructions_tagged_with_source_lines(self):
        src = "int G;\nint main() {\n  G = 1;\n  return G;\n}"
        module = compile_source(src)
        store = next(i for i in module.function("main").body if i.is_store())
        assert store.src_line == 3
