"""Unit tests for DIR operand kinds."""

import pytest

from repro.ir.operands import Const, Reg, Sym, is_operand


class TestReg:
    def test_repr(self):
        assert repr(Reg("x")) == "%x"

    def test_equality(self):
        assert Reg("x") == Reg("x")
        assert Reg("x") != Reg("y")

    def test_not_equal_to_other_kinds(self):
        assert Reg("x") != Sym("x")
        assert Reg("x") != Const(1)

    def test_hashable(self):
        assert len({Reg("a"), Reg("a"), Reg("b")}) == 2


class TestConst:
    def test_repr(self):
        assert repr(Const(42)) == "42"
        assert repr(Const(-3)) == "-3"

    def test_value_coerced_to_int(self):
        assert Const(True).value == 1

    def test_equality(self):
        assert Const(5) == Const(5)
        assert Const(5) != Const(6)

    def test_hashable(self):
        assert len({Const(1), Const(1), Const(2)}) == 2


class TestSym:
    def test_repr(self):
        assert repr(Sym("G")) == "@G"

    def test_equality(self):
        assert Sym("G") == Sym("G")
        assert Sym("G") != Sym("H")

    def test_distinct_hash_domains(self):
        # A register and a symbol with the same name must not collide.
        assert hash(Reg("x")) != hash(Sym("x"))


class TestIsOperand:
    @pytest.mark.parametrize("value", [Reg("r"), Const(0), Sym("g")])
    def test_valid(self, value):
        assert is_operand(value)

    @pytest.mark.parametrize("value", [1, "x", None, 3.5, [Reg("r")]])
    def test_invalid(self, value):
        assert not is_operand(value)
