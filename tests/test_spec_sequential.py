"""Unit tests for the executable sequential specifications."""

from repro.spec import (
    EMPTY,
    AllocatorSpec,
    QueueSpec,
    RegisterSpec,
    SetSpec,
    StackSpec,
    WSQDequeSpec,
    WSQFifoSpec,
    WSQLifoSpec,
)


def apply_all(spec, ops):
    """Apply (name, args, result) triples; return list of ok flags."""
    state = spec.init()
    flags = []
    for (name, args, result) in ops:
        ok, state = spec.apply(state, name, tuple(args), result)
        flags.append(ok)
    return flags


class TestWSQDequeSpec:
    def test_put_take_lifo_at_tail(self):
        spec = WSQDequeSpec()
        assert apply_all(spec, [
            ("put", [1], 0), ("put", [2], 0),
            ("take", [], 2), ("take", [], 1), ("take", [], EMPTY),
        ]) == [True] * 5

    def test_steal_from_head(self):
        spec = WSQDequeSpec()
        assert apply_all(spec, [
            ("put", [1], 0), ("put", [2], 0),
            ("steal", [], 1), ("steal", [], 2), ("steal", [], EMPTY),
        ]) == [True] * 5

    def test_wrong_value_rejected(self):
        spec = WSQDequeSpec()
        assert apply_all(spec, [("put", [1], 0), ("take", [], 9)]) \
            == [True, False]

    def test_empty_must_return_empty(self):
        spec = WSQDequeSpec()
        assert apply_all(spec, [("take", [], 5)]) == [False]
        assert apply_all(spec, [("take", [], EMPTY)]) == [True]

    def test_unknown_op_rejected(self):
        spec = WSQDequeSpec()
        assert apply_all(spec, [("frob", [], 0)]) == [False]


class TestWSQFifoSpec:
    def test_take_and_steal_both_fifo(self):
        spec = WSQFifoSpec()
        assert apply_all(spec, [
            ("put", [1], 0), ("put", [2], 0),
            ("take", [], 1), ("steal", [], 2),
        ]) == [True] * 4

    def test_lifo_result_rejected(self):
        spec = WSQFifoSpec()
        assert apply_all(spec, [
            ("put", [1], 0), ("put", [2], 0), ("take", [], 2),
        ]) == [True, True, False]


class TestWSQLifoSpec:
    def test_all_ops_at_top(self):
        spec = WSQLifoSpec()
        assert apply_all(spec, [
            ("put", [1], 0), ("put", [2], 0),
            ("steal", [], 2), ("take", [], 1),
        ]) == [True] * 4


class TestQueueSpec:
    def test_fifo(self):
        spec = QueueSpec()
        assert apply_all(spec, [
            ("enqueue", [1], 0), ("enqueue", [2], 0),
            ("dequeue", [], 1), ("dequeue", [], 2),
            ("dequeue", [], EMPTY),
        ]) == [True] * 5

    def test_out_of_order_rejected(self):
        spec = QueueSpec()
        assert apply_all(spec, [
            ("enqueue", [1], 0), ("enqueue", [2], 0), ("dequeue", [], 2),
        ]) == [True, True, False]


class TestStackSpec:
    def test_lifo(self):
        spec = StackSpec()
        assert apply_all(spec, [
            ("push", [1], 0), ("push", [2], 0),
            ("pop", [], 2), ("pop", [], 1), ("pop", [], EMPTY),
        ]) == [True] * 5


class TestSetSpec:
    def test_add_remove_contains(self):
        spec = SetSpec()
        assert apply_all(spec, [
            ("add", [5], 1), ("add", [5], 0),
            ("contains", [5], 1), ("contains", [6], 0),
            ("remove", [5], 1), ("remove", [5], 0),
            ("contains", [5], 0),
        ]) == [True] * 7

    def test_wrong_membership_answer_rejected(self):
        spec = SetSpec()
        assert apply_all(spec, [("contains", [5], 1)]) == [False]
        assert apply_all(spec, [("add", [5], 1), ("contains", [5], 0)]) \
            == [True, False]


class TestAllocatorSpec:
    def test_fresh_addresses_legal(self):
        spec = AllocatorSpec()
        assert apply_all(spec, [
            ("malloc", [], 100), ("malloc", [], 200),
            ("free", [100], 0), ("malloc", [], 100),
        ]) == [True] * 4

    def test_duplicate_live_allocation_rejected(self):
        spec = AllocatorSpec()
        assert apply_all(spec, [
            ("malloc", [], 100), ("malloc", [], 100),
        ]) == [True, False]

    def test_null_malloc_rejected(self):
        spec = AllocatorSpec()
        assert apply_all(spec, [("malloc", [], 0)]) == [False]

    def test_free_of_unallocated_rejected(self):
        spec = AllocatorSpec()
        assert apply_all(spec, [("free", [100], 0)]) == [False]

    def test_double_free_rejected(self):
        spec = AllocatorSpec()
        assert apply_all(spec, [
            ("malloc", [], 100), ("free", [100], 0), ("free", [100], 0),
        ]) == [True, True, False]


class TestRegisterSpec:
    def test_read_sees_last_write(self):
        spec = RegisterSpec(initial=7)
        assert apply_all(spec, [
            ("read", [], 7), ("write", [9], 0), ("read", [], 9),
        ]) == [True] * 3

    def test_stale_read_rejected(self):
        spec = RegisterSpec()
        assert apply_all(spec, [("write", [9], 0), ("read", [], 0)]) \
            == [True, False]


class TestStatePurity:
    def test_apply_does_not_mutate_input_state(self):
        spec = SetSpec()
        s0 = spec.init()
        spec.apply(s0, "add", (5,), 1)
        ok, _ = spec.apply(s0, "contains", (5,), 0)
        assert ok  # s0 unchanged: 5 still absent

    def test_states_hashable(self):
        for spec in (WSQDequeSpec(), QueueSpec(), SetSpec(),
                     AllocatorSpec(), RegisterSpec(), StackSpec()):
            state = spec.init()
            hash(state)
            ok, state2 = spec.apply(state, "put", (1,), 0)
            hash(state2)
