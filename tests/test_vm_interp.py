"""Unit tests for the DIR interpreter (via MiniC programs and raw IR)."""

import pytest

from repro.ir import Const, GlobalVar, IRBuilder, Module, Reg, Sym
from repro.minic import compile_source
from repro.sched import RoundRobinScheduler
from repro.vm import (
    ExecutionStatus,
    InterpreterError,
    VM,
    run_once,
)
from repro.memory import make_model


def run_main(source, model="sc", seed=0, **kwargs):
    module = compile_source(source)
    return run_once(module, model, seed=seed, **kwargs)


def main_result(source, model="sc", seed=0):
    """Run and return main's return value (via a result global)."""
    module = compile_source(source)
    model_obj = make_model(model)
    vm = VM(module, model_obj, entry="main")
    RoundRobinScheduler().run(vm)
    return vm.threads[0].result


class TestArithmetic:
    def test_basic_ops(self):
        src = "int main() { return (7 + 3) * 2 - 5; }"
        assert main_result(src) == 15

    def test_division_truncates_toward_zero(self):
        assert main_result("int main() { return (0 - 7) / 2; }") == -3
        assert main_result("int main() { return 7 / 2; }") == 3

    def test_modulo_sign_follows_dividend(self):
        assert main_result("int main() { return (0 - 7) % 3; }") == -1
        assert main_result("int main() { return 7 % 3; }") == 1

    def test_bitwise(self):
        assert main_result("int main() { return (12 & 10) | (1 ^ 3); }") == 10
        assert main_result("int main() { return 1 << 4; }") == 16
        assert main_result("int main() { return 64 >> 3; }") == 8

    def test_comparisons(self):
        assert main_result("int main() { return (1 < 2) + (2 <= 2) + "
                           "(3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }") == 4

    def test_unary(self):
        assert main_result("int main() { return -5 + !0 + !7 + ~0; }") == -5

    def test_division_by_zero_is_interpreter_error(self):
        module = compile_source("int Z; int main() { return 5 / Z; }")
        model = make_model("sc")
        vm = VM(module, model)
        with pytest.raises(InterpreterError):
            while not vm.all_finished():
                vm.step(0)


class TestControlFlow:
    def test_if_else(self):
        src = """
        int f(int x) { if (x > 10) { return 1; } else { return 2; } }
        int main() { return f(11) * 10 + f(3); }
        """
        assert main_result(src) == 12

    def test_while_loop(self):
        src = """
        int main() {
          int s = 0;
          int i = 0;
          while (i < 5) { s = s + i; i = i + 1; }
          return s;
        }
        """
        assert main_result(src) == 10

    def test_for_loop_with_break_continue(self):
        src = """
        int main() {
          int s = 0;
          for (int i = 0; i < 10; i = i + 1) {
            if (i == 7) { break; }
            if (i % 2 == 0) { continue; }
            s = s + i;
          }
          return s;
        }
        """
        assert main_result(src) == 1 + 3 + 5

    def test_short_circuit_avoids_rhs(self):
        # RHS would divide by zero if evaluated.
        src = """
        int Z;
        int main() {
          if (0 && (1 / Z)) { return 1; }
          if (1 || (1 / Z)) { return 2; }
          return 3;
        }
        """
        assert main_result(src) == 2

    def test_ternary(self):
        assert main_result("int main() { return 1 ? 42 : 7; }") == 42
        assert main_result("int main() { return 0 ? 42 : 7; }") == 7


class TestFunctions:
    def test_recursion(self):
        src = """
        int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
        """
        assert main_result(src) == 55

    def test_void_function_call(self):
        src = """
        int G;
        void set(int v) { G = v; }
        int main() { set(9); return G; }
        """
        assert main_result(src) == 9

    def test_uninitialised_local_reads_zero(self):
        assert main_result("int main() { int x; return x; }") == 0


class TestThreads:
    def test_fork_join_and_self(self):
        src = """
        int ids[4];
        void worker(int slot) { ids[slot] = self(); }
        int main() {
          int t1 = fork(worker, 1);
          int t2 = fork(worker, 2);
          join(t1);
          join(t2);
          return ids[1] * 10 + ids[2];
        }
        """
        assert main_result(src) == 12

    def test_join_makes_child_writes_visible(self):
        src = """
        int G;
        void w() { G = 123; }
        int main() { int t = fork(w); join(t); return G; }
        """
        for model in ("sc", "tso", "pso"):
            assert main_result(src, model) == 123

    def test_fork_publishes_parent_writes(self):
        src = """
        int G; int R;
        void r() { R = G; }
        int main() { G = 55; int t = fork(r); join(t); return R; }
        """
        for model in ("tso", "pso"):
            assert main_result(src, model) == 55

    def test_nested_forks(self):
        src = """
        int G;
        void leaf() { G = G + 1; }
        void mid() { int t = fork(leaf); join(t); G = G + 1; }
        int main() { int t = fork(mid); join(t); return G; }
        """
        assert main_result(src) == 2


class TestCas:
    def test_successful_cas(self):
        src = """
        int G = 5;
        int main() { int ok = cas(&G, 5, 9); return ok * 100 + G; }
        """
        assert main_result(src) == 109

    def test_failed_cas_leaves_memory(self):
        src = """
        int G = 5;
        int main() { int ok = cas(&G, 4, 9); return ok * 100 + G; }
        """
        assert main_result(src) == 5


class TestHistoryRecording:
    def test_operations_recorded_with_args_and_results(self):
        src = """
        int op(int x) { return x * 2; }
        int main() { op(3); op(4); return 0; }
        """
        module = compile_source(src)
        res = run_once(module, "sc", operations=("op",))
        ops = res.history.complete_ops()
        assert [(o.name, o.args, o.result) for o in ops] == [
            ("op", (3,), 6), ("op", (4,), 8)]
        assert ops[0].ret_seq < ops[1].call_seq

    def test_non_operations_not_recorded(self):
        src = """
        int helper() { return 1; }
        int op() { return helper(); }
        int main() { op(); return 0; }
        """
        module = compile_source(src)
        res = run_once(module, "sc", operations=("op",))
        assert [o.name for o in res.history] == ["op"]


class TestSafetyAndLimits:
    def test_null_deref_is_memory_violation(self):
        src = "int* P; int main() { return *P; }"
        res = run_main(src)
        assert res.status is ExecutionStatus.MEMORY_VIOLATION

    def test_out_of_bounds_store_flush_violates(self):
        src = """
        int arr[4];
        int main() { arr[9] = 1; return 0; }
        """
        res = run_main(src)
        assert res.status is ExecutionStatus.MEMORY_VIOLATION

    def test_use_after_free_flush_detected(self):
        src = """
        int main() {
          int* p = pagealloc(4);
          pagefree(p);
          *p = 7;
          return 0;
        }
        """
        res = run_main(src)
        assert res.status is ExecutionStatus.MEMORY_VIOLATION

    def test_assert_failure(self):
        res = run_main("int main() { assert(1 == 2); return 0; }")
        assert res.status is ExecutionStatus.ASSERTION_VIOLATION

    def test_assert_success(self):
        res = run_main("int main() { assert(2 == 2); return 0; }")
        assert res.status is ExecutionStatus.OK

    def test_infinite_loop_hits_step_limit(self):
        src = "int G; int main() { while (1) { G = G + 1; } return 0; }"
        module = compile_source(src)
        res = run_once(module, "sc", max_steps=500)
        assert res.status is ExecutionStatus.TIMEOUT

    def test_pagealloc_pointers_usable(self):
        src = """
        int main() {
          int* p = pagealloc(3);
          p[0] = 1;
          p[1] = 2;
          p[2] = 4;
          return p[0] + p[1] + p[2];
        }
        """
        assert main_result(src) == 7
