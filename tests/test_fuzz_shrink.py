"""The delta-debugging shrinker."""

import pytest

from repro.fuzz.generator import (
    FuzzProgram,
    LoadStmt,
    LoopStmt,
    ProgramGenerator,
    StoreStmt,
)
from repro.fuzz.oracles import thread_results
from repro.fuzz.shrink import shrink
from repro.sched.exhaustive import explore

pytestmark = pytest.mark.fuzz


def relaxed_under_pso(program):
    """The 'failure' used for shrinking: PSO admits non-SC outcomes."""
    module = program.compile()
    sc = explore(module, "sc", outcome_fn=thread_results, max_paths=50_000)
    pso = explore(module, "pso", outcome_fn=thread_results,
                  max_paths=50_000)
    return (sc.complete and pso.complete
            and bool(pso.outcomes - sc.outcomes))


def violating_program():
    gen = ProgramGenerator()
    for seed in range(50):
        program = gen.generate(seed)
        if relaxed_under_pso(program):
            return program
    pytest.fail("no violating program in the first 50 seeds")


def test_seeded_failure_shrinks_to_litmus_size():
    """Acceptance: a fuzz-found relaxed-behaviour witness minimizes to
    at most 10 MiniC statements, and the minimized program still
    exhibits the behaviour."""
    program = violating_program()
    shrunk = shrink(program, relaxed_under_pso)
    assert relaxed_under_pso(shrunk)
    assert shrunk.statement_count() <= 10
    assert shrunk.statement_count() <= program.statement_count()


def test_original_program_is_not_mutated():
    program = violating_program()
    before = program.source()
    shrink(program, relaxed_under_pso)
    assert program.source() == before


def test_always_failing_predicate_reaches_minimum():
    program = ProgramGenerator().generate(0)
    shrunk = shrink(program, lambda candidate: True)
    # Everything droppable goes: no forked threads, no statements.
    assert len(shrunk.threads) == 1
    assert shrunk.statement_count() == 0


def test_never_failing_predicate_returns_input_unchanged():
    program = ProgramGenerator().generate(0)
    shrunk = shrink(program, lambda candidate: False)
    assert shrunk.source() == program.source()


def test_loop_unwrapping_and_constant_shrinking():
    program = FuzzProgram(
        seed=0, global_vars=["A", "B"],
        threads=[[LoopStmt(3, [StoreStmt("A", 3)])],
                 [LoadStmt(0, "A"), StoreStmt("B", 2)]])

    def touches_a(candidate):
        return "A" in candidate.source()

    shrunk = shrink(program, touches_a)
    # The loop is gone (unwrapped or dropped); one A-access remains.
    assert shrunk.statement_count() <= 1
    assert "A" in shrunk.source()
