"""Differential validation of the closure-compiled VM backend.

:class:`repro.vm.compile.CompiledVM` must be observationally identical to
the generic interpreter in :mod:`repro.vm.interp` — same outcomes, same
operation histories, same ``avoid(p)`` predicates, same step/seq/flush
counters, same coverage sets, and (through the engine) the same
synthesized fences.  The interpreter is the audited reference; these
tests are what make the compiled backend trustworthy.

The fast subset runs in every tier-1 invocation; the full sweep (whole
litmus catalog, corpus reproducers, fresh fuzz programs per model) is
``slow``-marked and runs in CI's explore-equivalence job.
"""

import glob
import os

import pytest

from repro.fuzz.generator import ProgramGenerator
from repro.ir.instructions import FenceKind, Store
from repro.ir.passes.fences import insert_fence_after
from repro.litmus import LITMUS_TESTS, thread_results
from repro.memory.models import make_model
from repro.minic import compile_source
from repro.sched.explorer import explore
from repro.sched.flush_random import FlushDelayScheduler
from repro.spec import MemorySafetySpec
from repro.synth import SynthesisConfig, SynthesisEngine
from repro.vm.compile import (
    COMPILE_STATS,
    CompiledVM,
    code_for,
    compile_stats_delta,
    make_vm,
)
from repro.vm.driver import run_execution

MODELS = ["sc", "tso", "pso"]
FAST_LITMUS = ["sb", "mp", "coww", "sb_one_fence"]
CORPUS_FILES = sorted(glob.glob(
    os.path.join(os.path.dirname(__file__), "corpus", "*.c")))

#: Scheduler seeds per program for execution-level differentials.
EXEC_SEEDS = 8
#: Fresh fuzz programs per memory model for the slow sweep.
FUZZ_SEEDS = 10

SB_SOURCE = """
int X; int Y;
int t1() { X = 1; int r = Y; return r; }
int main() {
  int t = fork(t1);
  Y = 1;
  int r = X;
  join(t);
  return r;
}
"""

OP_SOURCE = """
int X;
int bump(int n) { X = X + n; return X; }
int main() {
  int a = bump(2);
  int b = bump(3);
  return a + b;
}
"""

MP_ASSERT = """
int DATA;
int FLAG;

void reader() {
  while (FLAG == 0) {}
  assert(DATA == 1);
}

int main() {
  int t = fork(reader);
  DATA = 1;
  FLAG = 1;
  join(t);
  return 0;
}
"""


# ----------------------------------------------------------------------
# Fingerprints

def _result_fingerprint(result):
    """Everything observable about one execution, as plain tuples."""
    history = tuple(
        (op.tid, op.name, tuple(op.args), op.result, op.call_seq,
         op.ret_seq)
        for op in result.history)
    predicates = tuple(
        (p.store_label, p.access_label, p.kind.value)
        for p in result.predicates)
    return (result.status.value, result.error, result.steps,
            result.flushes, result.thread_results, predicates, history)


def assert_executions_equivalent(module, model_name, operations=(),
                                 seeds=range(EXEC_SEEDS),
                                 flush_prob=0.4):
    """Seed-for-seed, the two backends produce identical executions."""
    for seed in seeds:
        prints = []
        for compiled in (False, True):
            scheduler = FlushDelayScheduler(seed=seed,
                                            flush_prob=flush_prob)
            coverage = set()
            result = run_execution(
                module, make_model(model_name), scheduler,
                operations=operations, coverage=coverage,
                max_steps=20_000, compiled=compiled)
            prints.append((_result_fingerprint(result),
                           frozenset(coverage)))
        assert prints[0] == prints[1], (model_name, seed)


def assert_explorations_equivalent(module, model_name, max_paths=60_000,
                                   max_steps=2_000):
    """Exhaustive enumeration agrees path-for-path across backends."""
    runs = []
    for compiled in (False, True):
        runs.append(explore(module, model_name, outcome_fn=thread_results,
                            max_paths=max_paths, max_steps=max_steps,
                            compiled=compiled))
    base, new = runs
    assert new.complete == base.complete, model_name
    assert new.outcomes == base.outcomes, model_name
    assert new.violations == base.violations, model_name
    assert new.paths == base.paths, model_name


# ----------------------------------------------------------------------
# Fast subset (tier-1)

@pytest.mark.parametrize("name", FAST_LITMUS)
@pytest.mark.parametrize("model", MODELS)
def test_litmus_executions_match(name, model):
    assert_executions_equivalent(LITMUS_TESTS[name].compile(), model)


@pytest.mark.parametrize("model", MODELS)
def test_operation_histories_match(model):
    """Recorded operations (call/ret seq numbers included) agree."""
    module = compile_source(OP_SOURCE, "ops")
    assert_executions_equivalent(module, model, operations=("bump",))


@pytest.mark.parametrize("name", FAST_LITMUS)
@pytest.mark.parametrize("model", MODELS)
def test_litmus_explorations_match(name, model):
    assert_explorations_equivalent(LITMUS_TESTS[name].compile(), model)


@pytest.mark.parametrize("model,source",
                         [pytest.param("tso", SB_SOURCE, id="tso-sb"),
                          pytest.param("pso", MP_ASSERT, id="pso-mp")])
def test_synthesized_fences_match(model, source):
    """The whole engine — rounds, clauses, placements — is backend-blind."""
    results = []
    for compiled in (False, True):
        engine = SynthesisEngine(SynthesisConfig(
            memory_model=model, flush_prob=0.3, executions_per_round=200,
            max_rounds=6, seed=7, compiled=compiled))
        module = compile_source(source, "prog")
        result = engine.synthesize(module, MemorySafetySpec())
        results.append((
            result.outcome,
            result.total_executions,
            tuple((p.location(), p.kind.value) for p in result.placements),
            tuple((r.violations, r.discarded, r.clauses,
                   tuple(f.fence_label for f in r.inserted))
                  for r in result.rounds),
        ))
    assert results[0] == results[1]


# ----------------------------------------------------------------------
# Compile-cache invalidation (fence insertion bumps body_version)

def test_fence_insertion_recompiles_only_repaired_function():
    module = compile_source(SB_SOURCE, "sb")
    main, t1 = module.functions["main"], module.functions["t1"]
    code_main, code_t1 = code_for(main), code_for(t1)

    before = COMPILE_STATS.snapshot()
    assert code_for(main) is code_main
    assert code_for(t1) is code_t1
    delta = compile_stats_delta(before)
    assert delta["cache_hits"] == 2
    assert delta["functions"] == 0

    version_main, version_t1 = main.body_version, t1.body_version
    store_label = next(i.label for i in main.body
                       if isinstance(i, Store))
    insert_fence_after(module, store_label, FenceKind.ST_ST)
    assert main.body_version == version_main + 1
    assert t1.body_version == version_t1

    before = COMPILE_STATS.snapshot()
    recompiled = code_for(main)
    assert recompiled is not code_main
    assert recompiled.version == main.body_version
    assert code_for(t1) is code_t1  # untouched function: cached closures
    delta = compile_stats_delta(before)
    assert delta["functions"] == 1
    assert delta["recompiles"] == 1
    assert delta["cache_hits"] == 1


def test_repaired_module_executes_identically():
    """After a fence lands, both backends see the repaired body."""
    module = compile_source(SB_SOURCE, "sb")
    store_label = next(i.label for i in module.functions["main"].body
                       if isinstance(i, Store))
    insert_fence_after(module, store_label, FenceKind.FULL)
    for model in MODELS:
        assert_executions_equivalent(module, model, seeds=range(4))


def test_compiled_backend_fuses_superinstructions():
    """Sanity: the microbenchmark claim rests on fusion happening."""
    module = compile_source(OP_SOURCE, "ops")
    vm = make_vm(module, make_model("sc"), compiled=True, max_steps=500)
    assert isinstance(vm, CompiledVM)
    code = vm._code_for(module.functions["main"])
    assert any(n > 1 for n in code.ops)


# ----------------------------------------------------------------------
# Full sweep (slow; CI explore-equivalence job)

@pytest.mark.slow
@pytest.mark.parametrize("model", MODELS)
def test_sweep_litmus_catalog(model):
    for name in sorted(LITMUS_TESTS):
        module = LITMUS_TESTS[name].compile()
        assert_executions_equivalent(module, model, seeds=range(4))
        assert_explorations_equivalent(module, model, max_paths=120_000)


@pytest.mark.slow
@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[os.path.basename(p) for p in CORPUS_FILES])
@pytest.mark.parametrize("model", MODELS)
def test_sweep_corpus(path, model):
    with open(path) as handle:
        module = compile_source(handle.read(), os.path.basename(path))
    assert_executions_equivalent(module, model, seeds=range(4))
    assert_explorations_equivalent(module, model)


@pytest.mark.slow
@pytest.mark.parametrize("model", MODELS)
def test_sweep_fuzz_programs(model):
    generator = ProgramGenerator()
    for seed in range(FUZZ_SEEDS):
        module = generator.generate(seed).compile()
        assert_executions_equivalent(module, model, seeds=range(4))
        assert_explorations_equivalent(module, model, max_paths=120_000,
                                       max_steps=4_000)
