"""Round-trip tests for the MiniC pretty-printer."""

import pytest

from repro.algorithms import ALGORITHMS
from repro.memory import make_model
from repro.minic import compile_source, parse
from repro.minic.pretty import ast_equal, pretty
from repro.sched import RoundRobinScheduler
from repro.vm import VM


def roundtrip(source):
    first = parse(source)
    text = pretty(first)
    second = parse(text)
    return first, text, second


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_every_benchmark_roundtrips(self, name):
        first, _text, second = roundtrip(ALGORITHMS[name].source)
        assert ast_equal(first, second)

    def test_pretty_output_compiles(self):
        source = ALGORITHMS["chase_lev"].source
        module = compile_source(pretty(parse(source)))
        assert "take" in module.functions

    def test_pretty_output_behaves_identically(self):
        source = """
        int G;
        int f(int n) {
          int s = 0;
          for (int i = 0; i < n; i = i + 1) {
            if (i % 2 == 0) { s += i; } else { s = s - 1; }
          }
          return s;
        }
        int main() { G = f(9); return G * 2; }
        """

        def run(text):
            vm = VM(compile_source(text), make_model("sc"))
            RoundRobinScheduler().run(vm)
            return vm.threads[0].result

        assert run(source) == run(pretty(parse(source)))

    def test_desugared_compound_assign_roundtrips(self):
        first, text, second = roundtrip(
            "int G; int main() { G += 2; G <<= 1; return G; }")
        assert ast_equal(first, second)
        assert "+=" not in text  # printed in desugared form

    def test_nested_assignment_parenthesised(self):
        first, text, second = roundtrip(
            "int A; int B; int main() { return (A = B) + 1; }")
        assert ast_equal(first, second)

    def test_idempotent(self):
        source = ALGORITHMS["msn_queue"].source
        once = pretty(parse(source))
        twice = pretty(parse(once))
        assert once == twice


class TestAstEqual:
    def test_detects_value_difference(self):
        a = parse("int main() { return 1; }")
        b = parse("int main() { return 2; }")
        assert not ast_equal(a, b)

    def test_detects_structure_difference(self):
        a = parse("int main() { return 1 + 2; }")
        b = parse("int main() { return 1; }")
        assert not ast_equal(a, b)

    def test_ignores_line_numbers(self):
        a = parse("int main() { return 1; }")
        b = parse("\n\nint main()\n{\n  return 1;\n}")
        assert ast_equal(a, b)

    def test_type_expressions_compared(self):
        a = parse("int* G;")
        b = parse("int G;")
        assert not ast_equal(a, b)
