"""Functional (sequential) behaviour of the benchmark algorithms.

Each algorithm's MiniC source is extended with a deterministic test
client and run single-threaded: the data structure must behave exactly
like its sequential specification.  This separates "the algorithm is
implemented correctly" from "the engine finds its fences".
"""

import pytest

from repro.algorithms import ALGORITHMS
from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import RoundRobinScheduler
from repro.vm import VM


def run_client(bundle_name, client_source, entry="seqtest"):
    bundle = ALGORITHMS[bundle_name]
    module = compile_source(bundle.source + client_source,
                            bundle_name + "_behaviour")
    vm = VM(module, make_model("sc"), entry=entry)
    RoundRobinScheduler().run(vm)
    assert vm.all_finished()
    return vm.threads[0].result


class TestWSQSequential:
    CLIENT = """
    int seqtest() {
      put(1); put(2); put(3);
      int a = take();          // 3 (tail)
      int b = steal();         // 1 (head)
      int c = take();          // 2
      int d = take();          // EMPTY
      return (a == 3) + (b == 1) * 10 + (c == 2) * 100
           + (d == EMPTY) * 1000;
    }
    """

    @pytest.mark.parametrize("name", ["chase_lev", "cilk_the",
                                      "anchor_wsq"])
    def test_deque_semantics(self, name):
        assert run_client(name, self.CLIENT) == 1111

    def test_lifo_wsq(self):
        client = """
        int seqtest() {
          put(1); put(2);
          int a = steal();       // 2 (top)
          int b = take();        // 1 (top)
          int c = steal();       // EMPTY
          return (a == 2) + (b == 1) * 10 + (c == EMPTY) * 100;
        }
        """
        assert run_client("lifo_wsq", client) == 111

    def test_fifo_wsq(self):
        client = """
        int seqtest() {
          put(1); put(2); put(3);
          int a = take();        // 1 (head)
          int b = steal();       // 2 (head)
          int c = take();        // 3
          return (a == 1) + (b == 2) * 10 + (c == 3) * 100;
        }
        """
        assert run_client("fifo_wsq", client) == 111

    @pytest.mark.parametrize("name", ["lifo_iwsq"])
    def test_lifo_iwsq(self, name):
        client = """
        int seqtest() {
          put(5); put(6);
          int a = take();        // 6
          int b = steal();       // 5
          int c = take();        // EMPTY
          return (a == 6) + (b == 5) * 10 + (c == EMPTY) * 100;
        }
        """
        assert run_client(name, client) == 111

    def test_fifo_iwsq(self):
        client = """
        int seqtest() {
          put(5); put(6);
          int a = take();        // 5 (head)
          int b = steal();       // 6
          int c = steal();       // EMPTY
          return (a == 5) + (b == 6) * 10 + (c == EMPTY) * 100;
        }
        """
        assert run_client("fifo_iwsq", client) == 111

    def test_anchor_iwsq(self):
        client = """
        int seqtest() {
          put(5); put(6); put(7);
          int a = take();        // 7 (tail)
          int b = steal();       // 5 (head)
          return (a == 7) + (b == 5) * 10;
        }
        """
        assert run_client("anchor_iwsq", client) == 11


class TestQueuesSequential:
    CLIENT = """
    int seqtest() {
      qinit();
      int e0 = dequeue();        // EMPTY
      enqueue(4); enqueue(5); enqueue(6);
      int a = dequeue();         // 4
      int b = dequeue();         // 5
      enqueue(7);
      int c = dequeue();         // 6
      int d = dequeue();         // 7
      int e1 = dequeue();        // EMPTY
      return (e0 == EMPTY) + (a == 4) * 10 + (b == 5) * 100
           + (c == 6) * 1000 + (d == 7) * 10000 + (e1 == EMPTY) * 100000;
    }
    """

    @pytest.mark.parametrize("name", ["ms2_queue", "msn_queue"])
    def test_fifo_semantics(self, name):
        assert run_client(name, self.CLIENT) == 111111


class TestSetsSequential:
    CLIENT = """
    int seqtest() {
      sinit();
      int r = 0;
      r = r + contains(5);             // 0
      r = r + add(5) * 10;             // add ok
      r = r + add(5) * 100;            // duplicate -> 0
      r = r + contains(5) * 1000;
      r = r + add(3) * 10000;          // insert before 5
      r = r + remove(5) * 100000;
      r = r + contains(5);             // 0 again
      r = r + contains(3) * 1000000;
      r = r + remove(9);               // absent -> 0
      return r;
    }
    """

    @pytest.mark.parametrize("name", ["lazy_list", "harris_set"])
    def test_set_semantics(self, name):
        assert run_client(name, self.CLIENT) == 1111010

    @pytest.mark.parametrize("name", ["lazy_list", "harris_set"])
    def test_sorted_insertion_many_keys(self, name):
        client = """
        int seqtest() {
          sinit();
          add(8); add(2); add(5); add(1); add(9);
          remove(5);
          int r = contains(1) + contains(2) * 10 + contains(5) * 100
                + contains(8) * 1000 + contains(9) * 10000;
          return r;
        }
        """
        assert run_client(name, client) == 11011


class TestAllocatorSequential:
    def test_distinct_blocks_and_reuse(self):
        client = """
        int seqtest() {
          int* a = malloc();
          int* b = malloc();
          int* c = malloc();
          int distinct = (a != b) && (b != c) && (a != c);
          *a = 1; *b = 2; *c = 3;
          int intact = (*a == 1) && (*b == 2) && (*c == 3);
          free(b);
          int* d = malloc();      // LIFO free list: reuses b's block
          int reused = (d == b);
          return distinct + intact * 10 + reused * 100;
        }
        """
        assert run_client("michael_allocator", client) == 111

    def test_exhausting_a_superblock_allocates_another(self):
        client = """
        int seqtest() {
          int i = 0;
          int* last = 0;
          while (i < 12) {            // > NBLOCKS=8: needs a second SB
            int* p = malloc();
            if (p == 0) { return 0 - 1; }
            *p = i;
            last = p;
            i = i + 1;
          }
          return *last;
        }
        """
        assert run_client("michael_allocator", client) == 11


class TestAllocatorPartialReuse:
    def test_partial_superblock_reused_after_exhaustion(self):
        client = """
        int held[8];
        int seqtest() {
          // Exhaust the first superblock completely.
          for (int i = 0; i < 8; i = i + 1) {
            held[i] = malloc();
          }
          // Force a second superblock while the first is full.
          int* extra = malloc();
          // Free one block of the (inactive, full) first superblock:
          // free() routes it to the Partial slot.
          free(held[0]);
          // Drain the second superblock... just free extra and take the
          // partial path by exhausting Active again.
          free(extra);
          int ok = 1;
          int* p = malloc();
          if (p == 0) { ok = 0; }
          return ok;
        }
        """
        assert run_client("michael_allocator", client) == 1

    def test_blocks_unique_across_superblocks(self):
        client = """
        int held[8];
        int seqtest() {
          int distinct = 1;
          for (int i = 0; i < 8; i = i + 1) {
            held[i] = malloc();
            for (int j = 0; j < i; j = j + 1) {
              if (held[i] == held[j]) { distinct = 0; }
            }
          }
          int* extra1 = malloc();   // second superblock
          int* extra2 = malloc();
          if (extra1 == extra2) { distinct = 0; }
          for (int i = 0; i < 8; i = i + 1) {
            if (extra1 == held[i] || extra2 == held[i]) { distinct = 0; }
          }
          return distinct;
        }
        """
        assert run_client("michael_allocator", client) == 1
