"""Unit tests for the SC/TSO/PSO store-buffer semantics (Semantics 1+2)."""

import pytest

from repro.ir.instructions import FenceKind
from repro.memory import (
    PSOModel,
    PredicateSink,
    SCModel,
    TSOModel,
    make_model,
)


class MemoryStub:
    """Records commits; doubles as shared memory for the models."""

    def __init__(self):
        self.cells = {}
        self.commits = []

    def commit(self, tid, addr, value, label):
        self.cells[addr] = value
        self.commits.append((tid, addr, value, label))


def attach(model, sink=None):
    mem = MemoryStub()
    model.attach(mem.commit, sink)
    return mem


class TestMakeModel:
    def test_names(self):
        assert isinstance(make_model("sc"), SCModel)
        assert isinstance(make_model("TSO"), TSOModel)
        assert isinstance(make_model("pso"), PSOModel)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_model("rmo")


class TestSCModel:
    def test_writes_commit_immediately(self):
        model = SCModel()
        mem = attach(model)
        model.write(0, 100, 7, label=1)
        assert mem.cells[100] == 7
        assert not model.has_pending(0)

    def test_read_always_misses(self):
        model = SCModel()
        attach(model)
        assert model.read(0, 100, label=1) == (False, 0)


class TestTSOModel:
    def test_store_is_buffered(self):
        model = TSOModel()
        mem = attach(model)
        model.write(0, 100, 7, label=1)
        assert mem.cells == {}
        assert model.has_pending(0)
        assert model.pending_count(0) == 1

    def test_store_forwarding_returns_newest(self):
        model = TSOModel()
        attach(model)
        model.write(0, 100, 7, label=1)
        model.write(0, 100, 8, label=2)
        assert model.read(0, 100, label=3) == (True, 8)

    def test_fifo_flush_order(self):
        model = TSOModel()
        mem = attach(model)
        model.write(0, 100, 1, label=1)
        model.write(0, 200, 2, label=2)
        model.write(0, 100, 3, label=3)
        model.drain(0)
        assert [c[1] for c in mem.commits] == [100, 200, 100]
        assert mem.cells == {100: 3, 200: 2}

    def test_flush_one_only_pops_head(self):
        model = TSOModel()
        mem = attach(model)
        model.write(0, 100, 1, label=1)
        model.write(0, 200, 2, label=2)
        # Requesting a non-head address cannot flush out of order.
        assert not model.flush_one(0, addr=200)
        assert model.flush_one(0, addr=100)
        assert mem.cells == {100: 1}

    def test_buffers_are_per_thread(self):
        model = TSOModel()
        attach(model)
        model.write(0, 100, 7, label=1)
        assert model.read(1, 100, label=2) == (False, 0)
        assert not model.has_pending(1)

    def test_st_st_fence_is_noop(self):
        model = TSOModel()
        mem = attach(model)
        model.write(0, 100, 7, label=1)
        model.fence(0, FenceKind.ST_ST)
        assert model.has_pending(0)
        model.fence(0, FenceKind.ST_LD)
        assert not model.has_pending(0)
        assert mem.cells == {100: 7}

    def test_full_fence_drains(self):
        model = TSOModel()
        attach(model)
        model.write(0, 100, 7, label=1)
        model.fence(0, FenceKind.FULL)
        assert not model.has_pending(0)

    def test_cas_drains_whole_buffer(self):
        model = TSOModel()
        mem = attach(model)
        model.write(0, 100, 7, label=1)
        model.write(0, 200, 8, label=2)
        model.pre_cas(0, 300, label=3)
        assert not model.has_pending(0)
        assert mem.cells == {100: 7, 200: 8}

    def test_load_generates_st_ld_predicates_for_other_vars(self):
        sink = PredicateSink()
        model = TSOModel()
        attach(model, sink)
        model.write(0, 100, 7, label=11)
        model.write(0, 200, 8, label=12)
        model.read(0, 300, label=13)
        keys = {p.key for p in sink}
        assert keys == {(11, 13), (12, 13)}
        assert all(p.kind is FenceKind.ST_LD for p in sink)

    def test_load_of_same_var_generates_no_predicate(self):
        sink = PredicateSink()
        model = TSOModel()
        attach(model, sink)
        model.write(0, 100, 7, label=11)
        model.read(0, 100, label=12)
        assert len(sink) == 0

    def test_store_generates_no_predicates(self):
        sink = PredicateSink()
        model = TSOModel()
        attach(model, sink)
        model.write(0, 100, 7, label=11)
        model.write(0, 200, 8, label=12)
        assert len(sink) == 0

    def test_flushed_store_no_longer_generates_predicates(self):
        sink = PredicateSink()
        model = TSOModel()
        attach(model, sink)
        model.write(0, 100, 7, label=11)
        model.drain(0)
        model.read(0, 200, label=12)
        assert len(sink) == 0

    def test_reset_clears_buffers(self):
        model = TSOModel()
        attach(model)
        model.write(0, 100, 7, label=1)
        model.reset()
        assert not model.has_pending(0)


class TestPSOModel:
    def test_per_variable_buffers(self):
        model = PSOModel()
        mem = attach(model)
        model.write(0, 100, 1, label=1)
        model.write(0, 200, 2, label=2)
        assert sorted(model.pending_addrs(0)) == [100, 200]
        # A later store to 200 can be committed before the store to 100.
        assert model.flush_one(0, addr=200)
        assert mem.cells == {200: 2}

    def test_per_variable_fifo_order(self):
        model = PSOModel()
        mem = attach(model)
        model.write(0, 100, 1, label=1)
        model.write(0, 100, 2, label=2)
        model.flush_one(0, addr=100)
        assert mem.cells[100] == 1
        model.flush_one(0, addr=100)
        assert mem.cells[100] == 2

    def test_store_forwarding_newest(self):
        model = PSOModel()
        attach(model)
        model.write(0, 100, 1, label=1)
        model.write(0, 100, 2, label=2)
        assert model.read(0, 100, label=3) == (True, 2)

    def test_any_fence_kind_drains(self):
        for kind in FenceKind:
            model = PSOModel()
            attach(model)
            model.write(0, 100, 1, label=1)
            model.fence(0, kind)
            assert not model.has_pending(0), kind

    def test_cas_drains_only_target_variable(self):
        model = PSOModel()
        mem = attach(model)
        model.write(0, 100, 1, label=1)
        model.write(0, 200, 2, label=2)
        model.pre_cas(0, 100, label=3)
        assert mem.cells == {100: 1}
        assert model.pending_addrs(0) == [200]

    def test_store_generates_st_st_predicates(self):
        sink = PredicateSink()
        model = PSOModel()
        attach(model, sink)
        model.write(0, 100, 1, label=11)
        model.write(0, 200, 2, label=12)
        preds = list(sink)
        assert [p.key for p in preds] == [(11, 12)]
        assert preds[0].kind is FenceKind.ST_ST

    def test_load_generates_st_ld_predicates(self):
        sink = PredicateSink()
        model = PSOModel()
        attach(model, sink)
        model.write(0, 100, 1, label=11)
        model.read(0, 200, label=12)
        preds = list(sink)
        assert [p.key for p in preds] == [(11, 12)]
        assert preds[0].kind is FenceKind.ST_LD

    def test_cas_generates_full_predicates_for_other_vars(self):
        sink = PredicateSink()
        model = PSOModel()
        attach(model, sink)
        model.write(0, 100, 1, label=11)
        model.pre_cas(0, 200, label=12)
        preds = list(sink)
        assert [p.key for p in preds] == [(11, 12)]
        assert preds[0].kind is FenceKind.FULL

    def test_same_variable_store_no_predicate(self):
        sink = PredicateSink()
        model = PSOModel()
        attach(model, sink)
        model.write(0, 100, 1, label=11)
        model.write(0, 100, 2, label=12)
        assert len(sink) == 0

    def test_pending_count(self):
        model = PSOModel()
        attach(model)
        model.write(0, 100, 1, label=1)
        model.write(0, 100, 2, label=2)
        model.write(0, 200, 3, label=3)
        assert model.pending_count(0) == 3

    def test_drain_commits_everything(self):
        model = PSOModel()
        mem = attach(model)
        for i in range(5):
            model.write(0, 100 + i, i, label=i)
        model.drain(0)
        assert not model.has_pending(0)
        assert len(mem.commits) == 5


class TestPredicateSink:
    def test_deduplicates_and_merges_kinds(self):
        sink = PredicateSink()
        sink.add(1, 2, FenceKind.ST_ST)
        sink.add(1, 2, FenceKind.ST_ST)
        assert len(sink) == 1
        sink.add(1, 2, FenceKind.ST_LD)
        assert sink.predicates()[0].kind is FenceKind.FULL

    def test_deterministic_order(self):
        sink = PredicateSink()
        sink.add(5, 6, FenceKind.ST_ST)
        sink.add(1, 2, FenceKind.ST_ST)
        assert [p.key for p in sink.predicates()] == [(1, 2), (5, 6)]

    def test_clear(self):
        sink = PredicateSink()
        sink.add(1, 2, FenceKind.ST_ST)
        sink.clear()
        assert not sink
