"""Unit tests for the scheduler plug-ins."""

import pytest

from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import FlushDelayScheduler, RoundRobinScheduler
from repro.vm import VM, ExecutionStatus
from repro.vm.driver import run_execution

MP_SOURCE = """
// Message passing: writer publishes DATA then FLAG; reader spins on FLAG.
int DATA;
int FLAG;
int OUT;

void reader() {
  while (FLAG == 0) {}
  OUT = DATA;
}

int main() {
  int t = fork(reader);
  DATA = 42;
  FLAG = 1;
  join(t);
  return OUT;
}
"""


def run_mp(model_name, seed, flush_prob):
    module = compile_source(MP_SOURCE)
    model = make_model(model_name)
    sched = FlushDelayScheduler(seed=seed, flush_prob=flush_prob)
    return run_execution(module, model, sched)


class TestFlushDelayScheduler:
    def test_validates_flush_prob(self):
        with pytest.raises(ValueError):
            FlushDelayScheduler(flush_prob=1.5)

    def test_deterministic_per_seed(self):
        module = compile_source(MP_SOURCE)
        results = []
        for _ in range(2):
            model = make_model("pso")
            sched = FlushDelayScheduler(seed=99, flush_prob=0.4)
            vm = VM(module, model)
            sched.run(vm)
            results.append((vm.steps, vm.memory.read(
                vm.memory.global_addr["OUT"])))
        assert results[0] == results[1]

    def test_spinning_reader_eventually_unblocked(self):
        # The writer finishes with FLAG still buffered; the scheduler must
        # flush buffers of finished/blocked threads or the reader spins
        # forever.
        for seed in range(5):
            res = run_mp("pso", seed=seed, flush_prob=0.3)
            assert res.status is ExecutionStatus.OK

    def test_message_passing_correct_under_tso(self):
        # TSO preserves store order: the reader can never see FLAG=1 but
        # stale DATA.  (This is the classic MP litmus test.)
        module = compile_source(MP_SOURCE)
        for seed in range(40):
            model = make_model("tso")
            sched = FlushDelayScheduler(seed=seed, flush_prob=0.2)
            vm = VM(module, model)
            sched.run(vm)
            out = vm.memory.read(vm.memory.global_addr["OUT"])
            assert out == 42

    def test_message_passing_breaks_under_pso(self):
        # PSO can commit FLAG before DATA: some schedule shows OUT == 0.
        module = compile_source(MP_SOURCE)
        seen = set()
        for seed in range(60):
            model = make_model("pso")
            sched = FlushDelayScheduler(seed=seed, flush_prob=0.3)
            vm = VM(module, model)
            sched.run(vm)
            seen.add(vm.memory.read(vm.memory.global_addr["OUT"]))
        assert 0 in seen, "PSO relaxation never observed"
        assert 42 in seen

    def test_por_does_not_change_results_of_sequential_code(self):
        src = "int main() { int s = 0; for (int i = 0; i < 9; i = i + 1) { s = s + i; } return s; }"
        module = compile_source(src)
        for por in (True, False):
            model = make_model("sc")
            vm = VM(module, model)
            FlushDelayScheduler(seed=1, por=por).run(vm)
            assert vm.threads[0].result == 36


class TestRoundRobinScheduler:
    def test_runs_to_completion(self):
        module = compile_source(MP_SOURCE)
        model = make_model("pso")
        vm = VM(module, model)
        RoundRobinScheduler(quantum=3).run(vm)
        assert vm.all_finished()
        assert vm.memory.read(vm.memory.global_addr["OUT"]) == 42

    def test_quantum_validation(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)

    def test_deterministic(self):
        module = compile_source(MP_SOURCE)
        steps = []
        for _ in range(2):
            model = make_model("tso")
            vm = VM(module, model)
            RoundRobinScheduler().run(vm)
            steps.append(vm.steps)
        assert steps[0] == steps[1]
