"""Tests for synthesis reports, source annotation, CAS enforcement, and
the command-line interface."""

import pytest

from repro.cli import main as cli_main
from repro.ir.instructions import Cas, FenceKind
from repro.ir.operands import Sym
from repro.memory.predicates import OrderingPredicate
from repro.minic import compile_source
from repro.spec import MemorySafetySpec
from repro.synth import (
    CAS_DUMMY_GLOBAL,
    SynthesisConfig,
    SynthesisEngine,
    annotate_source,
    enforce_with_cas,
    summarize,
)

MP_ASSERT = """
int DATA;
int FLAG;

void reader() {
  while (FLAG == 0) {}
  assert(DATA == 1);
}

int main() {
  int t = fork(reader);
  DATA = 1;
  FLAG = 1;
  join(t);
  return 0;
}
"""

SB_ASSERT = """
int X; int Y;
int r1; int r2;

void t1() {
  X = 1;
  r1 = Y;
}

int main() {
  int t = fork(t1);
  Y = 1;
  r2 = X;
  join(t);
  assert(r1 == 1 || r2 == 1);
  return 0;
}
"""


def synthesize_mp():
    module = compile_source(MP_ASSERT)
    engine = SynthesisEngine(SynthesisConfig(
        memory_model="pso", flush_prob=0.3, executions_per_round=300,
        seed=3))
    return engine.synthesize(module, MemorySafetySpec())


class TestReport:
    def test_summary_mentions_rounds_and_fences(self):
        result = synthesize_mp()
        text = summarize(result)
        assert "clean" in text
        assert "round 0" in text
        assert "fences:" in text

    def test_annotation_marks_the_data_store(self):
        result = synthesize_mp()
        annotated = annotate_source(result)
        lines = annotated.splitlines()
        data_line = next(i for i, line in enumerate(lines)
                         if "DATA = 1;" in line)
        assert ">>>" in lines[data_line + 1]
        assert "store-store" in lines[data_line + 1] or \
            "full" in lines[data_line + 1]

    def test_annotation_requires_source(self):
        result = synthesize_mp()
        result.program.source = None
        with pytest.raises(ValueError):
            annotate_source(result)


class TestEnforceWithCas:
    def test_cas_inserted_after_store(self):
        module = compile_source(SB_ASSERT)
        main_fn = module.function("main")
        store = next(i for i in main_fn.body if i.is_store())
        pred = OrderingPredicate(store.label, store.label + 1,
                                 FenceKind.ST_LD)
        inserted = enforce_with_cas(module, [pred])
        assert len(inserted) == 1
        cas = main_fn.body[main_fn.index_of(store.label) + 1]
        assert isinstance(cas, Cas)
        assert cas.addr == Sym(CAS_DUMMY_GLOBAL)

    def test_idempotent(self):
        module = compile_source(SB_ASSERT)
        store = next(i for i in module.function("main").body
                     if i.is_store())
        pred = OrderingPredicate(store.label, store.label + 1,
                                 FenceKind.ST_LD)
        enforce_with_cas(module, [pred])
        assert enforce_with_cas(module, [pred]) == []

    def test_cas_repairs_store_buffering_on_tso(self):
        # Find the SB fences, then enforce them with CAS instead and
        # validate the repaired program on TSO (paper: CAS to a dummy
        # location works as a fence on TSO).
        module = compile_source(SB_ASSERT)
        engine = SynthesisEngine(SynthesisConfig(
            memory_model="tso", flush_prob=0.1,
            executions_per_round=400, seed=3))
        result = engine.synthesize(module, MemorySafetySpec())
        assert result.fence_count >= 1
        preds = [p.predicate for p in result.placements]

        cas_module = module.clone()
        enforce_with_cas(cas_module, preds)
        checker = SynthesisEngine(SynthesisConfig(
            memory_model="tso", flush_prob=0.1, seed=777))
        _runs, violations, example = checker.test_program(
            cas_module, MemorySafetySpec(), executions=400)
        assert violations == 0, example


class TestCli:
    def test_builtin_algorithm(self, capsys):
        code = cli_main(["--algorithm", "lifo_wsq", "--model", "pso",
                         "--spec", "sc", "-k", "300", "--seed", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "synthesis outcome: clean" in out
        assert "(put," in out

    def test_minic_file(self, tmp_path, capsys):
        path = tmp_path / "mp.c"
        path.write_text(MP_ASSERT)
        code = cli_main([str(path), "--model", "pso", "-k", "300",
                         "--seed", "3", "--annotate"])
        out = capsys.readouterr().out
        assert code == 0
        assert ">>>" in out  # annotated source printed

    def test_check_only_reports_violations(self, tmp_path, capsys):
        path = tmp_path / "mp.c"
        path.write_text(MP_ASSERT)
        code = cli_main([str(path), "--model", "pso", "--check-only",
                         "-k", "300"])
        out = capsys.readouterr().out
        assert code == 1
        assert "violations" in out

    def test_check_only_clean_program(self, tmp_path, capsys):
        path = tmp_path / "ok.c"
        path.write_text("int main() { return 0; }")
        code = cli_main([str(path), "--model", "pso", "--check-only",
                         "-k", "50"])
        assert code == 0

    def test_requires_exactly_one_input(self):
        with pytest.raises(SystemExit):
            cli_main(["--model", "pso"])
        with pytest.raises(SystemExit):
            cli_main(["foo.c", "--algorithm", "chase_lev"])

    def test_sc_spec_on_file_needs_seq_spec(self, tmp_path):
        path = tmp_path / "q.c"
        path.write_text("int main() { return 0; }")
        with pytest.raises(SystemExit, match="seq-spec"):
            cli_main([str(path), "--spec", "sc"])


class TestCliExplore:
    def test_explore_litmus_by_name(self, capsys):
        code = cli_main(["sb", "--explore"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SC" in out and "TSO" in out and "PSO" in out
        assert "(0, 0)" in out  # the relaxed outcome appears

    def test_explore_minic_file(self, tmp_path, capsys):
        path = tmp_path / "lit.c"
        path.write_text("""
        int X;
        int t1() { X = 1; return 0; }
        int main() { int t = fork(t1); int r = X; join(t); return r; }
        """)
        code = cli_main([str(path), "--explore"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exact" in out

    def test_explore_without_input_rejected(self):
        with pytest.raises(SystemExit, match="litmus"):
            cli_main(["--explore"])
