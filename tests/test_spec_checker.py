"""Unit tests for the linearizability / sequential-consistency checker."""

from repro.spec import (
    EMPTY,
    QueueSpec,
    RegisterSpec,
    WSQDequeSpec,
    find_witness,
    is_linearizable,
    is_sequentially_consistent,
)
from repro.vm.events import History


def history(*ops):
    """Build a history from (tid, name, args, result, call, ret) tuples."""
    h = History()
    for (tid, name, args, result, call, ret) in ops:
        op = h.begin(tid, name, args, call)
        op.result = result
        op.ret_seq = ret
    return h


class TestBasics:
    def test_empty_history_is_fine(self):
        h = History()
        assert is_linearizable(h, QueueSpec())
        assert is_sequentially_consistent(h, QueueSpec())

    def test_single_thread_serial_history(self):
        h = history(
            (0, "enqueue", (1,), 0, 1, 2),
            (0, "enqueue", (2,), 0, 3, 4),
            (0, "dequeue", (), 1, 5, 6),
        )
        assert is_linearizable(h, QueueSpec())

    def test_single_thread_illegal_history(self):
        h = history(
            (0, "enqueue", (1,), 0, 1, 2),
            (0, "dequeue", (), 99, 3, 4),
        )
        assert not is_sequentially_consistent(h, QueueSpec())
        assert not is_linearizable(h, QueueSpec())

    def test_incomplete_operations_ignored(self):
        h = history((0, "enqueue", (1,), 0, 1, 2))
        pending = h.begin(1, "dequeue", (), 3)
        del pending  # never completed
        assert is_linearizable(h, QueueSpec())


class TestRealTimeOrder:
    def test_lin_respects_real_time_sc_does_not(self):
        # w(1) finishes, then a read returns the OLD value 0.  SC may
        # reorder them (no per-thread conflict), linearizability may not.
        h = history(
            (0, "write", (1,), 0, 1, 2),
            (1, "read", (), 0, 5, 6),
        )
        assert is_sequentially_consistent(h, RegisterSpec())
        assert not is_linearizable(h, RegisterSpec())

    def test_overlapping_ops_may_order_either_way(self):
        h = history(
            (0, "write", (1,), 0, 1, 10),
            (1, "read", (), 0, 2, 9),
        )
        assert is_linearizable(h, RegisterSpec())

    def test_program_order_binds_sc(self):
        # Same thread: write(1) then read 0 is illegal even for SC.
        h = history(
            (0, "write", (1,), 0, 1, 2),
            (0, "read", (), 0, 3, 4),
        )
        assert not is_sequentially_consistent(h, RegisterSpec())


class TestConcurrentQueue:
    def test_cross_thread_interleaving_found(self):
        h = history(
            (0, "enqueue", (1,), 0, 1, 4),
            (1, "enqueue", (2,), 0, 2, 3),
            (0, "dequeue", (), 2, 5, 6),
            (1, "dequeue", (), 1, 7, 8),
        )
        # Legal iff enqueue(2) linearizes before enqueue(1): they overlap.
        assert is_linearizable(h, QueueSpec())

    def test_duplicate_dequeue_rejected(self):
        h = history(
            (0, "enqueue", (1,), 0, 1, 2),
            (0, "dequeue", (), 1, 3, 4),
            (1, "dequeue", (), 1, 5, 6),
        )
        assert not is_sequentially_consistent(h, QueueSpec())

    def test_lost_item_rejected(self):
        h = history(
            (0, "enqueue", (1,), 0, 1, 2),
            (0, "dequeue", (), EMPTY, 3, 4),
        )
        assert not is_sequentially_consistent(h, QueueSpec())


class TestWSQScenarios:
    def test_paper_fig2c_style_violation(self):
        # put(1) completes; a later non-overlapping steal returns EMPTY.
        # SC accepts (steal serialized before put), linearizability rejects.
        h = history(
            (0, "put", (1,), 0, 1, 2),
            (1, "steal", (), EMPTY, 5, 6),
            (0, "take", (), 1, 7, 8),
        )
        assert is_sequentially_consistent(h, WSQDequeSpec())
        assert not is_linearizable(h, WSQDequeSpec())

    def test_duplicate_steal_take_rejected_even_for_sc(self):
        # The same task returned twice can never serialize.
        h = history(
            (0, "put", (7,), 0, 1, 2),
            (0, "take", (), 7, 3, 4),
            (1, "steal", (), 7, 5, 6),
        )
        assert not is_sequentially_consistent(h, WSQDequeSpec())

    def test_transient_empty_steal_non_linearizable(self):
        # The observation from the paper's Fig.1 take-retry variant: two
        # steals around a failed take, the first sees EMPTY, the second
        # gets the item that existed all along.
        h = history(
            (0, "put", (10,), 0, 1, 2),
            (0, "put", (20,), 0, 3, 4),
            (0, "take", (), 20, 5, 10),
            (0, "take", (), EMPTY, 11, 30),
            (1, "steal", (), EMPTY, 12, 15),
            (1, "steal", (), 10, 16, 20),
        )
        assert is_sequentially_consistent(h, WSQDequeSpec())
        assert not is_linearizable(h, WSQDequeSpec())


class TestWitness:
    def test_witness_is_a_legal_order(self):
        h = history(
            (0, "enqueue", (1,), 0, 1, 4),
            (1, "enqueue", (2,), 0, 2, 3),
            (0, "dequeue", (), 2, 5, 6),
        )
        witness = find_witness(h, QueueSpec(), real_time=True)
        assert witness is not None
        assert [op.name for op in witness].count("enqueue") == 2
        # enqueue(2) must come first in the witness.
        first_enq = next(op for op in witness if op.name == "enqueue")
        assert first_enq.args == (2,)

    def test_no_witness_returns_none(self):
        h = history(
            (0, "dequeue", (), 5, 1, 2),
        )
        assert find_witness(h, QueueSpec(), real_time=False) is None


class TestScale:
    def test_memoisation_handles_many_overlapping_ops(self):
        # 2 threads x 6 ops, all overlapping: without memoisation this
        # would be slow; with it, instant.
        ops = []
        seq = 0
        for tid in (0, 1):
            for i in range(6):
                val = tid * 10 + i
                ops.append((tid, "enqueue", (val,), 0, seq, seq + 100))
                seq += 1
        h = history(*ops)
        assert is_sequentially_consistent(h, QueueSpec())
