"""Whole-program MiniC integration tests.

Larger programs combining multiple language features, executed on the VM
and checked against independently computed expected results — the
front-end equivalent of end-to-end compiler tests.
"""

import pytest

from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import RoundRobinScheduler
from repro.vm import VM


def run(source, entry="main", args=()):
    module = compile_source(source)
    vm = VM(module, make_model("sc"), entry=entry, entry_args=args)
    RoundRobinScheduler().run(vm)
    return vm.threads[0].result


class TestAlgorithmsInMiniC:
    def test_insertion_sort(self):
        src = """
        int a[8];
        int main() {
          a[0] = 5; a[1] = 2; a[2] = 7; a[3] = 1;
          a[4] = 9; a[5] = 3; a[6] = 8; a[7] = 4;
          for (int i = 1; i < 8; i = i + 1) {
            int key = a[i];
            int j = i - 1;
            while (j >= 0 && a[j] > key) {
              a[j + 1] = a[j];
              j = j - 1;
            }
            a[j + 1] = key;
          }
          int sorted = 1;
          for (int i = 1; i < 8; i = i + 1) {
            if (a[i - 1] > a[i]) { sorted = 0; }
          }
          return sorted * 1000 + a[0] * 100 + a[7];
        }
        """
        assert run(src) == 1000 + 100 * 1 + 9

    def test_gcd_recursive(self):
        src = """
        int gcd(int a, int b) {
          if (b == 0) { return a; }
          return gcd(b, a % b);
        }
        int main() { return gcd(252, 105) * 100 + gcd(17, 5); }
        """
        assert run(src) == 21 * 100 + 1

    def test_collatz_length(self):
        src = """
        int collatz(int n) {
          int steps = 0;
          while (n != 1) {
            n = (n % 2 == 0) ? (n / 2) : (3 * n + 1);
            steps = steps + 1;
          }
          return steps;
        }
        int main() { return collatz(27); }
        """
        assert run(src) == 111

    def test_sieve_of_eratosthenes(self):
        src = """
        int composite[32];
        int main() {
          int count = 0;
          for (int i = 2; i < 32; i = i + 1) {
            if (!composite[i]) {
              count = count + 1;
              for (int j = i * i; j < 32; j = j + i) {
                composite[j] = 1;
              }
            }
          }
          return count;   // primes below 32
        }
        """
        assert run(src) == 11  # 2 3 5 7 11 13 17 19 23 29 31

    def test_linked_list_sum_and_reverse(self):
        src = """
        struct Node { int value; struct Node* next; };

        struct Node* build(int n) {
          struct Node* head = 0;
          for (int i = n; i >= 1; i = i - 1) {
            struct Node* node = pagealloc(sizeof(struct Node));
            node->value = i;
            node->next = head;
            head = node;
          }
          return head;   // 1, 2, ..., n
        }

        struct Node* reverse(struct Node* head) {
          struct Node* prev = 0;
          while (head != 0) {
            struct Node* next = head->next;
            head->next = prev;
            prev = head;
            head = next;
          }
          return prev;
        }

        int main() {
          struct Node* list = build(6);
          list = reverse(list);
          int first = list->value;          // 6 after reversal
          int sum = 0;
          while (list != 0) {
            sum = sum + list->value;
            list = list->next;
          }
          return first * 100 + sum;
        }
        """
        assert run(src) == 600 + 21

    def test_binary_search(self):
        src = """
        int a[16];
        int search(int key) {
          int lo = 0;
          int hi = 15;
          while (lo <= hi) {
            int mid = (lo + hi) / 2;
            if (a[mid] == key) { return mid; }
            if (a[mid] < key) { lo = mid + 1; } else { hi = mid - 1; }
          }
          return 0 - 1;
        }
        int main() {
          for (int i = 0; i < 16; i = i + 1) { a[i] = i * 3; }
          return search(27) * 100 + (search(28) == 0 - 1);
        }
        """
        assert run(src) == 900 + 1

    def test_fixed_point_sqrt(self):
        src = """
        int isqrt(int n) {
          int x = n;
          int y = (x + 1) / 2;
          while (y < x) {
            x = y;
            y = (x + n / x) / 2;
          }
          return x;
        }
        int main() { return isqrt(1024) * 1000 + isqrt(99); }
        """
        assert run(src) == 32 * 1000 + 9


class TestConcurrentPrograms:
    def test_parallel_sum_with_locks(self):
        src = """
        int L; int TOTAL;
        void adder(int base) {
          for (int i = 0; i < 10; i = i + 1) {
            lock(&L);
            TOTAL = TOTAL + base + i;
            unlock(&L);
          }
        }
        int main() {
          int t1 = fork(adder, 0);
          int t2 = fork(adder, 100);
          join(t1);
          join(t2);
          return TOTAL;
        }
        """
        module = compile_source(src)
        from repro.sched import FlushDelayScheduler
        expected = sum(range(10)) + sum(100 + i for i in range(10))
        for model in ("sc", "tso", "pso"):
            for seed in range(4):
                vm = VM(module, make_model(model))
                FlushDelayScheduler(seed=seed, flush_prob=0.3).run(vm)
                assert vm.threads[0].result == expected

    def test_barrier_via_join_chain(self):
        src = """
        int stage[4];
        void phase1() { stage[1] = stage[0] + 1; }
        void phase2() { stage[2] = stage[1] + 1; }
        int main() {
          stage[0] = 10;
          int t1 = fork(phase1);
          join(t1);
          int t2 = fork(phase2);
          join(t2);
          return stage[2];
        }
        """
        module = compile_source(src)
        from repro.sched import FlushDelayScheduler
        for model in ("tso", "pso"):
            for seed in range(6):
                vm = VM(module, make_model(model))
                FlushDelayScheduler(seed=seed, flush_prob=0.2).run(vm)
                # fork/join ordering makes this fully deterministic even
                # under relaxed models.
                assert vm.threads[0].result == 12

    def test_producer_consumer_ring(self):
        src = """
        int buf[4];
        int head; int tail;
        int L;
        const N = 8;

        void producer() {
          int produced = 0;
          while (produced < N) {
            lock(&L);
            if (tail - head < 4) {
              buf[tail % 4] = produced * 2;
              tail = tail + 1;
              produced = produced + 1;
            }
            unlock(&L);
          }
        }

        int main() {
          int t = fork(producer);
          int consumed = 0;
          int sum = 0;
          while (consumed < N) {
            lock(&L);
            if (head < tail) {
              sum = sum + buf[head % 4];
              head = head + 1;
              consumed = consumed + 1;
            }
            unlock(&L);
          }
          join(t);
          return sum;
        }
        """
        module = compile_source(src)
        from repro.sched import FlushDelayScheduler
        expected = sum(i * 2 for i in range(8))
        for model in ("tso", "pso"):
            for seed in range(4):
                vm = VM(module, make_model(model))
                FlushDelayScheduler(seed=seed, flush_prob=0.4).run(vm)
                assert vm.threads[0].result == expected, (model, seed)
