"""Litmus-test matrix: which relaxed outcomes each memory model admits.

For each classic litmus test we run many schedules per model and check
the outcome sets against the architectural truth table:

| test | SC | TSO | PSO |
|------|----|-----|-----|
| SB (store buffering)        | forbidden | allowed | allowed |
| MP (message passing)        | forbidden | forbidden | allowed |
| LB-ish CoRR (same-location) | forbidden | forbidden | forbidden |
| SB+fences                   | forbidden | forbidden | forbidden |
| MP+st-st fence              | forbidden | forbidden | forbidden |

"Allowed" additionally asserts the behaviour is actually *observed*
within the schedule budget (the demonic scheduler must find it).
"""

import pytest

from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import FlushDelayScheduler
from repro.vm import VM

RUNS = 120
FLUSH_PROB = 0.25

SB = """
int X; int Y; int R1; int R2;
void t1() { X = 1; R1 = Y; }
int main() {
  int t = fork(t1);
  Y = 1; R2 = X;
  join(t);
  return 0;
}
"""

SB_FENCED = """
int X; int Y; int R1; int R2;
void t1() { X = 1; fence_sl(); R1 = Y; }
int main() {
  int t = fork(t1);
  Y = 1; fence_sl(); R2 = X;
  join(t);
  return 0;
}
"""

MP = """
int D; int F; int OUT;
void reader() { while (F == 0) {} OUT = D; }
int main() {
  int t = fork(reader);
  D = 1; F = 1;
  join(t);
  return 0;
}
"""

MP_FENCED = """
int D; int F; int OUT;
void reader() { while (F == 0) {} OUT = D; }
int main() {
  int t = fork(reader);
  D = 1; fence_ss(); F = 1;
  join(t);
  return 0;
}
"""

# Coherence of reads to the same location: a reader seeing X go
# backwards (1 then 0) would break per-location ordering.
CORR = """
int X; int A; int B;
void reader() { A = X; B = X; }
int main() {
  int t = fork(reader);
  X = 1;
  join(t);
  return 0;
}
"""


def outcomes(source, globals_to_read, model_name, runs=RUNS):
    module = compile_source(source)
    seen = set()
    for seed in range(runs):
        vm = VM(module, make_model(model_name))
        FlushDelayScheduler(seed=seed, flush_prob=FLUSH_PROB).run(vm)
        seen.add(tuple(vm.memory.read(vm.memory.global_addr[g])
                       for g in globals_to_read))
    return seen


class TestStoreBuffering:
    def test_sc_forbids(self):
        assert (0, 0) not in outcomes(SB, ("R1", "R2"), "sc")

    @pytest.mark.parametrize("model", ["tso", "pso"])
    def test_relaxed_models_observe(self, model):
        assert (0, 0) in outcomes(SB, ("R1", "R2"), model)

    @pytest.mark.parametrize("model", ["sc", "tso", "pso"])
    def test_fences_restore_sc(self, model):
        assert (0, 0) not in outcomes(SB_FENCED, ("R1", "R2"), model)


class TestMessagePassing:
    @pytest.mark.parametrize("model", ["sc", "tso"])
    def test_ordered_models_forbid(self, model):
        assert (0,) not in outcomes(MP, ("OUT",), model)

    def test_pso_observes(self):
        assert (0,) in outcomes(MP, ("OUT",), "pso")

    @pytest.mark.parametrize("model", ["sc", "tso", "pso"])
    def test_store_store_fence_restores(self, model):
        assert (0,) not in outcomes(MP_FENCED, ("OUT",), model)


class TestCoherence:
    @pytest.mark.parametrize("model", ["sc", "tso", "pso"])
    def test_reads_of_one_location_never_go_backwards(self, model):
        for (a, b) in outcomes(CORR, ("A", "B"), model):
            assert not (a == 1 and b == 0), \
                "%s let a same-location read go backwards" % model


class TestStoreForwarding:
    SELF = """
    int X; int R;
    int main() {
      X = 7;
      R = X;       // must forward the thread's own buffered store
      return 0;
    }
    """

    @pytest.mark.parametrize("model", ["sc", "tso", "pso"])
    def test_own_stores_always_visible(self, model):
        for (r,) in outcomes(self.SELF, ("R",), model, runs=40):
            assert r == 7
