"""Unit tests for DIR instructions and fence kinds."""

import pytest

from repro.ir import instructions as ins
from repro.ir.instructions import FenceKind
from repro.ir.operands import Const, Reg, Sym


class TestFenceKind:
    def test_full_subsumes_everything(self):
        for kind in FenceKind:
            assert FenceKind.FULL.subsumes(kind)

    def test_specific_kinds_subsume_only_themselves(self):
        assert FenceKind.ST_ST.subsumes(FenceKind.ST_ST)
        assert not FenceKind.ST_ST.subsumes(FenceKind.ST_LD)
        assert not FenceKind.ST_ST.subsumes(FenceKind.FULL)
        assert FenceKind.ST_LD.subsumes(FenceKind.ST_LD)
        assert not FenceKind.ST_LD.subsumes(FenceKind.ST_ST)


class TestClassification:
    def test_load_is_shared_access(self):
        instr = ins.Load(0, Reg("d"), Sym("X"))
        assert instr.is_shared_access()
        assert instr.is_load()
        assert not instr.is_store()

    def test_store_is_shared_access(self):
        instr = ins.Store(0, Const(1), Sym("X"))
        assert instr.is_shared_access()
        assert instr.is_store()
        assert not instr.is_load()

    def test_cas_is_shared_but_neither_load_nor_store(self):
        instr = ins.Cas(0, Reg("d"), Sym("X"), Const(0), Const(1))
        assert instr.is_shared_access()
        assert not instr.is_load()
        assert not instr.is_store()

    def test_local_ops_are_not_shared(self):
        for instr in [
            ins.ConstInstr(0, Reg("d"), 1),
            ins.Mov(1, Reg("d"), Const(2)),
            ins.BinOp(2, Reg("d"), "add", Const(1), Const(2)),
            ins.UnOp(3, Reg("d"), "neg", Const(1)),
            ins.Nop(4),
        ]:
            assert not instr.is_shared_access()


class TestTerminators:
    def test_br_is_terminator_with_target(self):
        instr = ins.Br(0, 7)
        assert instr.is_terminator()
        assert instr.jump_targets() == (7,)

    def test_cbr_has_two_targets(self):
        instr = ins.Cbr(0, Reg("c"), 3, 9)
        assert instr.is_terminator()
        assert instr.jump_targets() == (3, 9)

    def test_ret_is_terminator_without_targets(self):
        instr = ins.Ret(0, Const(0))
        assert instr.is_terminator()
        assert instr.jump_targets() == ()

    def test_fallthrough_instructions(self):
        instr = ins.Store(0, Const(1), Sym("X"))
        assert not instr.is_terminator()
        assert instr.jump_targets() == ()


class TestOperatorValidation:
    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            ins.BinOp(0, Reg("d"), "pow", Const(1), Const(2))

    def test_unknown_unop_rejected(self):
        with pytest.raises(ValueError):
            ins.UnOp(0, Reg("d"), "sqrt", Const(1))

    def test_all_listed_binops_accepted(self):
        for op in ins.BINARY_OPS:
            ins.BinOp(0, Reg("d"), op, Const(1), Const(2))

    def test_all_listed_unops_accepted(self):
        for op in ins.UNARY_OPS:
            ins.UnOp(0, Reg("d"), op, Const(1))


class TestRepr:
    def test_labels_in_repr(self):
        assert repr(ins.Nop(12)).startswith("L12: nop")

    def test_fence_repr_shows_kind_and_origin(self):
        fence = ins.Fence(3, FenceKind.ST_LD, synthesized=True)
        text = repr(fence)
        assert "st_ld" in text
        assert "synth" in text

    def test_call_repr_shows_args(self):
        call = ins.Call(1, Reg("d"), "f", [Const(1), Reg("x")])
        assert "f(1, %x)" in repr(call)
