"""Edge-surface tests for ``CheckStats`` and ``RoundReport``.

These cover the compatibility seams: the legacy 3-tuple unpacking
protocol, equality against foreign objects, the ``usable`` arithmetic,
and the round report's repr.
"""

import pytest

from repro.synth import CheckStats, RoundReport


class TestCheckStatsUnpacking:
    def test_legacy_three_tuple(self):
        stats = CheckStats(100, 7, 3, "boom")
        runs, violations, example = stats
        assert (runs, violations, example) == (100, 7, "boom")

    def test_unpacking_skips_discarded(self):
        # The legacy protocol predates the discarded count: it must not
        # leak into the tuple shape.
        stats = CheckStats(10, 0, 10, None)
        unpacked = tuple(stats)
        assert unpacked == (10, 0, None)
        assert 10 not in unpacked[1:2]

    def test_unpacking_matches_attributes(self):
        stats = CheckStats(42, 5, 2, "msg")
        runs, violations, example = stats
        assert runs == stats.runs
        assert violations == stats.violations
        assert example == stats.example


class TestCheckStatsEquality:
    def test_equal_values(self):
        assert CheckStats(10, 2, 1, "x") == CheckStats(10, 2, 1, "x")

    def test_discarded_participates(self):
        assert CheckStats(10, 2, 1, "x") != CheckStats(10, 2, 0, "x")

    def test_non_checkstats_objects(self):
        stats = CheckStats(10, 2, 1, "x")
        # NotImplemented from __eq__ must fall back to False/True — and
        # never raise — against tuples, ints, None, and strings.
        assert stats != (10, 2, "x")
        assert stats != 10
        assert stats is not None and stats != None  # noqa: E711
        assert not (stats == "CheckStats")

    def test_eq_returns_notimplemented_directly(self):
        assert CheckStats(1, 0, 0, None).__eq__(object()) is NotImplemented


class TestCheckStatsUsable:
    def test_usable_subtracts_discarded(self):
        assert CheckStats(100, 7, 30, None).usable == 70

    def test_all_discarded(self):
        assert CheckStats(25, 0, 25, None).usable == 0

    def test_none_discarded(self):
        assert CheckStats(25, 3, 0, "e").usable == 25

    def test_repr_mentions_counts(self):
        text = repr(CheckStats(100, 7, 3, "boom"))
        assert "100 runs" in text
        assert "7 violations" in text
        assert "3 discarded" in text


class TestRoundReportRepr:
    def test_repr_shape(self):
        report = RoundReport(4)
        report.executions = 200
        report.violations = 11
        report.clauses = 6
        text = repr(report)
        assert text == ("<Round 4: 200 runs, 11 violations, 6 clauses, "
                        "0 fences inserted>")

    def test_repr_counts_inserted(self):
        report = RoundReport(0)
        report.inserted = ["f1", "f2", "f3"]  # only len() is used
        assert "3 fences inserted" in repr(report)

    def test_fresh_report_defaults(self):
        report = RoundReport(0)
        assert repr(report) == ("<Round 0: 0 runs, 0 violations, "
                                "0 clauses, 0 fences inserted>")
        assert report.duration == 0.0
        assert report.execute_time == 0.0
        assert report.solve_time == 0.0
        assert report.enforce_time == 0.0
