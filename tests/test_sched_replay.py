"""Tests for schedule recording, replay, and violation witnesses."""

import pytest

from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import (
    FlushDelayScheduler,
    ReplayScheduler,
    TracingScheduler,
    Witness,
)
from repro.spec import MemorySafetySpec
from repro.synth import SynthesisConfig, SynthesisEngine
from repro.vm import VM, ExecutionStatus
from repro.vm.driver import run_execution

MP_ASSERT = """
int DATA;
int FLAG;

void reader() {
  while (FLAG == 0) {}
  assert(DATA == 1);
}

int main() {
  int t = fork(reader);
  DATA = 1;
  FLAG = 1;
  join(t);
  return 0;
}
"""

SB = """
int X; int Y;
int t1() { X = 1; int r = Y; return r; }
int main() {
  int t = fork(t1);
  Y = 1;
  int r = X;
  join(t);
  return r;
}
"""


def thread_results(vm):
    return tuple(vm.threads[tid].result for tid in sorted(vm.threads))


class TestTracingAndReplay:
    def test_trace_reproduces_results_exactly(self):
        module = compile_source(SB)
        for seed in range(20):
            tracer = TracingScheduler(seed=seed, flush_prob=0.3)
            vm1 = VM(module, make_model("pso"))
            tracer.run(vm1)
            vm2 = VM(module, make_model("pso"))
            ReplayScheduler(tracer.trace).run(vm2)
            assert thread_results(vm1) == thread_results(vm2)
            assert vm1.memory.cells == vm2.memory.cells

    def test_trace_reproduces_violations(self):
        module = compile_source(MP_ASSERT)
        # Find a violating schedule first.
        violating_trace = None
        for seed in range(200):
            tracer = TracingScheduler(seed=seed, flush_prob=0.3)
            model = make_model("pso")
            result = run_execution(module, model, tracer)
            if result.status is ExecutionStatus.ASSERTION_VIOLATION:
                violating_trace = tracer.trace
                break
        assert violating_trace is not None, "no violation found to replay"
        model = make_model("pso")
        replayed = run_execution(module, model,
                                 ReplayScheduler(violating_trace))
        assert replayed.status is ExecutionStatus.ASSERTION_VIOLATION

    def test_trace_records_flushes(self):
        module = compile_source(SB)
        tracer = TracingScheduler(seed=1, flush_prob=0.5)
        vm = VM(module, make_model("pso"))
        tracer.run(vm)
        kinds = {event[0] for event in tracer.trace}
        assert "step" in kinds

    def test_replay_tail_finishes_short_traces(self):
        module = compile_source(SB)
        vm = VM(module, make_model("pso"))
        ReplayScheduler([]).run(vm)  # empty trace: tail finishes the run
        assert vm.all_finished()

    def test_untraced_scheduler_keeps_no_trace(self):
        scheduler = FlushDelayScheduler(seed=0)
        assert scheduler.trace is None


class TestWitnesses:
    def test_engine_collects_witnesses(self):
        module = compile_source(MP_ASSERT)
        engine = SynthesisEngine(SynthesisConfig(
            memory_model="pso", flush_prob=0.3,
            executions_per_round=300, seed=3))
        result = engine.synthesize(module, MemorySafetySpec())
        assert result.witnesses
        witness = result.witnesses[0]
        assert witness.entry == "main"
        assert "assert" in witness.message

    def test_witness_reproduces_on_original_program(self):
        module = compile_source(MP_ASSERT)
        engine = SynthesisEngine(SynthesisConfig(
            memory_model="pso", flush_prob=0.3,
            executions_per_round=300, seed=3))
        result = engine.synthesize(module, MemorySafetySpec())
        witness = result.witnesses[0]
        rerun = run_execution(module, make_model("pso"),
                              witness.scheduler(), entry=witness.entry)
        assert rerun.status is ExecutionStatus.ASSERTION_VIOLATION

    def test_witness_no_longer_violates_repaired_program(self):
        module = compile_source(MP_ASSERT)
        engine = SynthesisEngine(SynthesisConfig(
            memory_model="pso", flush_prob=0.3,
            executions_per_round=300, seed=3))
        result = engine.synthesize(module, MemorySafetySpec())
        assert result.outcome.value == "clean"
        for witness in result.witnesses[:3]:
            rerun = run_execution(result.program, make_model("pso"),
                                  witness.scheduler(), entry=witness.entry)
            # The schedule diverges once fences change flush timing; the
            # key guarantee is that no violation recurs.
            assert rerun.status is ExecutionStatus.OK

    def test_witness_repr(self):
        witness = Witness("client0", 42, 0.3, "boom")
        assert "client0" in repr(witness)
        assert "42" in repr(witness)
