"""Smoke coverage: every bundle renders through every printer.

Catches printer crashes on real-world-sized IR (format_module, DOT
export, MiniC pretty-printing) and asserts basic well-formedness of the
output.
"""

import pytest

from repro.algorithms import (
    ALGORITHMS,
    CHASE_LEV_PTR,
    DEKKER,
    PETERSON,
    TREIBER_STACK,
)
from repro.ir import format_module
from repro.ir.dot import cfg_to_dot, module_to_dot
from repro.minic import parse
from repro.minic.pretty import ast_equal, pretty

ALL_BUNDLES = dict(ALGORITHMS)
for extra in (CHASE_LEV_PTR, DEKKER, PETERSON, TREIBER_STACK):
    ALL_BUNDLES[extra.name] = extra


@pytest.mark.parametrize("name", sorted(ALL_BUNDLES))
def test_format_module(name):
    module = ALL_BUNDLES[name].compile()
    text = format_module(module)
    assert text.startswith("module")
    # One line per instruction plus headers.
    assert len(text.splitlines()) > module.instruction_count()
    for fn_name in module.functions:
        assert "func %s(" % fn_name in text


@pytest.mark.parametrize("name", sorted(ALL_BUNDLES))
def test_dot_export(name):
    module = ALL_BUNDLES[name].compile()
    dot = module_to_dot(module)
    assert dot.startswith("digraph")
    assert dot.count("subgraph cluster_") == len(module.functions)
    # Single-function export too.
    first_fn = next(iter(module.functions.values()))
    assert cfg_to_dot(first_fn).startswith("digraph")


@pytest.mark.parametrize("name", sorted(ALL_BUNDLES))
def test_pretty_roundtrip(name):
    source = ALL_BUNDLES[name].source
    first = parse(source)
    second = parse(pretty(first))
    assert ast_equal(first, second)
