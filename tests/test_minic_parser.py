"""Unit tests for the MiniC parser."""

import pytest

from repro.minic import ParseError, parse
from repro.minic import ast


def parse_expr(text):
    program = parse("int main() { return %s; }" % text)
    func = program.decls[0]
    return func.body.stmts[0].value


def parse_stmts(body):
    program = parse("void f() { %s }" % body)
    return program.decls[0].body.stmts


class TestDeclarations:
    def test_globals(self):
        program = parse("int X; int arr[8]; int Y = 3;")
        names = [(d.name, d.array_len is not None, d.init is not None)
                 for d in program.decls]
        assert names == [("X", False, False), ("arr", True, False),
                         ("Y", False, True)]

    def test_const(self):
        program = parse("const N = 4;")
        assert isinstance(program.decls[0], ast.ConstDecl)

    def test_struct(self):
        program = parse("struct Node { int v; struct Node* next; };")
        decl = program.decls[0]
        assert isinstance(decl, ast.StructDecl)
        assert [f[1] for f in decl.fields] == ["v", "next"]
        assert decl.fields[1][0].stars == 1

    def test_function_params(self):
        program = parse("int f(int a, struct T* b) { return 0; } "
                        "struct T { int x; };")
        func = program.decls[0]
        assert [p[1] for p in func.params] == ["a", "b"]

    def test_void_param_list(self):
        program = parse("int f(void) { return 0; }")
        assert program.decls[0].params == []

    def test_pointer_return_type(self):
        program = parse("int* f() { return 0; }")
        assert program.decls[0].ret_type.stars == 1


class TestStatements:
    def test_if_else(self):
        stmts = parse_stmts("if (1) { } else { }")
        assert isinstance(stmts[0], ast.If)
        assert stmts[0].els is not None

    def test_dangling_else_binds_inner(self):
        stmts = parse_stmts("if (1) if (2) { } else { }")
        outer = stmts[0]
        assert outer.els is None
        assert outer.then.els is not None

    def test_while(self):
        stmts = parse_stmts("while (x < 3) { x = x + 1; }")
        assert isinstance(stmts[0], ast.While)

    def test_for_full(self):
        stmts = parse_stmts("for (int i = 0; i < 3; i = i + 1) { }")
        loop = stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)
        assert loop.cond is not None
        assert loop.step is not None

    def test_for_empty_sections(self):
        loop = parse_stmts("for (;;) { break; }")[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_break_continue_return_assert(self):
        stmts = parse_stmts("break; continue; return 1; assert(x);")
        assert [type(s) for s in stmts] == [
            ast.Break, ast.Continue, ast.Return, ast.AssertStmt]


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_compare_over_logic(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_left_associativity(self):
        expr = parse_expr("10 - 3 - 2")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_assignment_right_associative(self):
        expr = parse_expr("a = b = 1")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assignment_desugared(self):
        expr = parse_expr("a += 2")
        assert isinstance(expr, ast.Assign)
        assert expr.value.op == "+"

    def test_ternary(self):
        expr = parse_expr("a ? b : c")
        assert isinstance(expr, ast.Ternary)

    def test_postfix_chain(self):
        expr = parse_expr("p->next->key")
        assert isinstance(expr, ast.Field)
        assert expr.arrow
        assert isinstance(expr.base, ast.Field)

    def test_index_and_field(self):
        expr = parse_expr("arr[i + 1]")
        assert isinstance(expr, ast.Index)

    def test_unary_chain(self):
        expr = parse_expr("!*p")
        assert isinstance(expr, ast.Unary)
        assert isinstance(expr.operand, ast.Deref)

    def test_address_of(self):
        expr = parse_expr("&G")
        assert isinstance(expr, ast.AddrOf)

    def test_sizeof_type(self):
        expr = parse_expr("sizeof(struct T)")
        assert isinstance(expr, ast.SizeOf)

    def test_call_args(self):
        expr = parse_expr("f(1, g(2), x)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3


class TestErrors:
    def test_increment_rejected_with_hint(self):
        with pytest.raises(ParseError, match="x = x \\+ 1"):
            parse("void f() { x++; }")

    def test_prefix_decrement_rejected(self):
        with pytest.raises(ParseError):
            parse("void f() { --x; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void f() { return 1 }")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("void f() { g(1; }")

    def test_error_carries_line(self):
        try:
            parse("int x;\nvoid f() {\n  return 1\n}")
        except ParseError as exc:
            assert exc.line == 4
        else:
            pytest.fail("expected ParseError")
