"""The ``repro fuzz`` subcommand and the --explore budget surfacing."""

import pytest

from repro.cli import main

pytestmark = pytest.mark.fuzz


def test_fuzz_subcommand_runs_and_passes(capsys):
    rc = main(["fuzz", "--seed", "3", "--iters", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "all oracles passed" in out
    assert "seeds 3..3" in out


def test_fuzz_subcommand_model_selection(capsys):
    rc = main(["fuzz", "--seed", "3", "--iters", "1", "--model", "tso"])
    assert rc == 0
    assert "all oracles passed" in capsys.readouterr().out


def test_fuzz_subcommand_verbose_progress(capsys):
    rc = main(["fuzz", "--seed", "3", "--iters", "1", "-v"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "seed 3:" in captured.err


def test_explore_reports_exact_paths(capsys):
    rc = main(["--explore", "sb"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "exact" in captured.out
    assert "paths" in captured.out
    assert "BUDGET EXHAUSTED" not in captured.out


def test_explore_budget_exhaustion_is_loud(capsys):
    rc = main(["--explore", "sb", "--max-paths", "5"])
    captured = capsys.readouterr()
    assert rc == 3
    assert "BUDGET EXHAUSTED" in captured.out
    assert "lower bounds" in captured.err
    assert "--max-paths" in captured.err
