"""Replay the fuzz corpus through the oracle suite.

Every ``tests/corpus/*.c`` file is a delta-debugged reproducer of a
failure some oracle once caught (the seeded ones came from deliberately
broken models; ``repro fuzz --corpus-dir tests/corpus`` adds real ones).
Replaying them against the *actual* implementation must pass all four
oracles — a regression here means a previously-fixed semantics bug is
back.
"""

import glob
import os

import pytest

from repro.fuzz import check_module
from repro.minic import compile_source
from tests.test_fuzz_oracles import small_budget_config

pytestmark = pytest.mark.fuzz

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.c")))


def test_corpus_is_seeded():
    assert CORPUS_FILES, "tests/corpus must ship at least one reproducer"


@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_corpus_reproducer_passes_oracles(path):
    with open(path) as handle:
        source = handle.read()
    module = compile_source(source, os.path.basename(path))
    report = check_module(module, small_budget_config())
    assert report.ok, report.failures
