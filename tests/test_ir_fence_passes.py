"""Unit tests for fence insertion, merge, and strip passes."""

from repro.ir import Const, FenceKind, GlobalVar, IRBuilder, Module, Reg, Sym
from repro.ir.instructions import Fence
from repro.ir.passes import (
    insert_fence_after,
    merge_redundant_fences,
    module_stats,
    strip_fences,
)


def fences_in(module):
    return [i for fn in module.functions.values() for i in fn
            if isinstance(i, Fence)]


def make_module(emit):
    m = Module()
    m.add_global(GlobalVar("X"))
    m.add_global(GlobalVar("Y"))
    b = IRBuilder(m, "f")
    emit(b)
    if not b._pending or not b._pending[-1].is_terminator():
        b.ret()
    b.finish()
    return m


class TestInsertFenceAfter:
    def test_basic_insertion(self):
        m = make_module(lambda b: b.store(Const(1), Sym("X")))
        store = m.function("f").body[0]
        fence = insert_fence_after(m, store.label, FenceKind.ST_ST)
        assert fence is not None
        assert m.function("f").body[1] is fence
        assert fence.synthesized

    def test_skips_when_subsuming_fence_follows(self):
        def emit(b):
            b.store(Const(1), Sym("X"))
            b.fence(FenceKind.FULL)
        m = make_module(emit)
        store = m.function("f").body[0]
        assert insert_fence_after(m, store.label, FenceKind.ST_ST) is None

    def test_inserts_when_following_fence_is_weaker(self):
        def emit(b):
            b.store(Const(1), Sym("X"))
            b.fence(FenceKind.ST_ST)
        m = make_module(emit)
        store = m.function("f").body[0]
        fence = insert_fence_after(m, store.label, FenceKind.ST_LD)
        assert fence is not None
        assert fence.kind is FenceKind.ST_LD


class TestMergeRedundantFences:
    def test_back_to_back_fences_merged(self):
        def emit(b):
            b.store(Const(1), Sym("X"))
            b.fence(FenceKind.FULL)
            b.fence(FenceKind.ST_ST)
        m = make_module(emit)
        removed = merge_redundant_fences(m)
        assert removed == 1
        assert len(fences_in(m)) == 1
        assert fences_in(m)[0].kind is FenceKind.FULL

    def test_store_between_fences_blocks_merge(self):
        def emit(b):
            b.fence(FenceKind.ST_ST)
            b.store(Const(1), Sym("X"))
            b.fence(FenceKind.ST_ST)
        m = make_module(emit)
        assert merge_redundant_fences(m) == 0
        assert len(fences_in(m)) == 2

    def test_load_between_fences_does_not_block_merge(self):
        def emit(b):
            b.fence(FenceKind.FULL)
            b.load(Reg("r"), Sym("X"))
            b.fence(FenceKind.ST_LD)
        m = make_module(emit)
        assert merge_redundant_fences(m) == 1

    def test_cas_counts_as_store(self):
        def emit(b):
            b.fence(FenceKind.FULL)
            b.cas(Reg("ok"), Sym("X"), Const(0), Const(1))
            b.fence(FenceKind.FULL)
        m = make_module(emit)
        assert merge_redundant_fences(m) == 0

    def test_merge_requires_all_paths_covered(self):
        # Fence after a join point where only one branch has a fence
        # must NOT be removed.
        def emit(b):
            then_l = b.block_label()
            else_l = b.block_label()
            end_l = b.block_label()
            b.cbr(Const(1), then_l, else_l)
            b.bind(then_l)
            b.fence(FenceKind.FULL)
            b.br(end_l)
            b.bind(else_l)
            b.const(Reg("x"), 0)
            b.br(end_l)
            b.bind(end_l)
            b.fence(FenceKind.FULL)
            b.ret()
        m = make_module(emit)
        assert merge_redundant_fences(m) == 0
        assert len(fences_in(m)) == 2

    def test_merge_when_both_paths_fenced(self):
        def emit(b):
            then_l = b.block_label()
            else_l = b.block_label()
            end_l = b.block_label()
            b.cbr(Const(1), then_l, else_l)
            b.bind(then_l)
            b.fence(FenceKind.FULL)
            b.br(end_l)
            b.bind(else_l)
            b.fence(FenceKind.FULL)
            b.br(end_l)
            b.bind(end_l)
            b.fence(FenceKind.ST_ST)
            b.ret()
        m = make_module(emit)
        assert merge_redundant_fences(m) == 1
        assert len(fences_in(m)) == 2

    def test_loop_keeps_fence_that_follows_store_around_backedge(self):
        # In a loop body "store X; fence", the fence is needed on every
        # iteration, because the store precedes it on the back edge path.
        def emit(b):
            head = b.block_label()
            out = b.block_label()
            b.bind(head)
            b.store(Const(1), Sym("X"))
            b.fence(FenceKind.ST_ST)
            b.cbr(Reg("c"), head, out)
            b.bind(out)
            b.ret()
        m = make_module(emit)
        assert merge_redundant_fences(m) == 0


class TestStripFences:
    def test_strip_all(self):
        def emit(b):
            b.fence(FenceKind.FULL)
            b.store(Const(1), Sym("X"))
            b.fence(FenceKind.ST_ST, synthesized=True)
        m = make_module(emit)
        assert strip_fences(m) == 2
        assert fences_in(m) == []

    def test_strip_only_synthesized(self):
        def emit(b):
            b.fence(FenceKind.FULL)
            b.fence(FenceKind.ST_ST, synthesized=True)
        m = make_module(emit)
        assert strip_fences(m, only_synthesized=True) == 1
        remaining = fences_in(m)
        assert len(remaining) == 1
        assert not remaining[0].synthesized


class TestModuleStats:
    def test_counts(self):
        def emit(b):
            b.store(Const(1), Sym("X"))
            b.cas(Reg("ok"), Sym("Y"), Const(0), Const(1))
            b.fence(FenceKind.FULL)
        m = make_module(emit)
        m.source = "// comment\n\nint x;\nvoid f() {}\n"
        stats = module_stats(m)
        assert stats["insertion_points"] == 1
        assert stats["cas_count"] == 1
        assert stats["fence_count"] == 1
        assert stats["source_loc"] == 2  # comment and blank line skipped
        assert stats["bytecode_loc"] == len(m.function("f").body)
        assert stats["global_cells"] == 2
