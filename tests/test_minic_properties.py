"""Property-based tests of the MiniC front-end (hypothesis).

Random expression trees are rendered to MiniC, compiled, and executed;
the result must equal a reference evaluation with C semantics (truncating
division, short-circuit logic).  Single-threaded programs must also be
memory-model-invariant: SC, TSO and PSO all give the same answer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import FlushDelayScheduler
from repro.vm import VM


# ----------------------------------------------------------------------
# Expression generator: (minic_text, reference_value)

def _c_div(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a, b):
    r = abs(a) % abs(b)
    return r if a >= 0 else -r


@st.composite
def expressions(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        value = draw(st.integers(min_value=0, max_value=50))
        return (str(value), value)
    kind = draw(st.sampled_from(
        ["add", "sub", "mul", "div", "mod", "and", "or", "xor",
         "shl", "shr", "lt", "le", "eq", "ne", "land", "lor", "not",
         "neg", "ternary"]))
    left_text, left = draw(expressions(depth=depth - 1))
    if kind == "not":
        return ("(!%s)" % left_text, int(left == 0))
    if kind == "neg":
        return ("(-%s)" % left_text, -left)
    right_text, right = draw(expressions(depth=depth - 1))
    if kind == "ternary":
        third_text, third = draw(expressions(depth=depth - 1))
        value = left if third else right  # cond is 'third' for variety
        return ("(%s ? %s : %s)" % (third_text, left_text, right_text),
                left if third != 0 else right)
    if kind in ("div", "mod"):
        divisor = draw(st.integers(min_value=1, max_value=9))
        op = "/" if kind == "div" else "%"
        ref = _c_div(left, divisor) if kind == "div" \
            else _c_mod(left, divisor)
        return ("(%s %s %d)" % (left_text, op, divisor), ref)
    if kind in ("shl", "shr"):
        amount = draw(st.integers(min_value=0, max_value=6))
        op = "<<" if kind == "shl" else ">>"
        ref = left << amount if kind == "shl" else left >> amount
        return ("(%s %s %d)" % (left_text, op, amount), ref)
    table = {
        "add": ("+", lambda: left + right),
        "sub": ("-", lambda: left - right),
        "mul": ("*", lambda: left * right),
        "and": ("&", lambda: left & right),
        "or": ("|", lambda: left | right),
        "xor": ("^", lambda: left ^ right),
        "lt": ("<", lambda: int(left < right)),
        "le": ("<=", lambda: int(left <= right)),
        "eq": ("==", lambda: int(left == right)),
        "ne": ("!=", lambda: int(left != right)),
        "land": ("&&", lambda: int(bool(left) and bool(right))),
        "lor": ("||", lambda: int(bool(left) or bool(right))),
    }
    op, ref = table[kind]
    return ("(%s %s %s)" % (left_text, op, right_text), ref())


def run_program(source, model_name="sc", seed=0):
    module = compile_source(source)
    vm = VM(module, make_model(model_name))
    FlushDelayScheduler(seed=seed, flush_prob=0.4).run(vm)
    return vm.threads[0].result


@settings(max_examples=250, deadline=None)
@given(expr=expressions())
def test_expression_evaluation_matches_reference(expr):
    text, expected = expr
    assert run_program("int main() { return %s; }" % text) == expected


@settings(max_examples=100, deadline=None)
@given(expr=expressions(), model=st.sampled_from(["sc", "tso", "pso"]),
       seed=st.integers(min_value=0, max_value=10))
def test_single_threaded_programs_are_model_invariant(expr, model, seed):
    text, expected = expr
    source = """
    int G;
    int main() {
      G = %s;
      int r = G;
      return r;
    }
    """ % text
    assert run_program(source, model, seed) == expected


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.integers(min_value=-50, max_value=50),
                       min_size=1, max_size=8),
       model=st.sampled_from(["tso", "pso"]))
def test_global_array_round_trip_under_any_model(values, model):
    stores = "\n".join("arr[%d] = %d;" % (i, v)
                       for i, v in enumerate(values))
    loads = " + ".join("arr[%d]" % i for i in range(len(values)))
    source = """
    int arr[8];
    int main() {
      %s
      return %s;
    }
    """ % (stores, loads)
    assert run_program(source, model, seed=1) == sum(values)
