"""Tests of the top-level ``repro.infer_fences`` convenience API."""

import pytest

import repro
from repro import infer_fences
from repro.synth import SynthesisOutcome


class TestInferFences:
    def test_default_pipeline(self):
        result = infer_fences("lifo_wsq", memory_model="pso", spec="sc",
                              executions_per_round=300, seed=7)
        assert result.outcome is SynthesisOutcome.CLEAN
        assert any("(put" in loc for loc in result.fence_locations())

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            infer_fences("nonexistent")

    def test_flush_prob_defaults_to_bundle_tuning(self):
        # TSO tuning is 0.1 for every bundle; the call must not crash and
        # must use the bundle entries (several clients per round).
        result = infer_fences("ms2_queue", memory_model="tso",
                              spec="memory_safety",
                              executions_per_round=60, seed=1)
        assert result.total_executions == 60
        assert result.fence_count == 0

    def test_explicit_flush_prob_override(self):
        result = infer_fences("ms2_queue", memory_model="pso",
                              spec="memory_safety",
                              executions_per_round=60, seed=1,
                              flush_prob=0.9)
        assert result.outcome is SynthesisOutcome.CLEAN

    def test_version_exported(self):
        assert repro.__version__
        parts = repro.__version__.split(".")
        assert all(p.isdigit() for p in parts)

    def test_sc_model_available_for_algorithm_checks(self):
        result = infer_fences("lifo_wsq", memory_model="sc", spec="lin",
                              executions_per_round=100, seed=2)
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.fence_count == 0
