"""Cross-validation of the history checker against brute force.

For small random histories, compare :func:`find_witness` with a direct
enumeration of all permutations (filtered by program order and, for
linearizability, real-time order).  Any disagreement is a checker bug;
none are expected.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spec import EMPTY, QueueSpec, RegisterSpec, SetSpec
from repro.spec.checker import find_witness
from repro.vm.events import History


def brute_force_witness_exists(ops, spec, real_time):
    """Ground truth by permutation enumeration.

    ``ops`` are (tid, name, args, result, call_seq, ret_seq) tuples.
    """
    indexed = list(enumerate(ops))
    for perm in itertools.permutations(indexed):
        # Program order per thread.
        ok = True
        last_pos = {}
        for order, (i, op) in enumerate(perm):
            tid = op[0]
            if tid in last_pos and last_pos[tid] > i:
                ok = False
                break
            last_pos[tid] = i
        if not ok:
            continue
        # Real-time order.
        if real_time:
            for (pos_a, (ia, a)), (pos_b, (ib, b)) in \
                    itertools.combinations(enumerate(perm), 2):
                # a before b in the permutation; illegal if b really
                # finished before a started.
                if b[5] < a[4]:
                    ok = False
                    break
            if not ok:
                continue
        # Spec legality.
        state = spec.init()
        for (_i, (tid, name, args, result, _c, _r)) in perm:
            legal, state = spec.apply(state, name, tuple(args), result)
            if not legal:
                ok = False
                break
        if ok:
            return True
    return False


def to_history(ops):
    h = History()
    for (tid, name, args, result, call_seq, ret_seq) in ops:
        op = h.begin(tid, name, tuple(args), call_seq)
        op.result = result
        op.ret_seq = ret_seq
    return h


@st.composite
def register_histories(draw, max_ops=5):
    """Random register histories: overlapping reads/writes with results
    that may or may not be legal."""
    n = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    for i in range(n):
        tid = draw(st.integers(min_value=0, max_value=1))
        call = draw(st.integers(min_value=0, max_value=20))
        ret = call + draw(st.integers(min_value=1, max_value=10))
        if draw(st.booleans()):
            ops.append((tid, "write", (draw(st.integers(1, 3)),), 0,
                        call, ret))
        else:
            ops.append((tid, "read", (), draw(st.integers(0, 3)),
                        call, ret))
    # Per-thread ops must be serial: re-assign call/ret per thread order.
    ops.sort(key=lambda o: o[4])
    seq = 0
    fixed = []
    last_ret = {}
    for (tid, name, args, result, _c, _r) in ops:
        call = max(seq, last_ret.get(tid, 0) + 1)
        ret = call + draw(st.integers(min_value=1, max_value=5))
        last_ret[tid] = ret
        seq = call + 1
        fixed.append((tid, name, args, result, call, ret))
    return fixed


@settings(max_examples=120, deadline=None)
@given(ops=register_histories())
def test_register_checker_matches_brute_force(ops):
    spec = RegisterSpec()
    for real_time in (False, True):
        got = find_witness(to_history(ops), spec, real_time) is not None
        want = brute_force_witness_exists(ops, spec, real_time)
        assert got == want, (ops, real_time)


@st.composite
def queue_histories(draw, max_ops=5):
    n = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    last_ret = {}
    seq = 0
    for i in range(n):
        tid = draw(st.integers(min_value=0, max_value=1))
        call = max(seq, last_ret.get(tid, 0) + 1)
        ret = call + draw(st.integers(min_value=1, max_value=5))
        last_ret[tid] = ret
        seq = call + 1
        if draw(st.booleans()):
            ops.append((tid, "enqueue", (draw(st.integers(1, 3)),), 0,
                        call, ret))
        else:
            result = draw(st.sampled_from([EMPTY, 1, 2, 3]))
            ops.append((tid, "dequeue", (), result, call, ret))
    return ops


@settings(max_examples=120, deadline=None)
@given(ops=queue_histories())
def test_queue_checker_matches_brute_force(ops):
    spec = QueueSpec()
    for real_time in (False, True):
        got = find_witness(to_history(ops), spec, real_time) is not None
        want = brute_force_witness_exists(ops, spec, real_time)
        assert got == want, (ops, real_time)


@settings(max_examples=80, deadline=None)
@given(ops=queue_histories(max_ops=4))
def test_linearizable_implies_sequentially_consistent(ops):
    spec = QueueSpec()
    lin = find_witness(to_history(ops), spec, real_time=True)
    if lin is not None:
        sc = find_witness(to_history(ops), spec, real_time=False)
        assert sc is not None


@st.composite
def set_histories(draw, max_ops=5):
    n = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    last_ret = {}
    seq = 0
    for i in range(n):
        tid = draw(st.integers(min_value=0, max_value=1))
        call = max(seq, last_ret.get(tid, 0) + 1)
        ret = call + draw(st.integers(min_value=1, max_value=5))
        last_ret[tid] = ret
        seq = call + 1
        name = draw(st.sampled_from(["add", "remove", "contains"]))
        value = draw(st.integers(min_value=1, max_value=2))
        result = draw(st.integers(min_value=0, max_value=1))
        ops.append((tid, name, (value,), result, call, ret))
    return ops


@settings(max_examples=120, deadline=None)
@given(ops=set_histories())
def test_set_checker_matches_brute_force(ops):
    spec = SetSpec()
    for real_time in (False, True):
        got = find_witness(to_history(ops), spec, real_time) is not None
        want = brute_force_witness_exists(ops, spec, real_time)
        assert got == want, (ops, real_time)
