"""Unit tests for the MiniC lexer."""

import pytest

from repro.minic import LexError, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        toks = kinds("int intx returns return")
        assert toks == [("kw", "int"), ("ident", "intx"),
                        ("ident", "returns"), ("kw", "return")]

    def test_numbers(self):
        assert kinds("0 42 0x1F") == [("num", "0"), ("num", "42"),
                                      ("num", "0x1F")]

    def test_hex_value_parses(self):
        tok = tokenize("0xff")[0]
        assert int(tok.text, 0) == 255

    def test_multi_char_operators_maximal_munch(self):
        assert [t for _k, t in kinds("a<=b >> c->d == e")] == [
            "a", "<=", "b", ">>", "c", "->", "d", "==", "e"]

    def test_underscored_identifiers(self):
        assert kinds("_x a_b")[0] == ("ident", "_x")

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "eof"


class TestComments:
    def test_line_comment(self):
        assert kinds("a // b c\n d") == [("ident", "a"), ("ident", "d")]

    def test_block_comment(self):
        assert kinds("a /* b\n c */ d") == [("ident", "a"), ("ident", "d")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("a /* b")


class TestLines:
    def test_line_numbers_tracked(self):
        toks = tokenize("a\nb\n\nc")
        lines = {t.text: t.line for t in toks if t.kind == "ident"}
        assert lines == {"a": 1, "b": 2, "c": 4}

    def test_block_comment_advances_lines(self):
        toks = tokenize("/* x\ny\n*/ z")
        z = [t for t in toks if t.text == "z"][0]
        assert z.line == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected"):
            tokenize("a $ b")

    def test_bad_number(self):
        with pytest.raises(LexError, match="bad number"):
            tokenize("0x")

    def test_error_carries_line(self):
        try:
            tokenize("ok\n ok\n $")
        except LexError as exc:
            assert exc.line == 3
        else:
            pytest.fail("expected LexError")
