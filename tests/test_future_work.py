"""Tests for the paper's section 6.6 future-work experiment.

Pointer payloads freed on fetch turn duplicated tasks into double frees,
making plain memory safety as strong as the SC specification for fence
inference on the Chase-Lev queue.
"""

import pytest

from repro.algorithms import ALGORITHMS, CHASE_LEV_PTR
from repro.synth import SynthesisConfig, SynthesisEngine, SynthesisOutcome


def synthesize(model, seed=7, k=600):
    config = SynthesisConfig(
        memory_model=model, flush_prob=CHASE_LEV_PTR.flush_prob[model],
        executions_per_round=k, max_rounds=10, seed=seed)
    engine = SynthesisEngine(config)
    return engine.synthesize(
        CHASE_LEV_PTR.compile(), CHASE_LEV_PTR.spec("memory_safety"),
        entries=CHASE_LEV_PTR.entries, operations=CHASE_LEV_PTR.operations)


def test_not_part_of_the_table2_registry():
    assert "chase_lev_ptr" not in ALGORITHMS
    assert len(ALGORITHMS) == 13


def test_clean_under_sc_model():
    engine = SynthesisEngine(SynthesisConfig(
        memory_model="sc", executions_per_round=300, seed=5))
    _runs, violations, example = engine.test_program(
        CHASE_LEV_PTR.compile(), CHASE_LEV_PTR.spec("memory_safety"),
        entries=CHASE_LEV_PTR.entries,
        operations=CHASE_LEV_PTR.operations)
    assert violations == 0, example


def test_memory_safety_now_finds_f1_on_tso():
    # Plain Chase-Lev: memory safety finds nothing (Table 3).  With the
    # pointer clients, the duplicate-return bug crashes, and the take
    # fence (F1) is inferred from memory safety alone.
    result = synthesize("tso")
    assert result.outcome is SynthesisOutcome.CLEAN
    assert any(p.function == "take" for p in result.placements)


def test_memory_safety_now_finds_put_fence_on_pso():
    result = synthesize("pso")
    assert result.outcome is SynthesisOutcome.CLEAN
    functions = {p.function for p in result.placements}
    assert "take" in functions
    assert "put" in functions


def test_violations_are_double_frees():
    config = SynthesisConfig(memory_model="tso", flush_prob=0.1,
                             executions_per_round=600, seed=7)
    engine = SynthesisEngine(config)
    _runs, violations, example = engine.test_program(
        CHASE_LEV_PTR.compile(), CHASE_LEV_PTR.spec("memory_safety"),
        entries=CHASE_LEV_PTR.entries,
        operations=CHASE_LEV_PTR.operations)
    assert violations > 0
    assert "not a live region base" in example or "freed" in example
