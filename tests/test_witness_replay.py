"""Witness/replay determinism.

A violating ``(entry, seed, flush_prob, por)`` witness recorded by the
engine must reproduce the *same* violation when replayed through
``sched/replay.py`` — under both the serial and the multiprocess
execution backend, and regardless of the engine's POR setting (the
witness carries ``por`` so replay rebuilds the exact scheduler).
"""

import pytest

from repro.memory import make_model
from repro.minic import compile_source
from repro.sched.replay import ReplayScheduler, TracingScheduler
from repro.spec import MemorySafetySpec
from repro.synth import SynthesisConfig, SynthesisEngine
from repro.vm.driver import run_execution

MP_ASSERT = """
int DATA;
int FLAG;

void reader() {
  while (FLAG == 0) {}
  assert(DATA == 1);
}

int main() {
  int t = fork(reader);
  DATA = 1;
  FLAG = 1;
  join(t);
  return 0;
}
"""


def first_round_witnesses(workers, por=True, seed=3):
    module = compile_source(MP_ASSERT)
    engine = SynthesisEngine(SynthesisConfig(
        memory_model="pso", flush_prob=0.3, executions_per_round=150,
        max_rounds=6, seed=seed, por=por, workers=workers))
    result = engine.synthesize(module, MemorySafetySpec())
    # Round-0 witnesses were recorded against the *unrepaired* module, so
    # they replay against a fresh compile of the original source.
    witnesses = result.rounds[0].witnesses
    assert witnesses, "workload must produce first-round witnesses"
    return module, witnesses


@pytest.mark.parametrize("workers", [None, 2],
                         ids=["serial", "parallel"])
class TestWitnessReproduces:
    def test_same_violation_message(self, workers):
        module, witnesses = first_round_witnesses(workers)
        spec = MemorySafetySpec()
        for witness in witnesses:
            replay = run_execution(module, make_model("pso"),
                                   witness.scheduler(),
                                   entry=witness.entry)
            assert spec.check(replay) == witness.message

    def test_trace_replay_matches(self, workers):
        module, witnesses = first_round_witnesses(workers)
        witness = witnesses[0]
        # Record the decision trace of the witness execution...
        tracer = witness.scheduler(record=True)
        assert isinstance(tracer, TracingScheduler)
        recorded = run_execution(module, make_model("pso"), tracer,
                                 entry=witness.entry)
        # ...then re-execute it decision for decision.
        replayed = run_execution(module, make_model("pso"),
                                 ReplayScheduler(tracer.trace),
                                 entry=witness.entry)
        assert recorded.status == replayed.status
        assert recorded.error == replayed.error
        assert MemorySafetySpec().check(recorded) == witness.message

    def test_por_setting_travels_with_witness(self, workers):
        # The engine ran with POR disabled: the witness must replay with
        # POR disabled too, or the schedule (and violation) diverges.
        module, witnesses = first_round_witnesses(workers, por=False)
        spec = MemorySafetySpec()
        witness = witnesses[0]
        assert witness.por is False
        replay = run_execution(module, make_model("pso"),
                               witness.scheduler(), entry=witness.entry)
        assert spec.check(replay) == witness.message


@pytest.mark.parametrize("workers", [None, 2],
                         ids=["serial", "parallel"])
def test_backends_record_identical_witnesses(workers):
    _, serial_witnesses = first_round_witnesses(None)
    _, witnesses = first_round_witnesses(workers)
    assert [(w.entry, w.seed, w.flush_prob, w.por, w.message)
            for w in witnesses] == \
        [(w.entry, w.seed, w.flush_prob, w.por, w.message)
         for w in serial_witnesses]
