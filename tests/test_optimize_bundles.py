"""Optimised compilation of every bundle stays correct.

Compiling each benchmark with the optimisation pipeline must preserve
structure (verifier-clean, no lost shared accesses) and behaviour (clean
under SC with its own specification).
"""

import pytest

from repro.algorithms import (
    ALGORITHMS,
    CHASE_LEV_PTR,
    DEKKER,
    PETERSON,
    TREIBER_STACK,
)
from repro.ir.verifier import verify_module
from repro.minic import compile_source
from repro.synth import SynthesisConfig, SynthesisEngine

ALL_BUNDLES = dict(ALGORITHMS)
for extra in (CHASE_LEV_PTR, DEKKER, PETERSON, TREIBER_STACK):
    ALL_BUNDLES[extra.name] = extra


@pytest.mark.parametrize("name", sorted(ALL_BUNDLES))
def test_optimized_bundle_verifies_and_shrinks(name):
    bundle = ALL_BUNDLES[name]
    plain = compile_source(bundle.source, name)
    optimized = compile_source(bundle.source, name, optimize=True)
    verify_module(optimized)
    assert optimized.instruction_count() <= plain.instruction_count()
    # Shared accesses are never optimised away.
    assert optimized.store_count() == plain.store_count()


@pytest.mark.parametrize("name", sorted(ALL_BUNDLES))
def test_optimized_bundle_clean_under_sc(name):
    bundle = ALL_BUNDLES[name]
    module = compile_source(bundle.source, name, optimize=True)
    engine = SynthesisEngine(SynthesisConfig(
        memory_model="sc", executions_per_round=80, seed=23,
        max_steps=20000))
    kind = bundle.supports[-1]
    if name == "cilk_the" and kind == "lin":
        kind = "sc"  # THE's rare non-lin SC history is tested elsewhere
    _runs, violations, example = engine.test_program(
        module, bundle.spec(kind), entries=bundle.entries,
        operations=bundle.operations)
    assert violations == 0, example
