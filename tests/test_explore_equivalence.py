"""Differential validation of the snapshot explorer.

The replay-based DFS in :mod:`repro.sched.exhaustive` is the semantic
reference; the snapshot engine in :mod:`repro.sched.explorer` must agree
with it exactly at *every* reduction level:

* identical outcome sets, violation sets, and completeness flags, and
* at ``reduction="none"``, an identical path count — the two engines
  walk the same tree, the new one just never replays a prefix.

The fast subset runs in every tier-1 invocation; the full sweep (whole
litmus catalog, corpus reproducers, fresh fuzz programs per model) is
``slow``-marked and runs in CI's explore-equivalence job.
"""

import glob
import os

import pytest

from repro.fuzz.generator import ProgramGenerator
from repro.litmus import LITMUS_TESTS, thread_results
from repro.minic import compile_source
from repro.sched.exhaustive import explore as explore_replay
from repro.sched.explorer import REDUCTIONS, explore

MODELS = ["sc", "tso", "pso"]
CORPUS_FILES = sorted(glob.glob(
    os.path.join(os.path.dirname(__file__), "corpus", "*.c")))

#: Fuzz seeds per memory model for the slow sweep.
FUZZ_SEEDS = 10


def assert_equivalent(module, model, max_paths=60_000, max_steps=2_000):
    """The new engine matches the replay baseline at every reduction."""
    base = explore_replay(module, model, outcome_fn=thread_results,
                          max_paths=max_paths, max_steps=max_steps)
    for reduction in REDUCTIONS:
        new = explore(module, model, outcome_fn=thread_results,
                      max_paths=max_paths, max_steps=max_steps,
                      reduction=reduction)
        assert new.complete == base.complete, (model, reduction)
        assert new.outcomes == base.outcomes, (model, reduction)
        assert new.violations == base.violations, (model, reduction)
        if reduction == "none":
            assert new.paths == base.paths, (model, reduction)
        else:
            assert new.paths <= base.paths, (model, reduction)
    return base


# ----------------------------------------------------------------------
# Fast subset (tier-1)

@pytest.mark.parametrize("name", ["sb", "mp", "coww", "sb_one_fence"])
@pytest.mark.parametrize("model", MODELS)
def test_litmus_equivalence_fast(name, model):
    assert_equivalent(LITMUS_TESTS[name].compile(), model)


def test_reduction_actually_reduces():
    module = LITMUS_TESTS["sb"].compile()
    base = explore_replay(module, "tso", outcome_fn=thread_results,
                          max_paths=60_000)
    reduced = explore(module, "tso", outcome_fn=thread_results,
                      max_paths=60_000, reduction="sleep+cache")
    assert reduced.paths * 5 <= base.paths
    assert reduced.stats.pruned > 0
    assert reduced.stats.estimated_unreduced > reduced.paths


def test_none_reduction_reports_no_pruning():
    module = LITMUS_TESTS["sb"].compile()
    result = explore(module, "tso", outcome_fn=thread_results,
                     max_paths=60_000, reduction="none")
    assert result.stats.pruned == 0
    assert result.stats.cache_hits == 0
    assert result.stats.estimated_unreduced == result.paths


def test_unknown_reduction_rejected():
    module = LITMUS_TESTS["sb"].compile()
    with pytest.raises(ValueError):
        explore(module, "tso", reduction="bogus")


def test_budget_truncation_reported():
    module = LITMUS_TESTS["sb"].compile()
    result = explore(module, "tso", outcome_fn=thread_results,
                     max_paths=3, reduction="none")
    assert result.paths == 3
    assert not result.complete


@pytest.mark.parametrize("reduction", REDUCTIONS)
def test_parallel_matches_serial(reduction):
    module = LITMUS_TESTS["sb"].compile()
    serial = explore(module, "tso", outcome_fn=thread_results,
                     max_paths=60_000, reduction=reduction)
    parallel = explore(module, "tso", outcome_fn=thread_results,
                       max_paths=60_000, reduction=reduction, workers=2)
    assert serial.complete and parallel.complete
    assert parallel.outcomes == serial.outcomes
    assert parallel.violations == serial.violations
    assert parallel.stats.subtrees > 1
    if reduction != "sleep+cache":  # cache is per-worker, counts differ
        assert parallel.paths == serial.paths


def test_parallel_unpicklable_falls_back_to_serial():
    from repro.memory.models import make_model
    module = LITMUS_TESTS["sb"].compile()
    local_unpicklable = lambda: make_model("tso")  # noqa: E731
    result = explore(module, "tso", outcome_fn=thread_results,
                     max_paths=60_000, model_factory=local_unpicklable,
                     workers=2)
    assert result.complete
    assert result.stats.subtrees == 0  # serial fallback took over
    assert result.outcomes == LITMUS_TESTS["sb"].expected["tso"]


def test_stale_replay_branch_raises():
    """Satellite regression: an out-of-range prefix index used to be
    silently clamped to option 0, corrupting the search invisibly."""
    from repro.sched.exhaustive import _run_with_prefix

    module = LITMUS_TESTS["sb"].compile()
    with pytest.raises(RuntimeError, match="stale replay branch"):
        _run_with_prefix(module, lambda: __import__(
            "repro.memory.models", fromlist=["make_model"]
        ).make_model("tso"), "main", [99], 2_000, thread_results)


def test_stale_subtree_prefix_raises():
    from repro.memory.models import make_model
    from repro.sched.explorer import _replay_prefix
    from repro.vm.interp import VM

    module = LITMUS_TESTS["sb"].compile()
    vm = VM(module, make_model("tso"), max_steps=2_000)
    with pytest.raises(RuntimeError, match="stale subtree prefix"):
        _replay_prefix(vm, [99])


# ----------------------------------------------------------------------
# Full sweep (slow; CI explore-equivalence job)

@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
@pytest.mark.parametrize("model", MODELS)
def test_litmus_equivalence_full(name, model):
    assert_equivalent(LITMUS_TESTS[name].compile(), model,
                      max_paths=120_000)


@pytest.mark.slow
@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[os.path.basename(p) for p in CORPUS_FILES])
@pytest.mark.parametrize("model", MODELS)
def test_corpus_equivalence(path, model):
    with open(path) as handle:
        module = compile_source(handle.read(), os.path.basename(path))
    assert_equivalent(module, model)


@pytest.mark.slow
@pytest.mark.parametrize("model", MODELS)
def test_fuzz_program_equivalence(model):
    generator = ProgramGenerator()
    for seed in range(FUZZ_SEEDS):
        module = generator.generate(seed).compile()
        assert_equivalent(module, model, max_paths=120_000,
                          max_steps=4_000)
