"""The fuzzing campaign driver: reports, corpus files, failure flow."""

import os

import pytest

from repro.fuzz import OracleConfig, run_campaign
from repro.minic import compile_source
from tests.test_fuzz_oracles import (
    fence_dropping_factory,
    small_budget_config,
)

pytestmark = pytest.mark.fuzz


def test_small_clean_campaign_with_progress():
    seen = []
    report = run_campaign(seed=3, iters=2,
                          oracle_config=small_budget_config(),
                          progress=lambda i, program, oracle_report:
                          seen.append((i, program.seed, oracle_report.ok)))
    assert report.ok
    assert report.iterations == 2
    assert report.paths > 0
    assert "all oracles passed" in report.summary()
    assert [entry[:2] for entry in seen] == [(0, 3), (1, 4)]
    assert all(ok for _, _, ok in seen)


def test_campaign_is_deterministic():
    first = run_campaign(seed=3, iters=1,
                         oracle_config=small_budget_config())
    second = run_campaign(seed=3, iters=1,
                          oracle_config=small_budget_config())
    assert first.paths == second.paths
    assert first.violating_seeds == second.violating_seeds


def test_broken_model_failure_lands_in_corpus(tmp_path):
    """End-to-end failure path: with the fence-dropping PSO injected,
    a violating seed fails oracle 2, gets shrunk, and is written as a
    reproducer whose source still compiles."""
    cfg = small_budget_config(model_factory=fence_dropping_factory,
                              synth_attempts=1, synth_executions=20,
                              synth_rounds=2, random_runs=5)
    corpus = tmp_path / "corpus"
    report = run_campaign(seed=1, iters=1, oracle_config=cfg,
                          corpus_dir=str(corpus))
    assert not report.ok
    failure = report.failures[0]
    assert failure.reproducer_path is not None
    assert os.path.exists(failure.reproducer_path)
    text = open(failure.reproducer_path).read()
    assert text.startswith("// repro fuzz reproducer")
    assert "// seed: %d" % failure.seed in text
    # The reproducer body (comments are legal MiniC) compiles on its own.
    module = compile_source(text, "reproducer")
    assert "main" in module.functions
    # Shrinking never grows the program.
    assert failure.shrunk.statement_count() \
        <= failure.program.statement_count()
    assert "FAILING seed" in report.summary()


