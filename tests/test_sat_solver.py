"""Unit tests for the CDCL SAT solver."""

import pytest

from repro.sat import SATSolver, solve_clauses


def is_model(clauses, model):
    return all(any((lit > 0) == model[abs(lit)] for lit in clause)
               for clause in clauses)


class TestBasics:
    def test_empty_formula_sat(self):
        assert SATSolver().solve() == {}

    def test_single_unit(self):
        model = solve_clauses([[3]])
        assert model[3] is True

    def test_negative_unit(self):
        model = solve_clauses([[-2]])
        assert model[2] is False

    def test_contradicting_units_unsat(self):
        assert solve_clauses([[1], [-1]]) is None

    def test_empty_clause_unsat(self):
        solver = SATSolver()
        assert solver.add_clause([1])
        assert not solver.add_clause([])
        assert solver.solve() is None

    def test_literal_zero_rejected(self):
        with pytest.raises(ValueError):
            SATSolver().add_clause([1, 0])

    def test_duplicate_literals_deduped(self):
        model = solve_clauses([[1, 1, 1]])
        assert model[1] is True

    def test_tautology_skipped(self):
        solver = SATSolver()
        solver.add_clause([1, -1])
        solver.add_clause([-2])
        model = solver.solve()
        assert model is not None
        assert model[2] is False
        assert 1 in model  # var registered even though clause dropped


class TestPropagation:
    def test_chain_of_implications(self):
        # 1 -> 2 -> 3 -> 4 and force 1.
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4]]
        model = solve_clauses(clauses)
        assert all(model[v] for v in (1, 2, 3, 4))

    def test_unsat_via_propagation(self):
        clauses = [[1], [-1, 2], [-2], ]
        assert solve_clauses(clauses) is None

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole: p1 and p2 both in hole, not together.
        clauses = [[1], [2], [-1, -2]]
        assert solve_clauses(clauses) is None

    def test_pigeonhole_3_into_2_unsat(self):
        # var (p,h) -> index p*2+h+1; pigeons 0..2, holes 0..1
        def v(p, h):
            return p * 2 + h + 1
        clauses = []
        for p in range(3):
            clauses.append([v(p, 0), v(p, 1)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    clauses.append([-v(p1, h), -v(p2, h)])
        assert solve_clauses(clauses) is None


class TestAssumptions:
    def test_assumption_forces_polarity(self):
        solver = SATSolver()
        solver.add_clause([1, 2])
        model = solver.solve(assumptions=[-1])
        assert model[1] is False
        assert model[2] is True

    def test_assumptions_can_make_unsat(self):
        solver = SATSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1, -2]) is None

    def test_solver_reusable_after_assumptions(self):
        solver = SATSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) is not None
        model = solver.solve()
        assert model is not None
        assert is_model([[1, 2]], model)


class TestIncremental:
    def test_add_clause_after_solve(self):
        solver = SATSolver()
        solver.add_clause([1, 2])
        model1 = solver.solve()
        assert model1 is not None
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() is None

    def test_new_var_allocation(self):
        solver = SATSolver()
        a = solver.new_var()
        b = solver.new_var()
        assert a != b
        solver.add_clause([a, b])
        model = solver.solve()
        assert a in model and b in model


class TestStructured:
    def test_xor_chain_sat(self):
        # x1 xor x2 = 1 encoded in CNF, plus x1 = 0 -> x2 = 1.
        clauses = [[1, 2], [-1, -2], [-1]]
        model = solve_clauses(clauses)
        assert model[1] is False
        assert model[2] is True

    def test_at_most_one_with_many_vars(self):
        n = 12
        clauses = [[v for v in range(1, n + 1)]]
        for a in range(1, n + 1):
            for b in range(a + 1, n + 1):
                clauses.append([-a, -b])
        model = solve_clauses(clauses)
        assert model is not None
        assert sum(model[v] for v in range(1, n + 1)) == 1

    def test_graph_coloring_triangle_2_colors_unsat(self):
        # 3 mutually adjacent nodes, 2 colors: var(node,color).
        def v(node, color):
            return node * 2 + color + 1
        clauses = []
        for node in range(3):
            clauses.append([v(node, 0), v(node, 1)])
            clauses.append([-v(node, 0), -v(node, 1)])
        for a in range(3):
            for b in range(a + 1, 3):
                for c in range(2):
                    clauses.append([-v(a, c), -v(b, c)])
        assert solve_clauses(clauses) is None

    def test_graph_coloring_triangle_3_colors_sat(self):
        def v(node, color):
            return node * 3 + color + 1
        clauses = []
        for node in range(3):
            clauses.append([v(node, c) for c in range(3)])
        for a in range(3):
            for b in range(a + 1, 3):
                for c in range(3):
                    clauses.append([-v(a, c), -v(b, c)])
        model = solve_clauses(clauses)
        assert model is not None
        assert is_model(clauses, model)
