"""Tests over the 13 benchmark algorithm bundles.

Fast checks run for every algorithm (compile, verify, SC-model
correctness); targeted synthesis assertions cover the robust paper
findings (which fences exist, and on which model they vanish).
"""

import pytest

from repro.algorithms import ALGORITHMS
from repro.ir.verifier import verify_module
from repro.spec import LinearizabilitySpec
from repro.synth import SynthesisConfig, SynthesisEngine, SynthesisOutcome

ALL_NAMES = sorted(ALGORITHMS)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_compiles_and_verifies(name):
    bundle = ALGORITHMS[name]
    module = bundle.compile()
    verify_module(module)
    assert module.instruction_count() > 30
    for entry in bundle.entries:
        assert entry in module.functions
    for op in bundle.operations:
        assert op in module.functions


@pytest.mark.parametrize("name", ALL_NAMES)
def test_specs_constructible(name):
    bundle = ALGORITHMS[name]
    for kind in bundle.supports:
        spec = bundle.spec(kind)
        assert spec is not None


def test_registry_covers_table2():
    assert len(ALGORITHMS) == 13
    assert "michael_allocator" in ALGORITHMS
    assert sum(1 for n in ALGORITHMS if "iwsq" in n) == 3
    assert sum(1 for n in ALGORITHMS if n.endswith("_wsq")) == 3


@pytest.mark.parametrize("name", ALL_NAMES)
def test_correct_under_sc_model(name):
    """Under SC interleavings (no store buffers) every algorithm satisfies
    its specifications on a modest budget (THE's rare non-linearizable
    SC history is probabilistic; see test_cilk_the_not_linearizable)."""
    bundle = ALGORITHMS[name]
    module = bundle.compile()
    engine = SynthesisEngine(SynthesisConfig(
        memory_model="sc", executions_per_round=150, seed=20))
    for kind in bundle.supports:
        if name == "cilk_the" and kind == "lin":
            continue
        runs, violations, example = engine.test_program(
            module, bundle.spec(kind),
            entries=bundle.entries, operations=bundle.operations)
        assert violations == 0, (kind, example)


def synthesize(name, model, kind, k=400, rounds=10, seed=7):
    bundle = ALGORITHMS[name]
    config = SynthesisConfig(
        memory_model=model, flush_prob=bundle.flush_prob[model],
        executions_per_round=k, max_rounds=rounds, seed=seed)
    engine = SynthesisEngine(config)
    return engine.synthesize(bundle.compile(), bundle.spec(kind),
                             entries=bundle.entries,
                             operations=bundle.operations)


class TestChaseLev:
    def test_tso_sc_finds_the_store_load_fence(self):
        result = synthesize("chase_lev", "tso", "sc")
        assert result.outcome is SynthesisOutcome.CLEAN
        takes = [p for p in result.placements if p.function == "take"]
        assert takes, "expected the F1 fence in take"
        assert takes[0].kind.value in ("st_ld", "full")

    def test_pso_sc_finds_put_fence(self):
        result = synthesize("chase_lev", "pso", "sc")
        assert result.outcome is SynthesisOutcome.CLEAN
        puts = [p for p in result.placements if p.function == "put"]
        assert puts, "expected the F2 fence in put"

    def test_memory_safety_alone_finds_nothing(self):
        # Paper section 6.6: memory safety is ineffective for WSQs.
        for model in ("tso", "pso"):
            result = synthesize("chase_lev", model, "memory_safety")
            assert result.fence_count == 0


class TestCilkThe:
    def test_sc_spec_finds_take_handshake_fence(self):
        result = synthesize("cilk_the", "tso", "sc")
        assert result.outcome is SynthesisOutcome.CLEAN
        functions = {p.function for p in result.placements}
        assert "take" in functions

    @pytest.mark.slow
    def test_not_linearizable(self):
        # Paper section 6.6: THE is not linearizable with a deterministic
        # sequential spec, even without memory-model effects.  The history
        # is rare; sweep seeds until the engine reports CANNOT_FIX.
        for seed in range(0, 40, 4):
            result = synthesize("cilk_the", "tso", "lin", k=700, seed=seed)
            if result.outcome is SynthesisOutcome.CANNOT_FIX:
                return
        pytest.fail("non-linearizability of THE not observed")


class TestExactWSQs:
    def test_fifo_wsq_fence_free_on_tso_under_sc(self):
        # The paper's headline: weakening linearizability to SC gives a
        # fence-free FIFO WSQ on TSO.
        result = synthesize("fifo_wsq", "tso", "sc")
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.fence_count == 0

    def test_lifo_wsq_put_fence_on_pso_only(self):
        tso = synthesize("lifo_wsq", "tso", "sc")
        assert tso.fence_count == 0
        pso = synthesize("lifo_wsq", "pso", "sc")
        assert pso.outcome is SynthesisOutcome.CLEAN
        assert any(p.function == "put" for p in pso.placements)

    def test_anchor_wsq_put_fence_on_pso_only(self):
        tso = synthesize("anchor_wsq", "tso", "lin")
        assert tso.fence_count == 0
        pso = synthesize("anchor_wsq", "pso", "lin")
        assert any(p.function == "put" for p in pso.placements)


class TestIdempotentWSQs:
    @pytest.mark.parametrize("name", ["fifo_iwsq", "lifo_iwsq",
                                      "anchor_iwsq"])
    def test_no_fences_on_tso(self, name):
        # Paper 6.3.1: iWSQs avoid store-load fences in owner operations;
        # nothing is needed on TSO.
        result = synthesize(name, "tso", "memory_safety")
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.fence_count == 0

    def test_lifo_iwsq_put_fence_on_pso(self):
        result = synthesize("lifo_iwsq", "pso", "memory_safety", k=800)
        assert result.outcome is SynthesisOutcome.CLEAN
        assert any(p.function == "put" for p in result.placements)


class TestLockBased:
    @pytest.mark.parametrize("name", ["ms2_queue", "lazy_list"])
    @pytest.mark.parametrize("model", ["tso", "pso"])
    def test_no_fences_needed(self, name, model):
        # Locks carry their own fences: nothing to infer (Table 3).
        result = synthesize(name, model, "sc", k=300)
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.fence_count == 0


@pytest.mark.slow
class TestMichaelAllocator:
    def test_tso_needs_nothing(self):
        result = synthesize("michael_allocator", "tso", "memory_safety")
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.fence_count == 0

    def test_pso_finds_publication_fences(self):
        result = synthesize("michael_allocator", "pso", "memory_safety",
                            k=600)
        assert result.outcome is SynthesisOutcome.CLEAN
        functions = {p.function for p in result.placements}
        assert "MallocFromNewSB" in functions

    def test_repaired_allocator_is_clean(self):
        result = synthesize("michael_allocator", "pso", "sc", k=600)
        bundle = ALGORITHMS["michael_allocator"]
        checker = SynthesisEngine(SynthesisConfig(
            memory_model="pso", flush_prob=0.5, seed=4242))
        runs, violations, example = checker.test_program(
            result.program, bundle.spec("sc"), entries=bundle.entries,
            operations=bundle.operations, executions=400)
        assert violations == 0, example
