"""Property-based optimizer correctness (hypothesis).

Random expression programs compiled plain and optimized must produce the
same result — the optimizer is a semantics-preserving transformation.
Reuses the expression generator of test_minic_properties.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import RoundRobinScheduler
from repro.vm import VM


@st.composite
def expressions(draw, depth=3):
    """Random (minic_text, reference_value) expression pairs."""
    if depth == 0 or draw(st.booleans()):
        value = draw(st.integers(min_value=0, max_value=50))
        return (str(value), value)
    kind = draw(st.sampled_from(
        ["add", "sub", "mul", "and", "xor", "lt", "eq", "not", "neg"]))
    left_text, left = draw(expressions(depth=depth - 1))
    if kind == "not":
        return ("(!%s)" % left_text, int(left == 0))
    if kind == "neg":
        return ("(-%s)" % left_text, -left)
    right_text, right = draw(expressions(depth=depth - 1))
    table = {
        "add": ("+", left + right),
        "sub": ("-", left - right),
        "mul": ("*", left * right),
        "and": ("&", left & right),
        "xor": ("^", left ^ right),
        "lt": ("<", int(left < right)),
        "eq": ("==", int(left == right)),
    }
    op, ref = table[kind]
    return ("(%s %s %s)" % (left_text, op, right_text), ref)


def run_module(module, entry="main"):
    vm = VM(module, make_model("sc"), entry=entry)
    RoundRobinScheduler().run(vm)
    return vm.threads[0].result


@settings(max_examples=150, deadline=None)
@given(expr=expressions())
def test_optimizer_preserves_expression_results(expr):
    text, expected = expr
    source = "int main() { return %s; }" % text
    plain = compile_source(source)
    optimized = compile_source(source, optimize=True)
    assert run_module(plain) == expected
    assert run_module(optimized) == expected


@settings(max_examples=100, deadline=None)
@given(expr=expressions(), arg=st.integers(min_value=-5, max_value=5))
def test_optimizer_preserves_control_flow(expr, arg):
    text, _ = expr
    source = """
    int G;
    int f(int c) {
      int acc = 0;
      for (int i = 0; i < 3; i = i + 1) {
        if (c > i) { acc = acc + %s; } else { acc = acc - 1; }
      }
      G = acc;
      return G;
    }
    int main(int c) { return f(c); }
    """ % text
    plain = compile_source(source)
    optimized = compile_source(source, optimize=True)
    vm1 = VM(plain, make_model("sc"), entry_args=(arg,))
    RoundRobinScheduler().run(vm1)
    vm2 = VM(optimized, make_model("sc"), entry_args=(arg,))
    RoundRobinScheduler().run(vm2)
    assert vm1.threads[0].result == vm2.threads[0].result


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(min_value=0, max_value=30),
                       min_size=1, max_size=6))
def test_optimizer_preserves_shared_memory_contents(values):
    stores = "\n".join("arr[%d] = %d + %d;" % (i, v, i)
                       for i, v in enumerate(values))
    source = """
    int arr[8];
    int main() {
      %s
      return 0;
    }
    """ % stores
    plain = compile_source(source)
    optimized = compile_source(source, optimize=True)
    vm1 = VM(plain, make_model("sc"))
    RoundRobinScheduler().run(vm1)
    vm2 = VM(optimized, make_model("sc"))
    RoundRobinScheduler().run(vm2)
    base1 = vm1.memory.global_addr["arr"]
    base2 = vm2.memory.global_addr["arr"]
    for i in range(8):
        assert vm1.memory.read(base1 + i) == vm2.memory.read(base2 + i)
