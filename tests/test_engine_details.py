"""Detailed engine-behaviour tests (rotation, policies, caps, rounds)."""

import pytest

from repro.minic import compile_source
from repro.spec import MemorySafetySpec
from repro.synth import SynthesisConfig, SynthesisEngine, SynthesisOutcome

MP_ASSERT = """
int DATA;
int FLAG;

void reader() {
  while (FLAG == 0) {}
  assert(DATA == 1);
}

int main() {
  int t = fork(reader);
  DATA = 1;
  FLAG = 1;
  join(t);
  return 0;
}
"""

TWO_ENTRIES = """
int HIT0; int HIT1;
int clientA() { HIT0 = HIT0 + 1; return 0; }
int clientB() { HIT1 = HIT1 + 1; return 0; }
"""


def engine(model="pso", **kw):
    defaults = dict(flush_prob=0.3, executions_per_round=200, seed=3)
    defaults.update(kw)
    return SynthesisEngine(SynthesisConfig(memory_model=model, **defaults))


class TestEntryRotation:
    def test_all_entries_exercised(self):
        module = compile_source(TWO_ENTRIES)
        eng = engine(executions_per_round=10)
        runs, violations, _ = eng.test_program(
            module, MemorySafetySpec(),
            entries=("clientA", "clientB"), executions=10)
        assert runs == 10
        assert violations == 0

    def test_single_entry_default(self):
        module = compile_source("int main() { return 0; }")
        eng = engine()
        runs, violations, _ = eng.test_program(module, MemorySafetySpec(),
                                               executions=5)
        assert runs == 5


class TestWitnessCap:
    def test_at_most_five_witnesses_per_round(self):
        module = compile_source("int main() { assert(0); return 0; }")
        eng = engine(executions_per_round=50, max_rounds=1)
        result = eng.synthesize(module, MemorySafetySpec())
        assert result.rounds[0].violations == 50
        assert len(result.rounds[0].witnesses) == 5


class TestPolicies:
    def test_soft_policy_fixes_despite_unfixable_mix(self):
        # A program with both a fixable relaxed-memory bug and no way to
        # mask it: the soft policy should still repair the fixable part.
        module = compile_source(MP_ASSERT)
        eng = engine(abort_on_unfixable=False)
        result = eng.synthesize(module, MemorySafetySpec())
        assert result.outcome is SynthesisOutcome.CLEAN

    def test_flush_prob_one_sees_no_relaxed_behaviour(self):
        module = compile_source(MP_ASSERT)
        eng = engine(flush_prob=1.0, executions_per_round=300)
        result = eng.synthesize(module, MemorySafetySpec())
        # Eager flushing = effectively SC: nothing to find.
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.fence_count == 0

    def test_flush_prob_zero_buffers_forever(self):
        # With probability 0 nothing flushes until a CAS/join forces it;
        # in the Dekker litmus both loads then read 0 in every schedule.
        # (A spin-loop client would livelock instead: the reader could
        # wait forever for a flush that never comes.)
        sb = """
        int X; int Y; int r1; int r2;
        void t1() { X = 1; r1 = Y; }
        int main() {
          int t = fork(t1);
          Y = 1;
          r2 = X;
          join(t);
          assert(r1 == 1 || r2 == 1);
          return 0;
        }
        """
        module = compile_source(sb)
        eng = engine(model="tso", flush_prob=0.0,
                     executions_per_round=100)
        result = eng.synthesize(module, MemorySafetySpec())
        assert result.outcome is SynthesisOutcome.CLEAN
        assert result.rounds[0].violations > 0

    def test_merge_disabled_keeps_all_insertions(self):
        module = compile_source(MP_ASSERT)
        merged = engine(merge_fences=True).synthesize(
            module, MemorySafetySpec())
        unmerged = engine(merge_fences=False).synthesize(
            module, MemorySafetySpec())
        assert unmerged.fence_count >= merged.fence_count


class TestResultAccounting:
    def test_placements_survive_in_program(self):
        module = compile_source(MP_ASSERT)
        result = engine().synthesize(module, MemorySafetySpec())
        for placement in result.placements:
            fn, instr = result.program.find_instr(placement.fence_label)
            assert instr.op == "fence"
            assert fn.name == placement.function

    def test_original_module_untouched(self):
        module = compile_source(MP_ASSERT)
        before = module.instruction_count()
        result = engine().synthesize(module, MemorySafetySpec())
        assert module.instruction_count() == before
        assert result.program is not module

    def test_total_violations_property(self):
        module = compile_source(MP_ASSERT)
        result = engine().synthesize(module, MemorySafetySpec())
        assert result.total_violations == sum(
            r.violations for r in result.rounds)

    def test_repr_mentions_outcome(self):
        module = compile_source("int main() { return 0; }")
        result = engine(executions_per_round=5).synthesize(
            module, MemorySafetySpec())
        assert "clean" in repr(result)
        assert "Round 0" in repr(result.rounds[0])


class TestConvergence:
    def test_second_synthesis_on_repaired_program_is_immediately_clean(self):
        module = compile_source(MP_ASSERT)
        first = engine().synthesize(module, MemorySafetySpec())
        assert first.outcome is SynthesisOutcome.CLEAN
        second = engine(seed=999).synthesize(first.program,
                                             MemorySafetySpec())
        assert second.outcome is SynthesisOutcome.CLEAN
        assert len(second.rounds) == 1
        assert second.rounds[0].violations == 0

    def test_idempotent_fence_set(self):
        module = compile_source(MP_ASSERT)
        first = engine().synthesize(module, MemorySafetySpec())
        second = engine(seed=999).synthesize(first.program,
                                             MemorySafetySpec())
        assert second.fence_count == first.fence_count
