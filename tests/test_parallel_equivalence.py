"""The determinism contract: serial and parallel backends are equivalent.

The engine merges execution summaries in execution-index order, so the
``SynthesisResult`` — outcome, fence locations, per-round violation
counts, example messages, witnesses, clause order, chosen minimal repair
— must be byte-identical no matter how many worker processes ran the
rounds.  These tests assert that over several program/spec/seed
combinations, for both ``synthesize`` and ``test_program``.
"""

import pytest

from repro.ir.printer import format_module
from repro.minic import compile_source
from repro.spec import MemorySafetySpec
from repro.synth import SynthesisConfig, SynthesisEngine

MP_ASSERT = """
int DATA;
int FLAG;

void reader() {
  while (FLAG == 0) {}
  assert(DATA == 1);
}

int main() {
  int t = fork(reader);
  DATA = 1;
  FLAG = 1;
  join(t);
  return 0;
}
"""

SB_ASSERT = """
int X; int Y;
int r1; int r2;

void t1() {
  X = 1;
  r1 = Y;
}

int main() {
  int t = fork(t1);
  Y = 1;
  r2 = X;
  join(t);
  assert(r1 == 1 || r2 == 1);
  return 0;
}
"""

def _chase_lev():
    """The paper's Chase-Lev WSQ under linearizability: a real workload
    with multiple client entries and history checking in the workers."""
    from repro.algorithms import ALGORITHMS

    bundle = ALGORITHMS["chase_lev"]
    return (bundle.compile(), bundle.spec("lin"), bundle.entries,
            bundle.operations)


def _minic(src, name, spec_factory, operations):
    return lambda: (compile_source(src, name), spec_factory(), ("main",),
                    operations)


#: (name, workload factory, model, flush_prob, seed); each factory returns
#: (module, spec, entries, operations).
COMBOS = [
    ("mp_pso", _minic(MP_ASSERT, "mp", MemorySafetySpec, ()),
     "pso", 0.3, 3),
    ("sb_tso", _minic(SB_ASSERT, "sb", MemorySafetySpec, ()),
     "tso", 0.1, 5),
    ("wsq_lin_pso", _chase_lev, "pso", 0.2, 11),
]


def config(model, flush_prob, seed, workers, **kw):
    return SynthesisConfig(
        memory_model=model, flush_prob=flush_prob,
        executions_per_round=120, max_rounds=6, seed=seed,
        workers=workers, **kw)


def round_signature(result):
    return [(r.index, r.executions, r.violations, r.unfixable,
             r.discarded, r.distinct_predicates, r.clauses,
             r.example_violation,
             [(w.entry, w.seed, w.flush_prob, w.por, w.message)
              for w in r.witnesses],
             [(p.fence_label, p.function, p.kind, p.location())
              for p in r.inserted])
            for r in result.rounds]


def full_signature(result):
    return (result.outcome, result.fence_locations(),
            result.total_executions, result.total_violations,
            round_signature(result), format_module(result.program))


@pytest.mark.parametrize(
    "name,workload,model,flush_prob,seed",
    COMBOS, ids=[c[0] for c in COMBOS])
def test_synthesize_serial_equals_parallel(name, workload, model,
                                           flush_prob, seed):
    results = {}
    violations = 0
    for workers in (None, 2):
        module, spec, entries, operations = workload()
        engine = SynthesisEngine(config(model, flush_prob, seed, workers))
        results[workers] = engine.synthesize(
            module, spec, entries=entries, operations=operations)
        violations = results[workers].total_violations
    assert full_signature(results[None]) == full_signature(results[2])
    assert violations > 0  # the combo must actually exercise the merge


@pytest.mark.parametrize(
    "name,workload,model,flush_prob,seed",
    COMBOS, ids=[c[0] for c in COMBOS])
def test_check_serial_equals_parallel(name, workload, model, flush_prob,
                                      seed):
    stats = {}
    for workers in (None, 2):
        module, spec, entries, operations = workload()
        engine = SynthesisEngine(config(model, flush_prob, seed, workers))
        stats[workers] = engine.test_program(
            module, spec, entries=entries, operations=operations,
            executions=150)
    assert stats[None] == stats[2]
    assert stats[None].runs == 150


def test_early_stop_serial_equals_parallel():
    module = compile_source(MP_ASSERT)
    stats = {}
    for workers in (None, 2):
        engine = SynthesisEngine(config("pso", 0.3, 3, workers,
                                        chunk_size=10))
        stats[workers] = engine.test_program(
            module, MemorySafetySpec(), executions=200,
            stop_on_first_violation=True)
    # Early stop is decided in index order, so both backends stop at the
    # same execution with the same example message.
    assert stats[None] == stats[2]
    assert stats[None].violations == 1
    assert stats[None].runs < 200


def test_workers_zero_uses_cpu_count_backend():
    module = compile_source(MP_ASSERT)
    serial = SynthesisEngine(config("pso", 0.3, 3, None)).synthesize(
        module, MemorySafetySpec())
    auto = SynthesisEngine(config("pso", 0.3, 3, 0)).synthesize(
        module, MemorySafetySpec())
    assert full_signature(serial) == full_signature(auto)
