"""Unit tests for the parallel execution backends."""

import pickle

import pytest

from repro.memory import make_model
from repro.minic import compile_source
from repro.parallel import (
    ExecutionSummary,
    ProcessPool,
    SerialPool,
    make_pool,
    resolve_workers,
    summarize_execution,
)
from repro.sched.flush_random import FlushDelayScheduler
from repro.spec import MemorySafetySpec
from repro.vm.driver import run_execution

MP = """
int DATA;
int FLAG;

void reader() {
  while (FLAG == 0) {}
  assert(DATA == 1);
}

int main() {
  int t = fork(reader);
  DATA = 1;
  FLAG = 1;
  join(t);
  return 0;
}
"""

HISTORY = """
int R;
int read() { return R; }
void write(int v) { R = v; }
int main() { write(7); read(); return 0; }
"""


def make_jobs(n, entry="main", base_seed=0):
    return [(i, entry, base_seed + i) for i in range(n)]


class TestExecutionSummary:
    def run_one(self, src=MP, seed=2, operations=()):
        module = compile_source(src)
        result = run_execution(module, make_model("pso"),
                               FlushDelayScheduler(seed=seed,
                                                   flush_prob=0.3),
                               operations=operations)
        violation = MemorySafetySpec().check(result) if result.usable \
            else None
        return summarize_execution(5, "main", seed, result, violation)

    def test_pickle_roundtrip(self):
        summary = self.run_one()
        clone = pickle.loads(pickle.dumps(summary))
        assert clone == summary
        assert clone.index == 5
        assert clone.entry == "main"
        assert clone.seed == 2

    def test_predicate_objects_roundtrip(self):
        summary = self.run_one()
        preds = summary.predicate_objects()
        assert len(preds) == len(summary.predicates)
        for pred, (l, k, kind) in zip(preds, summary.predicates):
            assert (pred.store_label, pred.access_label) == (l, k)
            assert pred.kind.value == kind

    def test_history_reconstruction(self):
        summary = self.run_one(src=HISTORY, operations=("read", "write"))
        history = summary.history()
        names = [op.name for op in history]
        assert names == ["write", "read"]
        assert all(op.complete for op in history)

    def test_usable_flag(self):
        summary = self.run_one()
        assert summary.usable == (summary.status not in
                                  ("timeout", "deadlock"))


class TestResolveWorkers:
    def test_none_is_serial(self):
        assert resolve_workers(None) == 0

    def test_zero_is_cpu_count(self):
        assert resolve_workers(0) >= 1

    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_make_pool_types(self):
        assert isinstance(make_pool(None, "pso", 0.3), SerialPool)
        pool = make_pool(2, "pso", 0.3)
        assert isinstance(pool, ProcessPool)
        pool.close()


class TestSerialPool:
    def test_requires_broadcast(self):
        pool = SerialPool("pso", 0.3)
        with pytest.raises(RuntimeError):
            next(iter(pool.run(make_jobs(1))))

    def test_index_order_and_determinism(self):
        module = compile_source(MP)
        pool = SerialPool("pso", 0.3)
        pool.broadcast(module, MemorySafetySpec())
        first = list(pool.run(make_jobs(30)))
        second = list(pool.run(make_jobs(30)))
        assert [s.index for s in first] == list(range(30))
        assert first == second


class TestProcessPool:
    def test_chunking(self):
        pool = ProcessPool(2, "pso", 0.3)
        batches = pool._chunk(make_jobs(33))
        assert sum(len(b) for b in batches) == 33
        assert [job for batch in batches for job in batch] == make_jobs(33)
        explicit = ProcessPool(2, "pso", 0.3, chunk_size=10)
        assert [len(b) for b in explicit._chunk(make_jobs(33))] == \
            [10, 10, 10, 3]

    def test_matches_serial(self):
        module = compile_source(MP)
        spec = MemorySafetySpec()
        jobs = make_jobs(40)
        serial = SerialPool("pso", 0.3)
        serial.broadcast(module, spec)
        expected = list(serial.run(jobs))
        with ProcessPool(2, "pso", 0.3) as pool:
            pool.broadcast(module, spec)
            got = list(pool.run(jobs))
        assert got == expected
        assert any(s.violation for s in got)  # the workload does violate

    def test_rebroadcast_is_picked_up(self):
        # After a broadcast of a repaired module, workers must run the new
        # code: fence the MP program by hand and expect zero violations.
        module = compile_source(MP)
        fenced = compile_source(MP.replace("DATA = 1;",
                                           "DATA = 1; fence();"))
        jobs = make_jobs(40)
        with ProcessPool(2, "pso", 0.3) as pool:
            pool.broadcast(module, MemorySafetySpec())
            before = list(pool.run(jobs))
            pool.broadcast(fenced, MemorySafetySpec())
            after = list(pool.run(jobs))
        assert any(s.violation for s in before)
        assert not any(s.violation for s in after)

    def test_early_close_keeps_pool_usable(self):
        module = compile_source(MP)
        with ProcessPool(2, "pso", 0.3, chunk_size=5) as pool:
            pool.broadcast(module, MemorySafetySpec())
            summaries = pool.run(make_jobs(40))
            seen = []
            for summary in summaries:
                seen.append(summary)
                if len(seen) >= 3:
                    break
            summaries.close()
            assert [s.index for s in seen] == [0, 1, 2]
            # The pool survives an early close and serves the next round.
            rest = list(pool.run(make_jobs(10)))
            assert [s.index for s in rest] == list(range(10))

    def test_empty_round(self):
        module = compile_source(MP)
        with ProcessPool(2, "pso", 0.3) as pool:
            pool.broadcast(module, MemorySafetySpec())
            assert list(pool.run([])) == []
