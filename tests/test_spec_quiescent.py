"""Tests for the quiescent-consistency checker."""

import pytest

from repro.spec import EMPTY, QueueSpec, RegisterSpec
from repro.spec.checker import find_witness
from repro.spec.quiescent import (
    QuiescentConsistencySpec,
    assign_epochs,
    find_quiescent_witness,
    is_quiescently_consistent,
)
from repro.vm.driver import ExecutionResult, ExecutionStatus
from repro.vm.events import History


def history(*ops):
    h = History()
    for (tid, name, args, result, call, ret) in ops:
        op = h.begin(tid, name, args, call)
        op.result = result
        op.ret_seq = ret
    return h


class TestEpochs:
    def test_disjoint_ops_get_distinct_epochs(self):
        h = history(
            (0, "a", (), 0, 1, 2),
            (0, "b", (), 0, 5, 6),
            (0, "c", (), 0, 9, 10),
        )
        assert assign_epochs(h.operations) == [1, 2, 3]

    def test_overlapping_ops_share_an_epoch(self):
        h = history(
            (0, "a", (), 0, 1, 10),
            (1, "b", (), 0, 2, 5),
            (1, "c", (), 0, 6, 8),   # starts while a is still running
        )
        assert assign_epochs(h.operations) == [1, 1, 1]

    def test_chain_of_overlaps_is_one_epoch(self):
        h = history(
            (0, "a", (), 0, 1, 4),
            (1, "b", (), 0, 3, 8),
            (0, "c", (), 0, 7, 12),
        )
        assert assign_epochs(h.operations) == [1, 1, 1]


class TestQuiescentChecking:
    def test_program_order_not_required_within_epoch(self):
        # Same thread writes 1 then reads 0 — illegal for SC, but the two
        # ops overlap nothing and... they are separated by quiescence, so
        # QC also rejects.  Overlap them with a third op to merge epochs:
        h = history(
            (1, "read", (), 0, 1, 20),     # spans everything
            (0, "write", (1,), 0, 2, 3),
            (0, "read", (), 0, 4, 5),      # program order violated
        )
        spec = RegisterSpec()
        assert find_witness(h, spec, real_time=False) is None  # SC: no
        assert is_quiescently_consistent(h, spec)              # QC: yes

    def test_quiescence_boundary_is_binding(self):
        # write(1) fully completes, quiescence, then a read of 0: QC
        # rejects (epochs ordered), like linearizability.
        h = history(
            (0, "write", (1,), 0, 1, 2),
            (1, "read", (), 0, 5, 6),
        )
        spec = RegisterSpec()
        assert not is_quiescently_consistent(h, spec)

    def test_weaker_than_linearizability_on_overlap(self):
        # Overlapping write/read: both QC and lin accept either order.
        h = history(
            (0, "write", (1,), 0, 1, 10),
            (1, "read", (), 0, 2, 9),
        )
        assert is_quiescently_consistent(h, RegisterSpec())

    def test_queue_example(self):
        # Two concurrent enqueues, then (after quiescence) two dequeues
        # that observe them in either order: QC accepts both orders.
        for (first, second) in ((1, 2), (2, 1)):
            h = history(
                (0, "enqueue", (1,), 0, 1, 5),
                (1, "enqueue", (2,), 0, 2, 6),
                (0, "dequeue", (), first, 10, 11),
                (0, "dequeue", (), second, 12, 13),
            )
            assert is_quiescently_consistent(h, QueueSpec()), (first, second)

    def test_lost_item_still_rejected(self):
        h = history(
            (0, "enqueue", (1,), 0, 1, 2),
            (0, "dequeue", (), EMPTY, 5, 6),
        )
        assert not is_quiescently_consistent(h, QueueSpec())

    def test_witness_is_legal(self):
        h = history(
            (0, "enqueue", (1,), 0, 1, 5),
            (1, "enqueue", (2,), 0, 2, 6),
            (0, "dequeue", (), 2, 10, 11),
        )
        witness = find_quiescent_witness(h, QueueSpec())
        assert witness is not None
        assert witness[0].args == (2,)  # enqueue(2) ordered first

    def test_empty_history(self):
        assert find_quiescent_witness(History(), QueueSpec()) == []


class TestSpecWrapper:
    def make_result(self, ops, status=ExecutionStatus.OK):
        h = history(*ops)
        return ExecutionResult(status, h, [], steps=1)

    def test_clean_history_passes(self):
        result = self.make_result([
            (0, "enqueue", (1,), 0, 1, 2),
            (1, "dequeue", (), 1, 5, 6),
        ])
        assert QuiescentConsistencySpec(QueueSpec()).check(result) is None

    def test_violation_reported(self):
        result = self.make_result([
            (0, "enqueue", (1,), 0, 1, 2),
            (1, "dequeue", (), 7, 5, 6),
        ])
        message = QuiescentConsistencySpec(QueueSpec()).check(result)
        assert message is not None
        assert "quiescently" in message

    def test_crash_dominates(self):
        result = self.make_result([], status=ExecutionStatus.MEMORY_VIOLATION)
        result.error = "boom"
        assert QuiescentConsistencySpec(QueueSpec()).check(result) is not None


class TestHierarchy:
    def test_linearizable_implies_quiescently_consistent(self):
        # Sample a few random-ish histories; any lin-accepted one must be
        # QC-accepted (lin = QC + program order, both respect real time).
        samples = [
            [(0, "enqueue", (1,), 0, 1, 4), (1, "dequeue", (), 1, 2, 6)],
            [(0, "enqueue", (1,), 0, 1, 2), (1, "dequeue", (), 1, 3, 4)],
            [(0, "enqueue", (1,), 0, 1, 8),
             (1, "enqueue", (2,), 0, 2, 7),
             (0, "dequeue", (), 2, 9, 10)],
        ]
        for ops in samples:
            h = history(*ops)
            if find_witness(h, QueueSpec(), real_time=True) is not None:
                assert is_quiescently_consistent(h, QueueSpec()), ops


class TestEngineIntegration:
    def test_qc_spec_available_on_bundles(self):
        from repro.algorithms import ALGORITHMS
        spec = ALGORITHMS["chase_lev"].spec("qc")
        assert spec.name == "quiescent_consistency"

    def test_qc_between_sc_and_lin_on_chase_lev_pso(self):
        from repro.algorithms import ALGORITHMS
        from repro.synth import SynthesisConfig, SynthesisEngine

        bundle = ALGORITHMS["chase_lev"]
        counts = {}
        for kind in ("sc", "qc"):
            config = SynthesisConfig(
                memory_model="pso", flush_prob=0.2,
                executions_per_round=600, max_rounds=12, seed=7)
            result = SynthesisEngine(config).synthesize(
                bundle.compile(), bundle.spec(kind),
                entries=bundle.entries, operations=bundle.operations)
            counts[kind] = result.fence_count
        # QC's quiescence real-time constraint demands at least SC's
        # fences (it resurrects the F3-class end-of-put fence).
        assert counts["qc"] >= counts["sc"]
