"""Unit tests for shared memory layout and memory-safety metadata."""

import pytest

from repro.ir import GlobalVar, Module
from repro.vm import MemorySafetyViolation, NULL_GUARD, SharedMemory


def memory_with(*globals_):
    module = Module()
    for var in globals_:
        module.add_global(var)
    return SharedMemory(module)


class TestLayout:
    def test_globals_get_distinct_addresses(self):
        mem = memory_with(GlobalVar("A"), GlobalVar("B", 4), GlobalVar("C"))
        a, b, c = mem.global_addr["A"], mem.global_addr["B"], mem.global_addr["C"]
        assert a < b < c
        assert b >= a + 1
        assert c >= b + 4

    def test_initializers_applied(self):
        mem = memory_with(GlobalVar("A", 3, [7, 8]))
        base = mem.global_addr["A"]
        assert mem.read(base) == 7
        assert mem.read(base + 1) == 8
        assert mem.read(base + 2) == 0

    def test_addresses_start_past_null_guard(self):
        mem = memory_with(GlobalVar("A"))
        assert mem.global_addr["A"] >= NULL_GUARD


class TestPageAlloc:
    def test_regions_are_two_aligned(self):
        mem = memory_with(GlobalVar("pad"))
        for size in (1, 2, 3, 5):
            base = mem.pagealloc(size)
            assert base % 2 == 0

    def test_cells_zeroed(self):
        mem = memory_with()
        base = mem.pagealloc(4)
        assert all(mem.read(base + i) == 0 for i in range(4))

    def test_non_positive_size_rejected(self):
        mem = memory_with()
        with pytest.raises(MemorySafetyViolation):
            mem.pagealloc(0)

    def test_regions_do_not_overlap(self):
        mem = memory_with()
        spans = []
        for size in (3, 1, 8):
            base = mem.pagealloc(size)
            spans.append((base, base + size))
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2


class TestValidity:
    def test_globals_valid(self):
        mem = memory_with(GlobalVar("A", 3))
        base = mem.global_addr["A"]
        assert mem.is_valid(base)
        assert mem.is_valid(base + 2)

    def test_out_of_bounds_invalid(self):
        mem = memory_with(GlobalVar("A", 3))
        base = mem.global_addr["A"]
        assert not mem.is_valid(base + 3)

    def test_null_and_guard_page_invalid(self):
        mem = memory_with(GlobalVar("A"))
        for addr in range(NULL_GUARD):
            assert not mem.is_valid(addr)

    def test_check_raises_with_context(self):
        mem = memory_with()
        with pytest.raises(MemorySafetyViolation, match="NULL"):
            mem.check(0, "load", tid=1, label=42)
        with pytest.raises(MemorySafetyViolation, match="out-of-bounds"):
            mem.check(10 ** 6, "load", tid=1, label=42)

    def test_region_of(self):
        mem = memory_with()
        base = mem.pagealloc(4)
        assert mem.region_of(base + 2) == (base, 4)
        assert mem.region_of(base + 4) is None


class TestPageFree:
    def test_freed_region_becomes_invalid(self):
        mem = memory_with()
        base = mem.pagealloc(4)
        mem.pagefree(base)
        assert not mem.is_valid(base)
        assert not mem.is_valid(base + 3)

    def test_free_of_non_base_rejected(self):
        mem = memory_with()
        base = mem.pagealloc(4)
        with pytest.raises(MemorySafetyViolation):
            mem.pagefree(base + 1)

    def test_double_free_rejected(self):
        mem = memory_with()
        base = mem.pagealloc(4)
        mem.pagefree(base)
        with pytest.raises(MemorySafetyViolation):
            mem.pagefree(base)

    def test_other_regions_survive_free(self):
        mem = memory_with()
        a = mem.pagealloc(2)
        b = mem.pagealloc(2)
        mem.pagefree(a)
        assert mem.is_valid(b)
        assert list(mem.live_regions()) == [(b, 2)]
