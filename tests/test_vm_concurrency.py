"""Deeper VM concurrency semantics: multi-thread structures, CAS races,
cross-thread allocation, recursion depth, and operation recording."""

import pytest

from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import FlushDelayScheduler, RoundRobinScheduler
from repro.sched.exhaustive import explore
from repro.vm import VM


def run(source, model="sc", seed=0, flush_prob=0.3, entry="main"):
    module = compile_source(source)
    vm = VM(module, make_model(model), entry=entry)
    FlushDelayScheduler(seed=seed, flush_prob=flush_prob).run(vm)
    return vm


class TestThreeThreads:
    SRC = """
    int C;
    void bump() {
      while (1) {
        int c = C;
        if (cas(&C, c, c + 1)) { return; }
      }
    }
    int main() {
      int t1 = fork(bump);
      int t2 = fork(bump);
      int t3 = fork(bump);
      join(t1); join(t2); join(t3);
      return C;
    }
    """

    @pytest.mark.parametrize("model", ["sc", "tso", "pso"])
    def test_cas_increment_is_exact_with_three_threads(self, model):
        for seed in range(8):
            vm = run(self.SRC, model, seed)
            assert vm.threads[0].result == 3

    @pytest.mark.slow
    def test_exhaustive_three_thread_cas(self):
        # Three CAS loops explode the schedule tree past exact
        # enumeration; the sound claim is that every explored schedule
        # (tens of thousands) yields exactly 3.
        module = compile_source(self.SRC)
        result = explore(module, "sc",
                         outcome_fn=lambda vm: (vm.threads[0].result,),
                         max_paths=20_000)
        assert result.paths >= 1000
        assert result.outcomes == {(3,)}


class TestForkTopology:
    def test_grandchildren(self):
        src = """
        int DEPTH;
        void leaf() { DEPTH = DEPTH + 100; }
        void child() {
          int t = fork(leaf);
          join(t);
          DEPTH = DEPTH + 10;
        }
        int main() {
          int t = fork(child);
          join(t);
          DEPTH = DEPTH + 1;
          return DEPTH;
        }
        """
        assert run(src).threads[0].result == 111

    def test_sibling_join_by_tid_value(self):
        # Thread ids are plain ints: a thread can join a sibling whose
        # tid it received as an argument.
        src = """
        int OUT;
        void slow() { OUT = 5; }
        void waiter(int target) {
          join(target);
          OUT = OUT * 2;
        }
        int main() {
          int t1 = fork(slow);
          int t2 = fork(waiter, t1);
          join(t2);
          return OUT;
        }
        """
        for model in ("sc", "tso", "pso"):
            for seed in range(6):
                assert run(src, model, seed).threads[0].result == 10

    def test_many_threads(self):
        src = """
        int total[1];
        int tids[8];
        int L;
        void w(int k) {
          lock(&L);
          total[0] = total[0] + k;
          unlock(&L);
        }
        int main() {
          for (int i = 0; i < 8; i = i + 1) {
            tids[i] = fork(w, i);
          }
          for (int i = 0; i < 8; i = i + 1) {
            join(tids[i]);
          }
          return total[0];
        }
        """
        # tids live in a global array (MiniC locals are scalar registers).
        for seed in range(4):
            assert run(src, "pso", seed).threads[0].result == 28


class TestCrossThreadHeap:
    def test_child_allocates_parent_reads(self):
        src = """
        int* SHARED;
        void maker() {
          int* p = pagealloc(3);
          p[0] = 7; p[1] = 8; p[2] = 9;
          SHARED = p;
        }
        int main() {
          int t = fork(maker);
          join(t);
          int* p = SHARED;
          return p[0] + p[1] + p[2];
        }
        """
        for model in ("tso", "pso"):
            for seed in range(6):
                assert run(src, model, seed).threads[0].result == 24

    def test_parent_frees_child_allocation(self):
        src = """
        int* SHARED;
        void maker() { SHARED = pagealloc(2); }
        int main() {
          int t = fork(maker);
          join(t);
          pagefree(SHARED);
          return 1;
        }
        """
        assert run(src).threads[0].result == 1


class TestRecursionDepth:
    def test_deep_recursion(self):
        src = """
        int depth(int n) {
          if (n == 0) { return 0; }
          return 1 + depth(n - 1);
        }
        int main() { return depth(200); }
        """
        assert run(src).threads[0].result == 200

    def test_mutual_recursion(self):
        src = """
        int is_odd(int n);
        int is_even(int n) {
          if (n == 0) { return 1; }
          return is_odd(n - 1);
        }
        int is_odd(int n) {
          if (n == 0) { return 0; }
          return is_even(n - 1);
        }
        int main() { return is_even(10) * 10 + is_odd(7); }
        """
        # Prototypes are not part of the grammar: the parser rejects the
        # body-less declaration.
        from repro.minic import ParseError
        with pytest.raises(ParseError):
            compile_source(src)

    def test_mutual_recursion_via_definition_order(self):
        # All signatures are collected before bodies are lowered, so
        # definition order does not matter (no forward declarations
        # needed).
        src = """
        int is_even(int n) {
          if (n == 0) { return 1; }
          return is_odd(n - 1);
        }
        int is_odd(int n) {
          if (n == 0) { return 0; }
          return is_even(n - 1);
        }
        int main() { return is_even(10) * 10 + is_odd(7); }
        """
        assert run(src).threads[0].result == 11


class TestOperationRecording:
    def test_nested_operation_calls_both_recorded(self):
        src = """
        int inner(int x) { return x + 1; }
        int outer(int x) { return inner(x) * 2; }
        int main() { outer(3); return 0; }
        """
        from repro.vm import run_once
        module = compile_source(src)
        result = run_once(module, operations=("outer", "inner"))
        names = [op.name for op in result.history]
        assert names == ["outer", "inner"]
        outer_op = result.history.operations[0]
        inner_op = result.history.operations[1]
        # Nesting: inner's span lies within outer's.
        assert outer_op.call_seq < inner_op.call_seq
        assert inner_op.ret_seq < outer_op.ret_seq

    def test_per_thread_attribution(self):
        src = """
        int op(int x) { return x; }
        void w() { op(2); }
        int main() { int t = fork(w); op(1); join(t); return 0; }
        """
        from repro.vm import run_once
        module = compile_source(src)
        result = run_once(module, operations=("op",), seed=4)
        tids = {op.args[0]: op.tid for op in result.history}
        assert tids[1] == 0
        assert tids[2] == 1
