"""Exhaustive-exploration validation of the memory-model semantics.

The stateless DFS explorer enumerates *every* schedule (thread steps and
flush actions) of bounded litmus programs, so these tests pin down the
exact outcome sets each model admits — a much stronger check than random
sampling, and a cross-validation of the random scheduler's findings.
"""

import pytest

from repro.minic import compile_source
from repro.sched.exhaustive import explore

# Results travel through thread return values (not globals), keeping the
# schedule tree small enough for exact enumeration.
SB = """
int X; int Y;
int t1() { X = 1; int r = Y; return r; }
int main() {
  int t = fork(t1);
  Y = 1;
  int r = X;
  join(t);
  return r;
}
"""

SB_FENCED = """
int X; int Y;
int t1() { X = 1; fence_sl(); int r = Y; return r; }
int main() {
  int t = fork(t1);
  Y = 1;
  fence_sl();
  int r = X;
  join(t);
  return r;
}
"""


def thread_results(vm):
    return tuple(vm.threads[tid].result for tid in sorted(vm.threads))

# Bounded message passing: the reader samples the flag once instead of
# spinning, keeping the schedule tree finite.
MP_BOUNDED = """
int D; int F;
int reader() {
  if (F == 1) { return D; }
  return 9;
}
int main() {
  int t = fork(reader);
  D = 1; F = 1;
  join(t);
  return 0;
}
"""

CAS_RACE = """
int X; int WINS;
void t1() { if (cas(&X, 0, 1)) { WINS = WINS + 10; } }
int main() {
  int t = fork(t1);
  if (cas(&X, 0, 2)) { WINS = WINS + 1; }
  join(t);
  return 0;
}
"""


def outcomes(source, globals_, model, **kw):
    module = compile_source(source)
    result = explore(module, model, outcome_globals=globals_, **kw)
    assert result.complete, "path budget too small for an exact answer"
    return result.outcomes


def result_outcomes(source, model, **kw):
    """Outcome = every thread's return value, in tid order."""
    module = compile_source(source)
    result = explore(module, model, outcome_fn=thread_results, **kw)
    assert result.complete, "path budget too small for an exact answer"
    return result.outcomes


class TestStoreBufferingExact:
    # Outcomes are (r2, r1) = (main's read of X, t1's read of Y).
    def test_sc_outcome_set(self):
        got = result_outcomes(SB, "sc")
        assert got == {(0, 1), (1, 0), (1, 1)}

    def test_tso_adds_exactly_the_relaxed_outcome(self):
        got = result_outcomes(SB, "tso")
        assert got == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_pso_same_as_tso_for_sb(self):
        got = result_outcomes(SB, "pso")
        assert got == {(0, 0), (0, 1), (1, 0), (1, 1)}

    @pytest.mark.parametrize("model", ["sc", "tso", "pso"])
    def test_fences_remove_only_the_relaxed_outcome(self, model):
        got = result_outcomes(SB_FENCED, model)
        assert got == {(0, 1), (1, 0), (1, 1)}


class TestMessagePassingExact:
    # Outcomes are (0, reader's result).
    def test_sc_outcomes(self):
        got = result_outcomes(MP_BOUNDED, "sc")
        assert got == {(0, 1), (0, 9)}

    def test_tso_preserves_store_order(self):
        got = result_outcomes(MP_BOUNDED, "tso")
        assert got == {(0, 1), (0, 9)}

    def test_pso_adds_the_stale_data_outcome(self):
        got = result_outcomes(MP_BOUNDED, "pso")
        assert got == {(0, 0), (0, 1), (0, 9)}


class TestCasAtomicity:
    @pytest.mark.parametrize("model", ["sc", "tso", "pso"])
    def test_exactly_one_cas_wins(self, model):
        got = outcomes(CAS_RACE, ("WINS", "X"), model)
        # One winner: WINS is 1 (main won, X=2) or 10 (thread won, X=1).
        assert got == {(1, 2), (10, 1)}


class TestExplorerMechanics:
    def test_budget_reported(self):
        module = compile_source(SB)
        result = explore(module, "pso", outcome_fn=thread_results,
                         max_paths=3)
        assert not result.complete
        assert result.paths == 3

    def test_violations_collected(self):
        src = """
        int X;
        void t1() { X = 1; }
        int main() {
          int t = fork(t1);
          assert(X == 0);
          join(t);
          return 0;
        }
        """
        module = compile_source(src)
        result = explore(module, "sc", outcome_globals=("X",))
        assert result.violations  # some schedule fails the assert
        assert result.outcomes    # and some schedule passes

    def test_agreement_with_random_scheduler(self):
        # Every outcome the random scheduler observes must be in the
        # exhaustive set (soundness of the sampler).
        from repro.memory import make_model
        from repro.sched import FlushDelayScheduler
        from repro.vm import VM

        module = compile_source(SB)
        exact = result_outcomes(SB, "pso")
        for seed in range(60):
            vm = VM(module, make_model("pso"))
            FlushDelayScheduler(seed=seed, flush_prob=0.3).run(vm)
            sampled = tuple(vm.threads[tid].result
                            for tid in sorted(vm.threads))
            assert sampled in exact
