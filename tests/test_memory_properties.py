"""Property-based tests of the store-buffer models (hypothesis).

Invariants checked against a reference:

* draining a TSO buffer commits stores in exact issue order;
* draining a PSO buffer commits stores to each address in issue order
  (cross-address order is free);
* after a full drain, shared memory equals the final value written to
  each address, regardless of interleaved partial flushes;
* a thread's read always sees its newest own pending store (forwarding),
  falling back to committed memory.
"""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import PSOModel, TSOModel

ADDRS = [100, 101, 102]

#: (op, addr, value) where op is "w" (write), "f" (flush one), "r" (read).
OPS = st.lists(
    st.tuples(st.sampled_from(["w", "w", "w", "f", "r"]),
              st.sampled_from(ADDRS),
              st.integers(min_value=0, max_value=99)),
    max_size=40,
)


class Recorder:
    def __init__(self):
        self.cells = {}
        self.commits = []

    def commit(self, tid, addr, value, label):
        self.cells[addr] = value
        self.commits.append((addr, value))


def run_script(model, ops):
    rec = Recorder()
    model.attach(rec.commit, None)
    issued = []
    expected_reads = {}
    committed = {}
    label = 0
    for (op, addr, value) in ops:
        label += 1
        if op == "w":
            model.write(0, addr, value, label)
            issued.append((addr, value))
        elif op == "f":
            model.flush_one(0, addr)
        elif op == "r":
            hit, got = model.read(0, addr, label)
            # Reference: newest own pending write, else last committed.
            pending = [v for (a, v) in issued if a == addr]
            pending = pending[len([c for c in rec.commits if c[0] == addr]):]
            if pending:
                assert hit and got == pending[-1]
            else:
                assert not hit
    return rec, issued


@settings(max_examples=200, deadline=None)
@given(ops=OPS)
def test_tso_commit_order_is_issue_order(ops):
    model = TSOModel()
    rec, issued = run_script(model, ops)
    model.drain(0)
    assert rec.commits == issued


@settings(max_examples=200, deadline=None)
@given(ops=OPS)
def test_tso_final_memory_matches_last_writes(ops):
    model = TSOModel()
    rec, issued = run_script(model, ops)
    model.drain(0)
    final = {}
    for (addr, value) in issued:
        final[addr] = value
    assert rec.cells == final


@settings(max_examples=200, deadline=None)
@given(ops=OPS)
def test_pso_per_address_commit_order(ops):
    model = PSOModel()
    rec, issued = run_script(model, ops)
    model.drain(0)
    per_addr_issued = defaultdict(list)
    for (addr, value) in issued:
        per_addr_issued[addr].append(value)
    per_addr_committed = defaultdict(list)
    for (addr, value) in rec.commits:
        per_addr_committed[addr].append(value)
    assert per_addr_committed == per_addr_issued


@settings(max_examples=200, deadline=None)
@given(ops=OPS)
def test_pso_final_memory_matches_last_writes(ops):
    model = PSOModel()
    rec, issued = run_script(model, ops)
    model.drain(0)
    final = {}
    for (addr, value) in issued:
        final[addr] = value
    assert rec.cells == final


@settings(max_examples=150, deadline=None)
@given(ops=OPS, model_cls=st.sampled_from([TSOModel, PSOModel]))
def test_pending_count_matches_unflushed_writes(ops, model_cls):
    model = model_cls()
    rec = Recorder()
    model.attach(rec.commit, None)
    writes = 0
    label = 0
    for (op, addr, value) in ops:
        label += 1
        if op == "w":
            model.write(0, addr, value, label)
            writes += 1
        elif op == "f":
            if model.flush_one(0, addr if model_cls is PSOModel else None):
                writes -= 1
    assert model.pending_count(0) == writes
    assert model.has_pending(0) == (writes > 0)
