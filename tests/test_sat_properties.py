"""Property-based tests: the CDCL solver against brute force (hypothesis)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import SATSolver, solve_clauses
from repro.sat.models import enumerate_minimal_models, minimum_model


def brute_force_sat(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {v + 1: bits[v] for v in range(num_vars)}
        if all(any((lit > 0) == model[abs(lit)] for lit in clause)
               for clause in clauses):
            return True
    return False


@st.composite
def cnf(draw, max_vars=7, max_clauses=18, max_len=4):
    n = draw(st.integers(min_value=1, max_value=max_vars))
    m = draw(st.integers(min_value=0, max_value=max_clauses))
    clauses = []
    for _ in range(m):
        k = draw(st.integers(min_value=1, max_value=max_len))
        clause = [draw(st.sampled_from([1, -1]))
                  * draw(st.integers(min_value=1, max_value=n))
                  for _ in range(k)]
        clauses.append(clause)
    return n, clauses


@settings(max_examples=300, deadline=None)
@given(problem=cnf())
def test_solver_agrees_with_brute_force(problem):
    n, clauses = problem
    got = solve_clauses(clauses)
    want = brute_force_sat(clauses, n)
    assert (got is not None) == want


@settings(max_examples=300, deadline=None)
@given(problem=cnf())
def test_returned_models_satisfy_all_clauses(problem):
    _n, clauses = problem
    model = solve_clauses(clauses)
    if model is None:
        return
    for clause in clauses:
        assert any((lit > 0) == model[abs(lit)] for lit in clause)


@settings(max_examples=150, deadline=None)
@given(problem=cnf(max_vars=6, max_clauses=12))
def test_incremental_blocking_enumerates_all_models(problem):
    """Blocking each full model enumerates exactly the brute-force count."""
    n, clauses = problem
    solver = SATSolver()
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    # Force every variable 1..n to exist.
    while solver.num_vars < n:
        solver.new_var()
    count = 0
    while ok and count <= 2 ** n:
        model = solver.solve()
        if model is None:
            break
        count += 1
        blocking = [-v if model[v] else v for v in range(1, n + 1)]
        ok = solver.add_clause(blocking)
    expected = sum(
        1 for bits in itertools.product([False, True], repeat=n)
        if all(any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
               for clause in clauses))
    assert count == expected


@st.composite
def monotone_cnf(draw, max_vars=8, max_clauses=10):
    n = draw(st.integers(min_value=1, max_value=max_vars))
    m = draw(st.integers(min_value=1, max_value=max_clauses))
    clauses = []
    for _ in range(m):
        size = draw(st.integers(min_value=1, max_value=min(4, n)))
        clause = draw(st.lists(st.integers(min_value=1, max_value=n),
                               min_size=size, max_size=size, unique=True))
        clauses.append(clause)
    return n, clauses


@settings(max_examples=200, deadline=None)
@given(problem=monotone_cnf())
def test_minimal_models_are_hitting_sets(problem):
    n, clauses = problem
    models = enumerate_minimal_models(clauses)
    assert models, "positive CNF is always satisfiable"
    for model in models:
        # Hits every clause.
        for clause in clauses:
            assert any(v in model for v in clause)
        # Inclusion-minimal: removing any element breaks some clause.
        for v in model:
            smaller = model - {v}
            assert any(all(u not in smaller for u in clause)
                       for clause in clauses)


@settings(max_examples=200, deadline=None)
@given(problem=monotone_cnf(max_vars=7, max_clauses=8))
def test_minimum_model_has_brute_force_minimum_cardinality(problem):
    n, clauses = problem
    best = minimum_model(clauses)
    assert best is not None
    smallest = min(
        (len(subset)
         for r in range(n + 1)
         for subset in itertools.combinations(range(1, n + 1), r)
         if all(any(v in subset for v in clause) for clause in clauses)),
    )
    assert len(best) == smallest
