"""The random program generator: deterministic, bounded, compilable."""

import pytest

from repro.fuzz.generator import (
    GeneratorConfig,
    ProgramGenerator,
    _access_cost,
)
from repro.memory import make_model
from repro.sched.flush_random import FlushDelayScheduler
from repro.vm.driver import run_execution

pytestmark = pytest.mark.fuzz

SEEDS = range(30)


def total_accesses(program):
    return sum(_access_cost(stmt)
               for body in program.threads for stmt in body)


def test_same_seed_same_program():
    gen = ProgramGenerator()
    for seed in SEEDS:
        first = gen.generate(seed)
        second = gen.generate(seed)
        assert first.source() == second.source()
        # A second generator instance agrees too (no hidden state).
        assert ProgramGenerator().generate(seed).source() == first.source()


def test_different_seeds_differ():
    gen = ProgramGenerator()
    sources = {gen.generate(seed).source() for seed in SEEDS}
    assert len(sources) > len(SEEDS) // 2


def test_programs_compile_and_run():
    gen = ProgramGenerator()
    for seed in SEEDS:
        module = gen.generate(seed).compile()
        assert "main" in module.functions
        result = run_execution(module, make_model("pso"),
                               FlushDelayScheduler(seed=0, flush_prob=0.3),
                               collect_predicates=False)
        assert result.usable, (seed, result.error)
        assert result.thread_results is not None
        assert all(r is not None for r in result.thread_results), seed


def test_bounds_respected():
    cfg = GeneratorConfig()
    gen = ProgramGenerator(cfg)
    for seed in SEEDS:
        program = gen.generate(seed)
        assert cfg.min_globals <= len(program.global_vars) <= cfg.max_globals
        assert 2 <= len(program.threads) <= 3
        cap = cfg.max_accesses if len(program.threads) == 2 \
            else cfg.max_accesses_three_threads
        assert cfg.min_accesses <= total_accesses(program) <= cap, seed
        for body in program.threads:
            assert len(body) <= cfg.max_stmts_per_body


def test_programs_iterator_matches_generate():
    gen = ProgramGenerator()
    streamed = [p.source() for p in gen.programs(5, 4)]
    direct = [gen.generate(seed).source() for seed in range(5, 9)]
    assert streamed == direct


def test_skeletons_make_some_programs_racy():
    """With conflict skeletons planted, a fair share of programs must
    actually exhibit relaxed behaviour — otherwise the synthesis oracle
    never runs and the campaign fuzzes only the easy half of the system.
    """
    from repro.fuzz.oracles import thread_results
    from repro.sched.exhaustive import explore

    gen = ProgramGenerator()
    racy = 0
    for seed in range(8):
        module = gen.generate(seed).compile()
        sc = explore(module, "sc", outcome_fn=thread_results,
                     max_paths=30_000)
        pso = explore(module, "pso", outcome_fn=thread_results,
                      max_paths=30_000)
        if sc.complete and pso.complete \
                and pso.outcomes - sc.outcomes:
            racy += 1
    assert racy >= 2


def test_clone_is_deep():
    program = ProgramGenerator().generate(0)
    copy = program.clone()
    assert copy.source() == program.source()
    copy.threads[0].insert(0, copy.threads[0][0].clone())
    assert copy.source() != program.source()
