"""The differential oracle suite.

The key test here is the broken-model demonstration: a TSO variant that
flushes same-location stores newest-first (a coherence violation no real
store buffer commits) must be caught by oracle 1 — its outcomes are not
reproducible under PSO, so the ``tso ⊆ pso`` inclusion check fails.
"""

from types import SimpleNamespace

import pytest

from repro.fuzz.oracles import (
    OracleConfig,
    OracleReport,
    OutcomeSpec,
    _Checker,
    check_module,
    fully_fenced,
    thread_results,
)
from repro.litmus import LITMUS_TESTS
from repro.memory import make_model
from repro.memory.models import PSOModel, TSOModel
from repro.sched.exhaustive import explore
from repro.vm.driver import run_execution
from repro.sched.flush_random import FlushDelayScheduler

pytestmark = pytest.mark.fuzz


class LifoFlushTSOModel(TSOModel):
    """Deliberately broken TSO: flushes commit newest-first.

    Same-location stores therefore reach memory in reverse order — the
    final value of ``X = 1; X = 2`` can be 1, which no coherent model
    (PSO included) admits.  The ``name`` stays "tso" so the explorer's
    flush enumeration treats it as the TSO family.
    """

    def flush_one(self, tid, addr=None):
        buf = self._buffers.get(tid)
        if not buf:
            return False
        if addr is not None and buf[-1][0] != addr:
            return False
        pending_addr, value, label = buf.pop()
        self._note_pop(tid)
        self._do_commit(tid, pending_addr, value, label)
        return True


def broken_factory(name):
    if name == "tso":
        return LifoFlushTSOModel()
    return make_model(name)


class FenceDroppingPSOModel(PSOModel):
    """Deliberately broken PSO: fences are no-ops.

    Any program with relaxed behaviour then keeps it even fully fenced,
    so oracle 2 (fenced_sc) fires on every violating input — the
    broad-trigger breakage the campaign failure-path test relies on.
    """

    def fence(self, tid, kind):
        pass


def fence_dropping_factory(name):
    if name == "pso":
        return FenceDroppingPSOModel()
    return make_model(name)


def small_budget_config(**kwargs):
    """Keep demonstration runs quick: tiny sampling/synthesis budgets."""
    defaults = dict(random_runs=10, synth_executions=40, synth_rounds=3,
                    synth_attempts=1)
    defaults.update(kwargs)
    return OracleConfig(**defaults)


def test_clean_program_passes_all_oracles():
    report = check_module(LITMUS_TESTS["mp_fenced"].compile(),
                          small_budget_config())
    assert report.ok
    assert report.inconclusive == []
    assert report.violating_models == []


def test_violating_program_passes_and_exercises_synthesis():
    report = check_module(LITMUS_TESTS["sb"].compile(),
                          small_budget_config())
    assert report.ok, report.failures
    assert report.violating_models == ["tso", "pso"]


def test_broken_lifo_tso_caught_by_inclusion_oracle():
    """Acceptance demo: the intentionally broken model (flush reordered
    per location) produces outcomes PSO cannot, and oracle 1 says so."""
    report = check_module(LITMUS_TESTS["coww"].compile(),
                          small_budget_config(
                              model_factory=broken_factory))
    assert not report.ok
    assert any(f.oracle == "inclusion" and f.model == "pso"
               for f in report.failures), report.failures


def test_fence_dropping_pso_caught_by_fenced_sc_oracle():
    report = check_module(LITMUS_TESTS["sb"].compile(),
                          small_budget_config(
                              model_factory=fence_dropping_factory))
    assert any(f.oracle == "fenced_sc" and f.model == "pso"
               for f in report.failures), report.failures


def test_fully_fenced_is_sc_equivalent():
    module = LITMUS_TESTS["sb"].compile()
    sc = explore(module, "sc", outcome_fn=thread_results)
    fenced = fully_fenced(module)
    for model in ("tso", "pso"):
        relaxed = explore(fenced, model, outcome_fn=thread_results)
        assert relaxed.complete
        assert relaxed.outcomes == sc.outcomes
    # The original (unfenced) module stays untouched by the clone.
    assert explore(module, "pso",
                   outcome_fn=thread_results).outcomes > sc.outcomes


def test_outcome_spec_flags_non_sc_outcome():
    module = LITMUS_TESTS["sb"].compile()
    result = run_execution(module, make_model("sc"),
                           FlushDelayScheduler(seed=0, flush_prob=0.0),
                           collect_predicates=False)
    assert result.usable
    admitting = OutcomeSpec({result.thread_results})
    assert admitting.check(result) is None
    rejecting = OutcomeSpec(frozenset())
    assert "not admitted under SC" in rejecting.check(result)


def test_random_subset_oracle_fires_on_doctored_exhaustive_set():
    """Unit demo for oracle 3: hand the checker an exhaustive set that
    is missing everything — the first usable random outcome must be
    reported as outside it."""
    module = LITMUS_TESTS["sb"].compile()
    cfg = small_budget_config()
    report = OracleReport()
    checker = _Checker(cfg, report)
    doctored = SimpleNamespace(outcomes=frozenset())
    checker.check_random_subset(module, {"tso": doctored,
                                         "pso": doctored})
    assert any(f.oracle == "random_subset" for f in report.failures)


def test_path_budget_exhaustion_is_inconclusive_not_failing():
    report = check_module(LITMUS_TESTS["sb"].compile(),
                          small_budget_config(max_paths=5,
                                              max_total_paths=15))
    assert report.ok
    assert report.inconclusive  # every exploration blew the tiny budget
