"""Unit tests for the repair formula Φ."""

from repro.ir.instructions import FenceKind
from repro.memory.predicates import OrderingPredicate
from repro.synth import RepairFormula


def pred(l, k, kind=FenceKind.ST_ST):
    return OrderingPredicate(l, k, kind)


class TestRepairFormula:
    def test_empty_execution_is_unfixable(self):
        formula = RepairFormula()
        assert not formula.add_execution([])
        assert formula.num_clauses == 0

    def test_single_execution_single_predicate(self):
        formula = RepairFormula()
        assert formula.add_execution([pred(1, 2)])
        repair = formula.minimal_repair()
        assert [p.key for p in repair] == [(1, 2)]

    def test_duplicate_clauses_collapse(self):
        formula = RepairFormula()
        formula.add_execution([pred(1, 2), pred(3, 4)])
        formula.add_execution([pred(3, 4), pred(1, 2)])
        assert formula.num_clauses == 1

    def test_minimal_repair_prefers_shared_predicate(self):
        formula = RepairFormula()
        shared = pred(5, 6)
        formula.add_execution([pred(1, 2), shared])
        formula.add_execution([shared, pred(3, 4)])
        repair = formula.minimal_repair()
        assert [p.key for p in repair] == [(5, 6)]

    def test_disjoint_clauses_need_two_predicates(self):
        formula = RepairFormula()
        formula.add_execution([pred(1, 2)])
        formula.add_execution([pred(3, 4)])
        repair = formula.minimal_repair()
        assert {p.key for p in repair} == {(1, 2), (3, 4)}

    def test_kind_merging_across_executions(self):
        formula = RepairFormula()
        formula.add_execution([pred(1, 2, FenceKind.ST_ST)])
        formula.add_execution([pred(1, 2, FenceKind.ST_LD)])
        repair = formula.minimal_repair()
        assert repair[0].kind is FenceKind.FULL

    def test_reset_clears_clauses_keeps_identification(self):
        formula = RepairFormula()
        formula.add_execution([pred(1, 2)])
        formula.reset()
        assert formula.num_clauses == 0
        assert formula.minimal_repair() == []
        formula.add_execution([pred(1, 2)])
        assert formula.num_predicates == 1  # same variable reused

    def test_predicates_listing(self):
        formula = RepairFormula()
        formula.add_execution([pred(9, 10), pred(1, 2)])
        assert [p.key for p in formula.predicates()] == [(9, 10), (1, 2)]
