"""Additional memory-model edge cases and predicate plumbing."""

import pytest

from repro.ir.instructions import FenceKind
from repro.memory import PSOModel, PredicateSink, SCModel, TSOModel
from repro.memory.predicates import OrderingPredicate, merge_kinds


class Recorder:
    def __init__(self):
        self.cells = {}

    def commit(self, tid, addr, value, label):
        self.cells[addr] = value


class TestAttachment:
    def test_unattached_model_refuses_commits(self):
        model = TSOModel()
        model.write(0, 100, 1, label=1)
        with pytest.raises(RuntimeError, match="not attached"):
            model.drain(0)

    def test_sc_unattached_write_fails_immediately(self):
        model = SCModel()
        with pytest.raises(RuntimeError):
            model.write(0, 100, 1, label=1)


class TestSCNoOps:
    def test_fence_and_cas_are_noops(self):
        model = SCModel()
        rec = Recorder()
        model.attach(rec.commit)
        for kind in FenceKind:
            model.fence(0, kind)
        model.pre_cas(0, 100, label=1)
        assert not model.has_pending(0)
        assert model.pending_count(0) == 0


class TestTSOOrdering:
    def test_pending_addrs_reflect_fifo_order(self):
        model = TSOModel()
        model.attach(Recorder().commit)
        model.write(0, 300, 1, label=1)
        model.write(0, 100, 2, label=2)
        model.write(0, 300, 3, label=3)
        assert model.pending_addrs(0) == [300, 100, 300]

    def test_interleaved_addresses_forward_correctly(self):
        model = TSOModel()
        model.attach(Recorder().commit)
        model.write(0, 100, 1, label=1)
        model.write(0, 200, 2, label=2)
        model.write(0, 100, 3, label=3)
        assert model.read(0, 100, label=4) == (True, 3)
        assert model.read(0, 200, label=5) == (True, 2)

    def test_partial_drain_then_read_falls_through(self):
        model = TSOModel()
        rec = Recorder()
        model.attach(rec.commit)
        model.write(0, 100, 7, label=1)
        model.flush_one(0)
        hit, _value = model.read(0, 100, label=2)
        assert not hit            # buffered copy gone
        assert rec.cells[100] == 7


class TestPSOOrdering:
    def test_drain_addr_leaves_other_buffers(self):
        model = PSOModel()
        rec = Recorder()
        model.attach(rec.commit)
        model.write(0, 100, 1, label=1)
        model.write(0, 100, 2, label=2)
        model.write(0, 200, 3, label=3)
        model.drain_addr(0, 100)
        assert rec.cells == {100: 2}
        assert model.pending_addrs(0) == [200]

    def test_default_flush_is_deterministic(self):
        committed = []

        def commit(tid, addr, value, label):
            committed.append(addr)

        model = PSOModel()
        model.attach(commit)
        model.write(0, 300, 1, label=1)
        model.write(0, 100, 2, label=2)
        model.flush_one(0)           # no addr: smallest pending address
        assert committed == [100]

    def test_predicates_enumerate_all_pending_labels(self):
        sink = PredicateSink()
        model = PSOModel()
        model.attach(Recorder().commit, sink)
        model.write(0, 100, 1, label=11)
        model.write(0, 100, 2, label=12)   # same var: two pending labels
        model.read(0, 200, label=13)
        assert {p.key for p in sink} == {(11, 13), (12, 13)}

    def test_cross_thread_isolation(self):
        sink = PredicateSink()
        model = PSOModel()
        model.attach(Recorder().commit, sink)
        model.write(0, 100, 1, label=11)
        model.read(1, 200, label=12)       # another thread's load
        assert len(sink) == 0


class TestPredicateHelpers:
    def test_merge_kinds(self):
        assert merge_kinds(FenceKind.ST_ST, FenceKind.ST_ST) \
            is FenceKind.ST_ST
        assert merge_kinds(FenceKind.ST_ST, FenceKind.ST_LD) \
            is FenceKind.FULL
        assert merge_kinds(FenceKind.FULL, FenceKind.ST_ST) \
            is FenceKind.FULL

    def test_predicate_equality_ignores_kind(self):
        a = OrderingPredicate(1, 2, FenceKind.ST_ST)
        b = OrderingPredicate(1, 2, FenceKind.ST_LD)
        assert a == b
        assert hash(a) == hash(b)

    def test_sink_keys(self):
        sink = PredicateSink()
        sink.add(1, 2, FenceKind.ST_ST)
        sink.add(3, 4, FenceKind.ST_LD)
        assert sink.keys() == frozenset({(1, 2), (3, 4)})

    def test_predicate_repr(self):
        pred = OrderingPredicate(4, 9, FenceKind.ST_LD)
        assert repr(pred) == "[L4 < L9]/st_ld"
