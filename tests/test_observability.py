"""Tests for the observability subsystem (``repro.obs``).

The two load-bearing properties:

* **Determinism** — metric aggregates (counters + histograms) are
  identical between the serial and multiprocess backends for the same
  config/seed, because they are computed from per-execution summary
  fields folded in execution-index order.
* **Zero interference** — an engine with a recorder attached (active or
  null) produces a ``SynthesisResult`` identical to an uninstrumented
  run.
"""

import io
import json

import pytest

from repro.minic import compile_source
from repro.obs import (
    NULL_RECORDER,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    ProgressReporter,
    Recorder,
    SpanTracer,
)
from repro.spec import MemorySafetySpec
from repro.synth import (
    SynthesisConfig,
    SynthesisEngine,
    fence_still_present,
    format_metrics,
    summarize,
)

from .test_parallel_equivalence import MP_ASSERT, config, full_signature


def _module():
    return compile_source(MP_ASSERT, "mp")


def _run(workers, recorder=None, **kw):
    engine = SynthesisEngine(config("pso", 0.3, 3, workers, **kw),
                             recorder=recorder)
    return engine.synthesize(_module(), MemorySafetySpec())


# ----------------------------------------------------------------------
# Determinism of metric aggregates


class TestDeterministicAggregates:
    def test_synthesize_serial_equals_parallel(self):
        aggregates = {}
        for workers in (None, 2):
            recorder = Recorder()
            result = _run(workers, recorder=recorder)
            assert result.total_violations > 0  # exercises the merge
            aggregates[workers] = recorder.aggregates()
        assert aggregates[None] == aggregates[2]
        counters = aggregates[None]["counters"]
        assert counters["exec/runs"] == counters["engine/rounds"] * 120
        assert counters["exec/violations"] > 0
        assert counters["sat/solves"] > 0
        assert aggregates[None]["histograms"]["exec/steps"]["count"] == \
            counters["exec/runs"]

    def test_check_serial_equals_parallel(self):
        aggregates = {}
        for workers in (None, 2):
            recorder = Recorder()
            engine = SynthesisEngine(config("pso", 0.3, 3, workers),
                                     recorder=recorder)
            stats = engine.test_program(_module(), MemorySafetySpec(),
                                        executions=150)
            assert stats.runs == 150
            aggregates[workers] = recorder.aggregates()
        assert aggregates[None] == aggregates[2]
        assert aggregates[None]["counters"]["exec/runs"] == 150

    def test_worker_section_is_backend_specific(self):
        serial, parallel = Recorder(), Recorder()
        _run(None, recorder=serial)
        _run(2, recorder=parallel)
        assert set(serial.snapshot()["workers"]) == {"serial"}
        workers = parallel.snapshot()["workers"]
        assert workers and all(w.startswith("pid") for w in workers)
        # Job counts cover every execution regardless of distribution.
        assert sum(workers.values()) == \
            parallel.snapshot()["counters"]["exec/runs"]


# ----------------------------------------------------------------------
# Zero interference with the synthesis result


class TestNonInterference:
    def test_active_recorder_identical_result(self):
        plain = _run(None)
        recorded = _run(None, recorder=Recorder(tracer=SpanTracer()))
        assert full_signature(plain) == full_signature(recorded)

    def test_null_recorder_identical_result(self):
        plain = _run(None)
        nulled = _run(None, recorder=NULL_RECORDER)
        assert full_signature(plain) == full_signature(nulled)

    def test_parallel_active_recorder_identical_result(self):
        plain = _run(None)
        recorded = _run(2, recorder=Recorder())
        assert full_signature(plain) == full_signature(recorded)

    def test_null_recorder_span_is_reusable_noop(self):
        rec = NullRecorder()
        with rec.span("round", index=1) as span:
            with rec.span("nested") as inner:
                assert inner is span  # the shared singleton
        assert rec.aggregates() == {}
        assert rec.snapshot() == {}
        assert not rec.enabled


# ----------------------------------------------------------------------
# Chrome trace output


class TestTrace:
    def test_trace_file_is_valid_chrome_json(self, tmp_path):
        recorder = Recorder(tracer=SpanTracer())
        _run(None, recorder=recorder)
        path = tmp_path / "trace.json"
        recorder.write_trace(str(path))
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert events
        names = {e["name"] for e in events}
        assert {"round", "execute", "broadcast"} <= names
        assert {"sat_solve", "enforce"} <= names  # repairs happened
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_spans_nest_within_their_round(self):
        tracer = SpanTracer()
        _run(None, recorder=Recorder(tracer=tracer))
        rounds = [e for e in tracer.events if e["name"] == "round"]
        executes = [e for e in tracer.events if e["name"] == "execute"]
        assert len(rounds) == len(executes)
        for round_ev, exec_ev in zip(rounds, executes):
            assert round_ev["ts"] <= exec_ev["ts"]
            assert exec_ev["ts"] + exec_ev["dur"] <= \
                round_ev["ts"] + round_ev["dur"] + 1e-3

    def test_write_to_stream(self):
        tracer = SpanTracer()
        tracer.add("x", 1.0, 2.0, args={"k": 1})
        tracer.instant("mark", 5.0)
        buffer = io.StringIO()
        tracer.write(buffer)
        data = json.loads(buffer.getvalue())
        assert [e["ph"] for e in data["traceEvents"]] == ["X", "i"]
        assert data["displayTimeUnit"] == "ms"


# ----------------------------------------------------------------------
# Metrics primitives


class TestMetricsPrimitives:
    def test_histogram_tracks_extremes(self):
        hist = Histogram()
        for value in (5, 1, 9, 3):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap == {"count": 4, "sum": 18, "min": 1, "max": 9,
                        "mean": 4.5}

    def test_empty_histogram(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0

    def test_registry_sections_are_separate(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        reg.observe("h", 7)
        reg.inc_worker("pid1")
        reg.observe_timing("span/x", 0.5)
        aggregates = reg.aggregates()
        assert set(aggregates) == {"counters", "histograms"}
        snap = reg.snapshot()
        assert snap["workers"] == {"pid1": 1}
        assert snap["timing"]["span/x"]["count"] == 1

    def test_format_metrics_renders_all_sections(self):
        reg = MetricsRegistry()
        reg.inc("exec/runs", 10)
        reg.observe("exec/steps", 40)
        reg.inc_worker("serial", 10)
        reg.observe_timing("round/duration", 0.25)
        text = format_metrics(reg.snapshot())
        assert "exec/runs: 10" in text
        assert "exec/steps: n=1" in text
        assert "round/duration" in text
        assert "serial=10" in text


# ----------------------------------------------------------------------
# Witness limit (satellite) and public enforce helper


class TestWitnessLimit:
    def test_default_cap_is_five(self):
        result = _run(None)
        assert any(r.violations > 5 for r in result.rounds)
        assert all(len(r.witnesses) <= 5 for r in result.rounds)

    def test_custom_cap(self):
        result = _run(None, witness_limit=2)
        assert all(len(r.witnesses) <= 2 for r in result.rounds)
        capped = [r for r in result.rounds if r.violations >= 2]
        assert any(len(r.witnesses) == 2 for r in capped)

    def test_zero_disables_witnesses(self):
        result = _run(None, witness_limit=0)
        assert result.total_violations > 0
        assert result.witnesses == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SynthesisConfig(witness_limit=-1)

    def test_limit_does_not_change_outcome(self):
        assert full_signature(_run(None))[0] == \
            full_signature(_run(None, witness_limit=1))[0]


class TestFenceStillPresent:
    def test_tracks_fence_presence(self):
        result = _run(None)
        module = result.program
        for placement in result.placements:
            assert fence_still_present(module, placement.fence_label)
        assert not fence_still_present(module, 10**9)  # unknown label

    def test_legacy_alias_preserved(self):
        from repro.synth.enforce import _fence_still_present
        assert _fence_still_present is fence_still_present


# ----------------------------------------------------------------------
# Progress reporter and report integration


class TestProgressAndReport:
    def test_progress_lines(self):
        stream = io.StringIO()
        result = _run(None, recorder=Recorder(
            progress=ProgressReporter(stream)))
        text = stream.getvalue()
        assert "[round 0]" in text
        assert "violations" in text
        assert "[done] %s" % result.outcome.value in text

    def test_summarize_includes_metrics_block(self):
        recorder = Recorder()
        result = _run(None, recorder=recorder)
        text = summarize(result, metrics=recorder.snapshot())
        assert "metrics:" in text
        assert "exec/runs:" in text
        assert "wall clock:" in text

    def test_summarize_without_metrics_unchanged_shape(self):
        result = _run(None)
        text = summarize(result)
        assert "metrics:" not in text
        assert "round 0" in text


# ----------------------------------------------------------------------
# CLI integration


class TestCliObservability:
    def run_cli(self, tmp_path, extra, capsys):
        from repro.cli import main as cli_main

        path = tmp_path / "mp.c"
        path.write_text(MP_ASSERT)
        code = cli_main([str(path), "--model", "pso", "-k", "200",
                         "--seed", "3"] + extra)
        return code, capsys.readouterr()

    def test_trace_flag_writes_valid_json(self, tmp_path, capsys):
        trace = tmp_path / "out.json"
        code, _ = self.run_cli(tmp_path, ["--trace", str(trace)], capsys)
        assert code == 0
        data = json.loads(trace.read_text())
        assert {e["name"] for e in data["traceEvents"]} >= \
            {"round", "execute"}

    def test_metrics_flag_prints_block(self, tmp_path, capsys):
        code, captured = self.run_cli(tmp_path, ["--metrics"], capsys)
        assert code == 0
        assert "metrics:" in captured.out
        assert "exec/runs:" in captured.out

    def test_verbose_flag_reports_on_stderr(self, tmp_path, capsys):
        code, captured = self.run_cli(tmp_path, ["--verbose"], capsys)
        assert code == 0
        assert "[round 0]" in captured.err
        assert "[round 0]" not in captured.out

    def test_check_only_metrics(self, tmp_path, capsys):
        code, captured = self.run_cli(
            tmp_path, ["--check-only", "--metrics"], capsys)
        assert code == 1  # violations found
        assert "metrics:" in captured.out

    def test_witness_limit_flag_rejects_negative(self, tmp_path):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["x.c", "--witness-limit", "-1"])
        args = build_parser().parse_args(["x.c", "--witness-limit", "0"])
        assert args.witness_limit == 0
