"""Unit tests for the execution driver, history events and VM plumbing."""

import pytest

from repro.ir import GlobalVar, IRBuilder, Module, Reg, Sym
from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import FlushDelayScheduler
from repro.vm import (
    DeadlockError,
    ExecutionStatus,
    History,
    InterpreterError,
    Operation,
    VM,
    run_execution,
    run_once,
)


class TestOperation:
    def test_precedence(self):
        a = Operation(0, "f", (), call_seq=1)
        a.ret_seq = 5
        b = Operation(1, "g", (), call_seq=7)
        assert a.precedes(b)
        assert not b.precedes(a)

    def test_overlapping_ops_do_not_precede(self):
        a = Operation(0, "f", (), call_seq=1)
        a.ret_seq = 10
        b = Operation(1, "g", (), call_seq=5)
        b.ret_seq = 15
        assert not a.precedes(b)
        assert not b.precedes(a)

    def test_incomplete(self):
        op = Operation(0, "f", (1,), call_seq=1)
        assert not op.complete
        op.ret_seq = 2
        assert op.complete


class TestHistory:
    def test_by_thread_groups_in_program_order(self):
        h = History()
        h.begin(1, "a", (), 1).ret_seq = 2
        h.begin(0, "b", (), 3).ret_seq = 4
        h.begin(1, "c", (), 5).ret_seq = 6
        groups = h.by_thread()
        assert [op.name for op in groups[1]] == ["a", "c"]
        assert [op.name for op in groups[0]] == ["b"]

    def test_complete_ops_filters(self):
        h = History()
        done = h.begin(0, "a", (), 1)
        done.ret_seq = 2
        h.begin(0, "b", (), 3)  # never returns
        assert [op.name for op in h.complete_ops()] == ["a"]


class TestDriverStatuses:
    def test_ok(self):
        module = compile_source("int main() { return 0; }")
        assert run_once(module).status is ExecutionStatus.OK

    def test_memory_violation(self):
        module = compile_source("int* P; int main() { return *P; }")
        result = run_once(module)
        assert result.status is ExecutionStatus.MEMORY_VIOLATION
        assert result.crashed
        assert result.usable
        assert "NULL" in result.error

    def test_timeout_not_usable(self):
        module = compile_source(
            "int G; int main() { while (1) { G = G + 1; } return 0; }")
        result = run_once(module, max_steps=300)
        assert result.status is ExecutionStatus.TIMEOUT
        assert not result.usable
        assert not result.crashed

    def test_predicate_collection_can_be_disabled(self):
        module = compile_source("""
        int X; int Y;
        int main() { X = 1; int r = Y; return r; }
        """)
        with_preds = run_once(module, "pso", flush_prob=0.0, seed=1)
        assert with_preds.predicates
        model = make_model("pso")
        sched = FlushDelayScheduler(seed=1, flush_prob=0.0)
        without = run_execution(module, model, sched,
                                collect_predicates=False)
        assert without.predicates == []

    def test_model_reuse_across_executions(self):
        module = compile_source("int X; int main() { X = 1; return X; }")
        model = make_model("pso")
        for seed in range(5):
            result = run_execution(
                module, model, FlushDelayScheduler(seed=seed))
            assert result.status is ExecutionStatus.OK


class TestVMEdgeCases:
    def test_join_on_unknown_thread(self):
        m = Module()
        m.add_global(GlobalVar("X"))
        b = IRBuilder(m, "main")
        b.join(Reg("nonexistent"))  # reads 0... which is main itself
        b.ret()
        b.finish()
        vm = VM(m, make_model("sc"))
        # Joining yourself can never complete: scheduler sees no enabled
        # threads -> deadlock.
        with pytest.raises(DeadlockError):
            FlushDelayScheduler(seed=0).run(vm)

    def test_stepping_finished_thread_rejected(self):
        module = compile_source("int main() { return 0; }")
        vm = VM(module, make_model("sc"))
        while not vm.all_finished():
            vm.step(0)
        with pytest.raises(InterpreterError):
            vm.step(0)

    def test_entry_args_bound(self):
        module = compile_source("int main(int a, int b) { return a - b; }")
        vm = VM(module, make_model("sc"), entry_args=(10, 4))
        while not vm.all_finished():
            vm.step(0)
        assert vm.threads[0].result == 6

    def test_entry_arity_mismatch(self):
        module = compile_source("int main(int a) { return a; }")
        with pytest.raises(InterpreterError):
            VM(module, make_model("sc"), entry_args=())

    def test_peek_returns_next_instruction(self):
        module = compile_source("int G; int main() { G = 1; return 0; }")
        vm = VM(module, make_model("sc"))
        first = vm.peek(0)
        assert first is module.function("main").body[0]

    def test_tids_with_pending(self):
        module = compile_source("int G; int main() { G = 1; return 0; }")
        vm = VM(module, make_model("pso"))
        vm.step(0)  # const
        vm.step(0)  # store (buffered)
        assert vm.tids_with_pending() == [0]
        vm.flush_one(0)
        assert vm.tids_with_pending() == []
