"""Unit tests for minimal-model utilities and DIMACS I/O."""

import pytest

from repro.sat import (
    enumerate_minimal_models,
    format_dimacs,
    minimum_model,
    parse_dimacs,
    shrink_model,
)


class TestShrinkModel:
    def test_drops_useless_variables(self):
        clauses = [[1, 2]]
        assert shrink_model(clauses, frozenset({1, 2, 3})) == frozenset({1})

    def test_keeps_required_variables(self):
        clauses = [[1], [2]]
        assert shrink_model(clauses, frozenset({1, 2})) == frozenset({1, 2})

    def test_deterministic(self):
        clauses = [[1, 2]]
        a = shrink_model(clauses, frozenset({1, 2}))
        b = shrink_model(clauses, frozenset({1, 2}))
        assert a == b == frozenset({1})  # higher vars dropped first


class TestEnumerateMinimalModels:
    def test_simple_chain(self):
        models = enumerate_minimal_models([[1, 2], [2, 3], [3, 4]])
        assert frozenset({2, 3}) in models
        for model in models:
            assert len(model) <= 3

    def test_single_clause_gives_singletons(self):
        models = set(enumerate_minimal_models([[1, 2, 3]]))
        assert models == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_empty_formula(self):
        assert enumerate_minimal_models([]) == [frozenset()]

    def test_limit_respected(self):
        models = enumerate_minimal_models([[v for v in range(1, 10)]],
                                          limit=4)
        assert len(models) == 4


class TestMinimumModel:
    def test_prefers_shared_variable(self):
        # Variable 2 hits both clauses; singletons 1 or 3 hit only one.
        assert minimum_model([[1, 2], [2, 3]]) == frozenset({2})

    def test_tie_break_deterministic(self):
        assert minimum_model([[1, 2]]) == frozenset({1})

    def test_unsat_returns_none(self):
        # Not monotone, but the API handles it: x and not-x.
        assert minimum_model([[1], [-1]]) is None


class TestDimacs:
    def test_round_trip(self):
        clauses = [[1, -2, 3], [-1], [2, 3]]
        text = format_dimacs(3, clauses)
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == 3
        assert parsed == clauses

    def test_parse_comments_and_blank_lines(self):
        text = """
c a comment
p cnf 2 2

1 -2 0
c another
2 0
"""
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 2
        assert clauses == [[1, -2], [2]]

    def test_parse_multiline_clause(self):
        num_vars, clauses = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert clauses == [[1, 2, 3]]

    def test_malformed_problem_line(self):
        with pytest.raises(ValueError):
            parse_dimacs("p cnf 2\n1 0\n")

    def test_trailing_clause_without_zero(self):
        _n, clauses = parse_dimacs("p cnf 2 1\n1 2")
        assert clauses == [[1, 2]]
