"""Unit tests for the IR verifier and CFG construction."""

import pytest

from repro.ir import CFG, Const, GlobalVar, IRBuilder, Module, Reg, Sym
from repro.ir import instructions as ins
from repro.ir.verifier import VerificationError, verify_module


def minimal_module():
    m = Module()
    m.add_global(GlobalVar("X"))
    b = IRBuilder(m, "main")
    b.load(Reg("r"), Sym("X"))
    b.ret(Reg("r"))
    b.finish()
    return m


class TestVerifier:
    def test_accepts_valid_module(self):
        verify_module(minimal_module())

    def test_rejects_empty_function(self):
        m = minimal_module()
        m.function("main").body = []
        with pytest.raises(VerificationError, match="empty body"):
            verify_module(m)

    def test_rejects_missing_terminator(self):
        m = minimal_module()
        m.function("main").body = [ins.Nop(m.new_label())]
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(m)

    def test_rejects_dangling_branch(self):
        m = minimal_module()
        fn = m.function("main")
        fn.body.insert(0, ins.Br(m.new_label(), 424242))
        fn.invalidate_index()
        with pytest.raises(VerificationError, match="unknown L424242"):
            verify_module(m)

    def test_rejects_unknown_global(self):
        m = minimal_module()
        fn = m.function("main")
        fn.body.insert(0, ins.Load(m.new_label(), Reg("q"), Sym("NOPE")))
        fn.invalidate_index()
        with pytest.raises(VerificationError, match="NOPE"):
            verify_module(m)

    def test_rejects_unknown_callee(self):
        m = minimal_module()
        fn = m.function("main")
        fn.body.insert(0, ins.Call(m.new_label(), None, "ghost", []))
        fn.invalidate_index()
        with pytest.raises(VerificationError, match="ghost"):
            verify_module(m)

    def test_rejects_call_arity_mismatch(self):
        m = minimal_module()
        b = IRBuilder(m, "callee", ["a", "b"])
        b.ret()
        b.finish()
        fn = m.function("main")
        fn.body.insert(0, ins.Call(m.new_label(), None, "callee", [Const(1)]))
        fn.invalidate_index()
        with pytest.raises(VerificationError, match="arity"):
            verify_module(m)

    def test_rejects_raw_python_operand(self):
        m = minimal_module()
        fn = m.function("main")
        fn.body.insert(0, ins.Mov(m.new_label(), Reg("r"), 17))
        fn.invalidate_index()
        with pytest.raises(VerificationError, match="bad operand"):
            verify_module(m)


class TestCFG:
    def build_diamond(self):
        m = Module()
        b = IRBuilder(m, "f")
        then_l = b.block_label("then")
        else_l = b.block_label("else")
        end_l = b.block_label("end")
        b.cbr(Const(1), then_l, else_l)
        b.bind(then_l)
        b.const(Reg("a"), 1)
        b.br(end_l)
        b.bind(else_l)
        b.const(Reg("a"), 2)
        b.br(end_l)
        b.bind(end_l)
        b.ret(Reg("a"))
        return b.finish()

    def test_diamond_block_structure(self):
        fn = self.build_diamond()
        cfg = CFG(fn)
        assert len(cfg.blocks) == 4
        entry = cfg.entry()
        assert sorted(entry.successors) == [1, 2]
        exit_block = cfg.blocks[3]
        assert sorted(exit_block.predecessors) == [1, 2]
        assert exit_block.successors == []

    def test_straight_line_single_block(self):
        m = Module()
        b = IRBuilder(m, "f")
        b.const(Reg("x"), 1)
        b.const(Reg("y"), 2)
        b.ret()
        fn = b.finish()
        cfg = CFG(fn)
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == []

    def test_loop_back_edge(self):
        m = Module()
        b = IRBuilder(m, "f")
        head = b.block_label("head")
        out = b.block_label("out")
        b.bind(head)
        b.cbr(Reg("c"), head, out)
        b.bind(out)
        b.ret()
        fn = b.finish()
        cfg = CFG(fn)
        head_block = cfg.block_of_instr[0]
        assert head_block in cfg.blocks[head_block].successors

    def test_every_instruction_mapped_to_a_block(self):
        fn = self.build_diamond()
        cfg = CFG(fn)
        assert sorted(cfg.block_of_instr) == list(range(len(fn.body)))
