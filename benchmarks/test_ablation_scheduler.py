"""Ablation — how much does the flush-delaying demonic scheduler matter?

DESIGN.md calls out the scheduler as the paper's key exploration device.
This ablation compares violation-exposure rates on the de-fenced
Chase-Lev queue for:

* the tuned flush-delaying scheduler (the paper's);
* the same scheduler with near-eager flushing (prob 0.95) — approximating
  a naive random tester on an almost-SC machine;
* the deterministic round-robin scheduler with eager flushing (exposes
  nothing: relaxed behaviour needs delayed flushes).
"""

from common import format_table, write_result

from repro.algorithms import ALGORITHMS
from repro.memory import make_model
from repro.sched import FlushDelayScheduler, RoundRobinScheduler
from repro.vm.driver import run_execution

RUNS = 300
SEED = 5


def violations_with(scheduler_factory, name, model_name, kind):
    bundle = ALGORITHMS[name]
    module = bundle.compile()
    spec = bundle.spec(kind)
    model = make_model(model_name)
    violations = 0
    for i in range(RUNS):
        entry = bundle.entries[i % len(bundle.entries)]
        result = run_execution(module, model, scheduler_factory(i),
                               entry=entry, operations=bundle.operations)
        if result.usable and spec.check(result) is not None:
            violations += 1
    return violations


def test_scheduler_ablation(benchmark):
    cases = [
        ("chase_lev", "tso", "sc", 0.1),
        ("chase_lev", "pso", "sc", 0.2),
        ("msn_queue", "pso", "sc", 0.2),
    ]
    rows = []
    tuned_total = eager_total = rr_total = 0
    for (name, model_name, kind, tuned_prob) in cases:
        tuned = violations_with(
            lambda i, p=tuned_prob: FlushDelayScheduler(SEED + i, p),
            name, model_name, kind)
        eager = violations_with(
            lambda i: FlushDelayScheduler(SEED + i, 0.95),
            name, model_name, kind)
        round_robin = violations_with(
            lambda i: RoundRobinScheduler(quantum=3),
            name, model_name, kind)
        rows.append(["%s/%s/%s" % (name, model_name, kind),
                     tuned, eager, round_robin])
        tuned_total += tuned
        eager_total += eager
        rr_total += round_robin

    benchmark.pedantic(
        lambda: violations_with(
            lambda i: FlushDelayScheduler(SEED + i, 0.2),
            "chase_lev", "pso", "sc"),
        rounds=1, iterations=1)

    headers = ["case", "tuned flush-delay", "eager (p=0.95)",
               "round-robin"]
    text = ("Ablation — scheduler choice vs violations exposed "
            "(%d runs each)\n\n" % RUNS) + format_table(headers, rows) + "\n"
    write_result("ablation_scheduler.txt", text)

    # The tuned demonic scheduler must dominate both ablations.
    assert tuned_total > eager_total
    assert tuned_total > rr_total
    # Deterministic eager round-robin exposes nothing at all.
    assert rr_total == 0
