"""Explorer scaling — snapshot DFS + sleep-set POR vs the replay baseline.

For each workload x model the benchmark times four engines on the same
program: the replay-based reference DFS (``repro.sched.exhaustive``),
and the snapshot engine at every reduction level.  Every run must
terminate with the *byte-identical* outcome set, so the numbers below
are comparisons between provably-equivalent explorations, not between
different answers.  Reported per engine: paths explored, wall time,
paths/second, the path-reduction ratio and wall-time speedup over the
replay baseline.  Written to ``BENCH_explore.json`` at the repository
root and a readable table to ``benchmarks/results/explore_scaling.txt``.

Wall times are machine-dependent; path counts are deterministic, and the
reduction ratios are the acceptance-relevant shape: the 3-thread
workloads must show at least a 5x paths-explored reduction under
``sleep+cache``.
"""

import json
import os
import platform
import time

import pytest

from common import format_table, write_result

from repro.litmus import LITMUS_TESTS, thread_results
from repro.minic import compile_source
from repro.sched.exhaustive import explore as explore_replay
from repro.sched.explorer import REDUCTIONS, explore

pytestmark = [pytest.mark.slow]

ROOT_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_explore.json")

MAX_PATHS = 1_500_000

# Three-way store buffering: every thread publishes to its own global
# and reads a neighbour's.  The litmus catalog is all 2-thread, so this
# is the 3-thread scaling point; under SC the full version stays small
# enough for a complete unreduced baseline.
SB3_SOURCE = """
int X; int Y; int Z;
int t1() { Y = 1; int r = Z; return r; }
int t2() { Z = 1; int r = X; return r; }
int main() {
  int a = fork(t1);
  int b = fork(t2);
  X = 1;
  int r = Y;
  join(a);
  join(b);
  return r;
}
"""

# Trimmed variant whose unreduced baseline still terminates under TSO
# (~730k paths); the full version exceeds 2M buffered interleavings.
SB3_TSO_SOURCE = """
int X; int Y; int Z;
int t1() { Y = 1; return Z; }
int t2() { Z = 1; return 0; }
int main() {
  int a = fork(t1);
  int b = fork(t2);
  X = 1;
  int r = Y;
  join(a);
  join(b);
  return r;
}
"""


def _workloads():
    return [
        ("sb/tso", LITMUS_TESTS["sb"].compile(), "tso", 2),
        ("2+2w/pso", LITMUS_TESTS["2+2w"].compile(), "pso", 2),
        ("sb3/sc", compile_source(SB3_SOURCE, "sb3"), "sc", 3),
        ("sb3/tso", compile_source(SB3_TSO_SOURCE, "sb3"), "tso", 3),
    ]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_explore_scaling():
    workloads = []
    for name, module, model, threads in _workloads():
        base, base_wall = _timed(lambda: explore_replay(
            module, model, outcome_fn=thread_results,
            max_paths=MAX_PATHS))
        assert base.complete, "baseline budget too small for %s" % name
        engines = [dict(
            engine="replay", paths=base.paths,
            wall_s=round(base_wall, 3),
            paths_per_s=round(base.paths / max(base_wall, 1e-9)),
            reduction_ratio=1.0, speedup=1.0)]
        for reduction in REDUCTIONS:
            run, wall = _timed(lambda: explore(
                module, model, outcome_fn=thread_results,
                max_paths=MAX_PATHS, reduction=reduction))
            assert run.complete, (name, reduction)
            # Byte-identical outcome sets at every reduction level.
            assert run.outcomes == base.outcomes, (name, reduction)
            assert run.violations == base.violations, (name, reduction)
            engines.append(dict(
                engine=reduction, paths=run.paths,
                wall_s=round(wall, 3),
                paths_per_s=round(run.paths / max(wall, 1e-9)),
                reduction_ratio=round(base.paths / run.paths, 1),
                speedup=round(base_wall / max(wall, 1e-9), 1),
                pruned=run.stats.pruned,
                cache_hits=run.stats.cache_hits,
                snapshot_bytes=run.stats.snapshot_bytes))
        workloads.append(dict(
            name=name, model=model, threads=threads,
            baseline_paths=base.paths, outcomes=len(base.outcomes),
            engines=engines))

    # Acceptance: >=5x paths-explored reduction with sleep+cache on a
    # 3-thread workload, outcome sets identical (asserted above).
    three_thread_ratios = [
        engine["reduction_ratio"]
        for wl in workloads if wl["threads"] >= 3
        for engine in wl["engines"] if engine["engine"] == "sleep+cache"]
    assert max(three_thread_ratios) >= 5.0, three_thread_ratios

    summary = dict(
        machine=dict(platform=platform.platform(),
                     cpu_count=os.cpu_count()),
        max_paths=MAX_PATHS,
        best_3thread_reduction=max(three_thread_ratios),
        workloads=workloads)
    with open(ROOT_JSON, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)

    rows = []
    for wl in workloads:
        for engine in wl["engines"]:
            rows.append([
                wl["name"], engine["engine"], str(engine["paths"]),
                "%.3f" % engine["wall_s"], str(engine["paths_per_s"]),
                "%.1fx" % engine["reduction_ratio"],
                "%.1fx" % engine["speedup"]])
    table = format_table(
        ["workload", "engine", "paths", "wall s", "paths/s",
         "path reduction", "speedup"], rows)
    write_result("explore_scaling.txt",
                 "explorer scaling vs replay baseline "
                 "(identical outcome sets everywhere)\n\n%s\n" % table)
