"""Figure 5 — effect of the flush probability (Cilk THE, PSO, SC).

The paper's scheduler tuning study: with a *low* flush probability the
same unnecessary predicates dominate the violating executions and
redundant fences get synthesized; with a *high* flush probability buffers
are nearly always empty, violations disappear, and required fences are
missed.  The sweet spot sits in between.

We sweep the probability, recording synthesized fences, distinct
predicates collected, and violations seen in the first round.
"""

from common import format_table, synthesize_bundle, write_result
from paper_data import PAPER_FIG5

NAME = "cilk_the"
SPEC = "sc"
MODEL = "pso"
K = 400
SEED = 11

PROBS = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]


def sweep_point(prob):
    result = synthesize_bundle(NAME, MODEL, SPEC, executions_per_round=K,
                               max_rounds=12, seed=SEED, flush_prob=prob)
    first = result.rounds[0]
    return {
        "prob": prob,
        "fences": result.fence_count,
        "violations_round0": first.violations,
        "predicates_round0": first.distinct_predicates,
        "rounds": len(result.rounds),
    }


def test_fig5_flush_probability(benchmark):
    points = [sweep_point(p) for p in PROBS]
    benchmark.pedantic(lambda: sweep_point(0.5), rounds=1, iterations=1)

    headers = ["flush prob", "fences", "violations (round 0)",
               "distinct predicates (round 0)", "rounds"]
    rows = [[p["prob"], p["fences"], p["violations_round0"],
             p["predicates_round0"], p["rounds"]] for p in points]
    text = ("Figure 5 — flush probability sweep "
            "(Cilk THE, PSO, SC, K=%d)\n\n" % K
            + format_table(headers, rows)
            + "\n\nPaper shape: fences inflate below prob~%.1f (redundant) "
              "and vanish above ~%.1f (missed).\n"
            % (PAPER_FIG5["low_threshold"], PAPER_FIG5["high_threshold"]))
    write_result("fig5_flush_probability.txt", text)

    by_prob = {p["prob"]: p for p in points}
    # Violations are exposed at low probabilities...
    assert by_prob[0.1]["violations_round0"] > 0
    # ...and the highest probabilities expose no more violations (and
    # hence fences) than the tuned low setting.
    assert by_prob[0.95]["violations_round0"] <= \
        by_prob[0.1]["violations_round0"]
    assert by_prob[0.95]["fences"] <= by_prob[0.2]["fences"]
    # Predicate collection shrinks as the run approaches SC.
    assert by_prob[0.95]["predicates_round0"] <= \
        by_prob[0.05]["predicates_round0"]
