"""VM dispatch throughput — closure-compiled bodies vs the interpreter.

Two measurements, written to ``BENCH_vm.json`` at the repository root
(and a readable table to ``benchmarks/results/vm_dispatch.txt``):

* a steady-state microbenchmark: a register-arithmetic loop executed
  through ``run_local`` bursts — the scheduler hot path — reported as
  steps/second per backend.  Acceptance: the compiled backend must
  sustain at least 2x the interpreter's dispatch rate.
* end-to-end fence synthesis on the Chase-Lev work-stealing deque (the
  paper's flagship workload), same config and seed on both backends.
  The runs must synthesize byte-identical fences; the compiled backend
  must show a wall-time improvement.

Wall times are machine-dependent; the equivalence assertions are what
make the speedups comparisons between identical computations.
"""

import json
import os
import platform
import time

import pytest

from common import format_table, write_result

from repro.algorithms import ALGORITHMS
from repro.memory.models import make_model
from repro.minic import compile_source
from repro.synth import SynthesisConfig, SynthesisEngine
from repro.vm.compile import make_vm

pytestmark = [pytest.mark.slow]

ROOT_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_vm.json")

# A pure register-arithmetic loop: every instruction is thread-local, so
# the whole program runs inside run_local bursts — steady-state dispatch
# with no memory-model or scheduler noise.
HOT_LOOP = """
int main() {
  int acc = 0;
  int i = 0;
  while (i < 20000) {
    int a = i + 3;
    int b = a * 2;
    int c = b - i;
    acc = acc + c;
    i = i + 1;
  }
  return acc;
}
"""

#: Microbenchmark repetitions; the best run is reported (steady state).
MICRO_REPS = 5


def _run_micro(compiled):
    """One full hot-loop execution; returns (steps, wall_s, result)."""
    module = compile_source(HOT_LOOP, "hot_loop")
    vm = make_vm(module, make_model("sc"), compiled=compiled,
                 max_steps=10_000_000)
    start = time.perf_counter()
    while True:
        enabled = vm.enabled_tids()
        if not enabled:
            break
        tid = enabled[0]
        if not vm.run_local(tid, 4096):
            vm.step(tid)
    wall = time.perf_counter() - start
    return vm.steps, wall, vm.threads[0].result


def _best_micro(compiled):
    best = None
    for _ in range(MICRO_REPS):
        steps, wall, result = _run_micro(compiled)
        if best is None or wall < best[1]:
            best = (steps, wall, result)
    return best


def _synthesize_wsq(compiled):
    bundle = ALGORITHMS["chase_lev"]
    config = SynthesisConfig(
        memory_model="pso", flush_prob=bundle.flush_prob["pso"],
        executions_per_round=800, max_rounds=12, seed=7,
        compiled=compiled)
    engine = SynthesisEngine(config)
    start = time.perf_counter()
    result = engine.synthesize(bundle.compile(), bundle.spec("sc"),
                               entries=bundle.entries,
                               operations=bundle.operations)
    return result, time.perf_counter() - start


def test_vm_dispatch():
    # -- steady-state dispatch rate ------------------------------------
    interp_steps, interp_wall, interp_result = _best_micro(False)
    comp_steps, comp_wall, comp_result = _best_micro(True)
    assert comp_result == interp_result
    assert comp_steps == interp_steps  # same instruction count, exactly
    interp_rate = interp_steps / max(interp_wall, 1e-9)
    comp_rate = comp_steps / max(comp_wall, 1e-9)
    micro_speedup = comp_rate / interp_rate

    # -- end-to-end synthesis on the work-stealing deque ---------------
    interp_synth, interp_synth_wall = _synthesize_wsq(False)
    comp_synth, comp_synth_wall = _synthesize_wsq(True)
    fences = tuple((p.location(), p.kind.value)
                   for p in comp_synth.placements)
    assert comp_synth.outcome == interp_synth.outcome
    assert fences == tuple((p.location(), p.kind.value)
                           for p in interp_synth.placements)
    synth_speedup = interp_synth_wall / max(comp_synth_wall, 1e-9)

    # Acceptance: >=2x steady-state dispatch, and an end-to-end win.
    assert micro_speedup >= 2.0, micro_speedup
    assert synth_speedup > 1.0, synth_speedup

    summary = dict(
        machine=dict(platform=platform.platform(),
                     cpu_count=os.cpu_count()),
        micro=dict(
            steps=interp_steps,
            interpreted=dict(wall_s=round(interp_wall, 4),
                             steps_per_s=round(interp_rate)),
            compiled=dict(wall_s=round(comp_wall, 4),
                          steps_per_s=round(comp_rate)),
            speedup=round(micro_speedup, 2)),
        wsq_synthesis=dict(
            workload="chase_lev/pso/sc",
            executions=comp_synth.total_executions,
            outcome=comp_synth.outcome.value,
            fences=[" ".join(f) for f in fences],
            interpreted=dict(wall_s=round(interp_synth_wall, 2)),
            compiled=dict(wall_s=round(comp_synth_wall, 2)),
            speedup=round(synth_speedup, 2)))
    with open(ROOT_JSON, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)

    table = format_table(
        ["benchmark", "backend", "wall s", "rate", "speedup"],
        [["hot loop (%d steps)" % interp_steps, "interpreted",
          "%.4f" % interp_wall, "%d steps/s" % interp_rate, "1.0x"],
         ["hot loop (%d steps)" % interp_steps, "compiled",
          "%.4f" % comp_wall, "%d steps/s" % comp_rate,
          "%.2fx" % micro_speedup],
         ["chase_lev synthesis (pso)", "interpreted",
          "%.2f" % interp_synth_wall, "-", "1.0x"],
         ["chase_lev synthesis (pso)", "compiled",
          "%.2f" % comp_synth_wall, "-", "%.2fx" % synth_speedup]])
    write_result("vm_dispatch.txt",
                 "VM dispatch: closure-compiled vs interpreted "
                 "(identical results asserted)\n\n%s\n" % table)
