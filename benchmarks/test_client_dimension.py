"""Section 6.4 — the client dimension: history length vs checking cost.

"The worst case time required for checking linearizability or sequential
consistency of an execution is exponential in the length of the
execution ... it is important to have the client produce relatively short
executions, yet rich enough to expose violations."

This bench quantifies that trade-off with generated clients of growing
size: operations per history vs (a) spec-checking wall time and (b) the
violation-exposure rate under PSO.
"""

import time

import pytest

from common import format_table, write_result

from repro.algorithms import ALGORITHMS
from repro.clientgen import generate_clients
from repro.memory import make_model
from repro.sched import FlushDelayScheduler
from repro.vm.driver import run_execution

NAME = "chase_lev"
RUNS = 150
SEED = 5


def measure(ops_per_side):
    bundle = ALGORITHMS[NAME]
    generated = generate_clients(bundle, count=3, seed=SEED,
                                 ops_per_side=ops_per_side)
    spec = bundle.spec("sc")
    model = make_model("pso")
    check_time = 0.0
    violations = 0
    history_lengths = []
    for i in range(RUNS):
        entry = generated.entries[i % len(generated.entries)]
        scheduler = FlushDelayScheduler(seed=SEED + i, flush_prob=0.2)
        result = run_execution(generated.module, model, scheduler,
                               entry=entry, operations=bundle.operations)
        if not result.usable:
            continue
        history_lengths.append(len(result.history))
        start = time.perf_counter()
        if spec.check(result) is not None:
            violations += 1
        check_time += time.perf_counter() - start
    avg_len = sum(history_lengths) / max(1, len(history_lengths))
    return avg_len, check_time, violations


def test_client_length_vs_checking_cost(benchmark):
    rows = []
    points = {}
    for ops in (1, 2, 4, 6, 9):
        avg_len, check_time, violations = measure(ops)
        points[ops] = (avg_len, check_time, violations)
        rows.append([ops, "%.1f" % avg_len,
                     "%.1f ms" % (1000 * check_time), violations])

    benchmark.pedantic(lambda: measure(3), rounds=1, iterations=1)

    text = ("Section 6.4 — history length vs checking cost "
            "(Chase-Lev, PSO, SC spec, %d runs per point)\n\n" % RUNS
            + format_table(
                ["ops/segment", "avg history length",
                 "total check time", "violations"], rows)
            + "\n\nThe paper's trade-off: longer histories cost "
              "exponentially more to check; short-but-rich clients "
              "already expose the violations.\n")
    write_result("client_dimension.txt", text)

    # Longer clients produce longer histories (deterministic)...
    assert points[9][0] > points[1][0]
    # ...and checking them takes measurable time (the wall-clock ratio is
    # reported in the table but not asserted: it is load-sensitive)...
    assert points[9][1] > 0
    # ...while violations are already exposed by modest clients.
    assert points[2][2] > 0 or points[4][2] > 0
