"""Figure 4 — inferred fences vs executions-per-round.

The paper's point: repairing *in rounds* (fix after a small batch, rerun)
reaches a fully repaired program with orders of magnitude fewer
executions than gathering one huge batch and repairing once, because each
repair eliminates whole families of violating executions and exposes the
bugs hiding behind them.

Two subjects:

* **Cilk THE, PSO, SC** — the paper's subject.  Our clients expose all
  three fence families simultaneously, so both policies converge quickly
  and the gap is small (recorded as-is).
* **Michael's allocator, PSO, memory safety** — the effect at its
  clearest: the allocator's deeper publication bugs only become reachable
  after the earlier fences are inserted, so the one-round policy stalls
  at 1-2 fences no matter how large the batch, while the round-based
  policy reaches the full repair.
"""

from common import format_table, synthesize_bundle, write_result

from repro.algorithms import ALGORITHMS
from repro.synth import SynthesisConfig, SynthesisEngine

SEED = 7


def residual_violations(name, model, kind, program, runs=1500):
    bundle = ALGORITHMS[name]
    engine = SynthesisEngine(SynthesisConfig(
        memory_model=model, flush_prob=bundle.flush_prob[model],
        seed=SEED + 100000))
    _runs, violations, _ = engine.test_program(
        program, bundle.spec(kind), entries=bundle.entries,
        operations=bundle.operations, executions=runs)
    return violations


def sweep(name, model, kind, multi_ks, one_ks):
    multi_rows = []
    for k in multi_ks:
        result = synthesize_bundle(name, model, kind,
                                   executions_per_round=k,
                                   max_rounds=15, seed=SEED)
        residual = residual_violations(name, model, kind, result.program)
        multi_rows.append([k, result.fence_count, len(result.rounds),
                           result.total_executions, residual])
    one_rows = []
    for k in one_ks:
        result = synthesize_bundle(name, model, kind,
                                   executions_per_round=k,
                                   max_rounds=1, seed=SEED)
        residual = residual_violations(name, model, kind, result.program)
        one_rows.append([k, result.fence_count, 1, k, residual])
    return multi_rows, one_rows


def first_converged(rows):
    for row in rows:
        if row[4] == 0:
            return row
    return None


def test_fig4_rounds(benchmark):
    headers = ["K (execs/round)", "fences", "rounds", "total execs",
               "residual violations/1500"]

    the_multi, the_one = sweep("cilk_the", "pso", "sc",
                               [25, 50, 100, 200, 400, 800],
                               [25, 100, 400, 1600])
    alloc_multi, alloc_one = sweep("michael_allocator", "pso",
                                   "memory_safety",
                                   [50, 100, 200, 400, 600],
                                   [100, 400, 1600, 3200, 6400])

    benchmark.pedantic(
        lambda: synthesize_bundle("cilk_the", "pso", "sc",
                                  executions_per_round=100,
                                  max_rounds=15, seed=SEED),
        rounds=1, iterations=1)

    text = "Figure 4 — fences vs executions per round\n"
    text += "\n== Cilk THE (PSO, SC) — the paper's subject ==\n"
    text += "MULTI-ROUND:\n" + format_table(headers, the_multi) + "\n"
    text += "ONE-ROUND:\n" + format_table(headers, the_one) + "\n"
    text += "\n== Michael's allocator (PSO, memory safety) ==\n"
    text += "MULTI-ROUND:\n" + format_table(headers, alloc_multi) + "\n"
    text += "ONE-ROUND:\n" + format_table(headers, alloc_one) + "\n"

    multi_ok = first_converged(alloc_multi)
    one_ok = first_converged(alloc_one)
    text += ("\nAllocator: multi-round fully repairs with %s total "
             "executions; one-round %s.\n"
             "Paper (THE): ~1,000/round x <=4 rounds vs ~200,000 (~65x)."
             "\n" % (multi_ok[3] if multi_ok else "n/a",
                     ("converges at %d" % one_ok[3]) if one_ok
                     else "never converges in the swept budget"))
    write_result("fig4_rounds.txt", text)

    # Shape assertions (allocator): round-based repair converges...
    assert multi_ok is not None
    # ...and beats one-round by a large factor (the paper's 65x claim;
    # here one-round usually does not converge at all within 6400 runs).
    if one_ok is not None:
        assert one_ok[3] >= 2 * multi_ok[3]
    else:
        biggest_one = alloc_one[-1]
        assert biggest_one[3] >= 2 * multi_ok[3]

    # THE converges under the round-based policy as well.
    assert first_converged(the_multi) is not None
