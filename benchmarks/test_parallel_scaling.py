"""Parallel execution scaling — serial vs multiprocess round fan-out.

Times the synthesis engine on the WSQ (Chase-Lev, linearizability) and
litmus (message-passing, memory safety) workloads with the serial backend
and with 2/4/N worker processes, verifying that every backend produces
identical results, and writes the speedup curve plus per-round wall times
to ``BENCH_parallel.json`` at the repository root (and a readable table
to ``benchmarks/results/parallel_scaling.txt``) so subsequent PRs have a
perf trajectory.

Honesty note: speedup is *measured*, never assumed.  The ≥1.7× @ 4
workers assertion only runs on machines with at least 4 CPUs — on fewer
cores the fan-out cannot beat serial and the JSON records that fact.
"""

import json
import os
import platform
import time

from common import format_table, write_result

from repro.algorithms import ALGORITHMS
from repro.minic import compile_source
from repro.spec import MemorySafetySpec
from repro.synth import SynthesisConfig, SynthesisEngine

ROOT_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_parallel.json")

MP_ASSERT = """
int DATA;
int FLAG;

void reader() {
  while (FLAG == 0) {}
  assert(DATA == 1);
}

int main() {
  int t = fork(reader);
  DATA = 1;
  FLAG = 1;
  join(t);
  return 0;
}
"""


def wsq_workload():
    bundle = ALGORITHMS["chase_lev"]
    return dict(module=bundle.compile(), spec=bundle.spec("lin"),
                entries=bundle.entries, operations=bundle.operations,
                model="pso", flush_prob=0.2, executions=600, rounds=6,
                seed=7)


def litmus_workload():
    return dict(module=compile_source(MP_ASSERT, "mp"),
                spec=MemorySafetySpec(), entries=("main",), operations=(),
                model="pso", flush_prob=0.3, executions=800, rounds=6,
                seed=7)


WORKLOADS = {"wsq": wsq_workload, "litmus": litmus_workload}


def run_backend(workload, workers):
    engine = SynthesisEngine(SynthesisConfig(
        memory_model=workload["model"], flush_prob=workload["flush_prob"],
        executions_per_round=workload["executions"],
        max_rounds=workload["rounds"], seed=workload["seed"],
        workers=workers))
    start = time.perf_counter()
    result = engine.synthesize(workload["module"], workload["spec"],
                               entries=workload["entries"],
                               operations=workload["operations"])
    elapsed = time.perf_counter() - start
    return result, elapsed


def worker_counts():
    cpus = os.cpu_count() or 1
    counts = [None, 2, 4]
    if cpus > 4:
        counts.append(cpus)
    return counts


def test_parallel_scaling():
    cpus = os.cpu_count() or 1
    report = {
        "benchmark": "parallel_scaling",
        "machine": {
            "cpu_count": cpus,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "workloads": {},
    }
    rows = []
    for name, factory in WORKLOADS.items():
        workload = factory()
        curve = {}
        serial_time = None
        serial_signature = None
        for workers in worker_counts():
            result, elapsed = run_backend(factory(), workers)
            label = "serial" if workers is None else "%dw" % workers
            signature = (result.outcome.value, result.fence_locations(),
                         [r.violations for r in result.rounds])
            if serial_signature is None:
                serial_time = elapsed
                serial_signature = signature
            # Determinism contract: every backend, same result.
            assert signature == serial_signature, (name, label)
            curve[label] = {
                "workers": workers if workers is not None else 0,
                "wall_s": round(elapsed, 4),
                "per_round_wall_s": round(elapsed / len(result.rounds), 4),
                "rounds": len(result.rounds),
                "executions": result.total_executions,
                "speedup_vs_serial": round(serial_time / elapsed, 3),
            }
            rows.append([name, label, "%.3f" % elapsed,
                         "%.3f" % (elapsed / len(result.rounds)),
                         "%.2fx" % (serial_time / elapsed),
                         result.outcome.value])
        report["workloads"][name] = {
            "model": workload["model"],
            "executions_per_round": workload["executions"],
            "curve": curve,
        }

    wsq_4w = report["workloads"]["wsq"]["curve"]["4w"]["speedup_vs_serial"]
    if cpus >= 4:
        report["speedup_assertion"] = "asserted: wsq 4w >= 1.7x"
        assert wsq_4w >= 1.7, \
            "expected >=1.7x at 4 workers on WSQ, got %.2fx" % wsq_4w
    else:
        # A 1-core container cannot exhibit parallel speedup; record the
        # measured number and the reason the assertion is vacuous.
        report["speedup_assertion"] = (
            "skipped: machine has %d CPU(s); 4-worker fan-out cannot beat "
            "serial without parallel hardware (measured %.2fx)"
            % (cpus, wsq_4w))

    with open(ROOT_JSON, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    text = ("Parallel scaling — serial vs multiprocess rounds "
            "(%d CPU(s))\n\n" % cpus
            + format_table(
                ["workload", "backend", "wall s", "per-round s",
                 "speedup", "outcome"], rows)
            + "\n\n%s\n" % report["speedup_assertion"])
    write_result("parallel_scaling.txt", text)
