"""Differential-fuzzing throughput — cost profile of the oracle suite.

Runs a fixed 12-seed campaign and reports, per oracle-relevant phase,
where the time goes: programs/minute, exhaustively explored paths per
second, the violating-seed rate (how often the synthesis oracle is
exercised), and the worst single seed.  Written to
``BENCH_fuzz.json`` at the repository root and a readable table to
``benchmarks/results/fuzz_throughput.txt`` so later PRs can see whether
generator or oracle changes made the campaign cheaper or thinner.

The numbers are machine-dependent; the *shape* (violating rate,
inconclusive rate, path counts — all deterministic per seed range) is
not, and regressions in those indicate a generator or budget change,
not a slow machine.
"""

import json
import os
import platform
import time

import pytest

from common import format_table, write_result

from repro.fuzz import OracleConfig, run_campaign

pytestmark = [pytest.mark.slow, pytest.mark.fuzz]

ROOT_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_fuzz.json")

SEED = 0
ITERS = 12


def test_fuzz_campaign_throughput():
    per_seed = []

    def progress(iteration, program, report):
        per_seed.append(dict(
            seed=program.seed,
            threads=len(program.threads),
            statements=program.statement_count(),
            paths=report.paths,
            violating=bool(report.violating_models),
            inconclusive=len(report.inconclusive)))

    start = time.perf_counter()
    report = run_campaign(seed=SEED, iters=ITERS,
                          oracle_config=OracleConfig(),
                          progress=progress)
    elapsed = time.perf_counter() - start
    assert report.ok, report.failures

    worst = max(per_seed, key=lambda row: row["paths"])
    violating = sum(1 for row in per_seed if row["violating"])
    inconclusive = sum(row["inconclusive"] for row in per_seed)
    summary = dict(
        machine=dict(platform=platform.platform(),
                     cpu_count=os.cpu_count()),
        seed=SEED, iters=ITERS,
        duration_s=round(elapsed, 2),
        programs_per_minute=round(60 * ITERS / elapsed, 1),
        total_paths=report.paths,
        paths_per_second=round(report.paths / elapsed),
        pruned_branches=report.pruned,
        cache_hits=report.cache_hits,
        estimated_unreduced_paths=report.estimated_unreduced,
        path_reduction_ratio=round(
            report.estimated_unreduced / max(report.paths, 1), 1),
        violating_seeds=violating,
        inconclusive_explorations=inconclusive,
        worst_seed=worst,
        per_seed=per_seed)
    with open(ROOT_JSON, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)

    rows = [[str(row["seed"]), str(row["threads"]),
             str(row["statements"]), str(row["paths"]),
             "yes" if row["violating"] else "no",
             str(row["inconclusive"])]
            for row in per_seed]
    table = format_table(
        ["seed", "threads", "stmts", "paths", "violating", "inconcl."],
        rows)
    text = ("fuzz campaign: %d programs in %.1fs (%.1f/min), "
            "%d paths (%d/s), %d violating, %d inconclusive\n"
            "reduction: %d paths explored vs >=%d unreduced (%.1fx)\n\n%s\n"
            % (ITERS, elapsed, summary["programs_per_minute"],
               report.paths, summary["paths_per_second"],
               violating, inconclusive, report.paths,
               report.estimated_unreduced,
               summary["path_reduction_ratio"], table))
    write_result("fuzz_throughput.txt", text)

    # The deterministic shape: the skeleton planting must keep the
    # synthesis oracle exercised on a healthy fraction of seeds.
    assert violating >= ITERS // 4
