"""Table 2 — benchmark inventory and size statistics.

Regenerates the descriptive table of the 13 algorithms with our MiniC /
DIR size numbers next to the paper's C / LLVM-bytecode numbers, and
benchmarks front-end compilation speed.  A second section samples a few
benchmarks in check-only mode and reports the discarded-run counts
(timeouts/deadlocks) that the engine's :class:`CheckStats` now exposes —
the paper's "discarded executions" footnote, made measurable.
"""

from common import format_table, write_result
from paper_data import PAPER_SIZES

from repro.algorithms import ALGORITHMS
from repro.ir.passes.stats import module_stats
from repro.minic import compile_source
from repro.synth import SynthesisConfig, SynthesisEngine

#: Check-only sampling targets for the discard-rate section.
SAMPLED = ("chase_lev", "cilk_the", "msn_queue")
SAMPLE_RUNS = 80


def collect_stats():
    stats = {}
    for name, bundle in ALGORITHMS.items():
        module = compile_source(bundle.source, name)
        stats[name] = module_stats(module)
    return stats


def test_table2_stats(benchmark):
    stats = benchmark.pedantic(collect_stats, rounds=1, iterations=1)

    headers = ["algorithm", "src LOC", "(paper C)", "IR instrs",
               "(paper LLVM)", "stores", "(paper)", "CAS"]
    rows = []
    for name in ALGORITHMS:
        s = stats[name]
        paper = PAPER_SIZES[name]
        rows.append([name, s["source_loc"], paper[0], s["bytecode_loc"],
                     paper[1], s["insertion_points"], paper[2],
                     s["cas_count"]])
    sample_headers = ["algorithm", "runs", "usable", "violations",
                      "discarded"]
    sample_rows = []
    for name in SAMPLED:
        bundle = ALGORITHMS[name]
        engine = SynthesisEngine(SynthesisConfig(
            memory_model="pso", flush_prob=bundle.flush_prob["pso"],
            seed=11))
        check = engine.test_program(
            bundle.compile(), bundle.spec("memory_safety"),
            entries=bundle.entries, operations=bundle.operations,
            executions=SAMPLE_RUNS)
        assert check.runs == SAMPLE_RUNS
        assert check.usable == check.runs - check.discarded
        sample_rows.append([name, check.runs, check.usable,
                            check.violations, check.discarded])

    text = "Table 2 — algorithm sizes (ours vs paper)\n\n" + \
        format_table(headers, rows) + "\n\n" + \
        "Check-only sampling (PSO, %d runs): discarded executions\n\n" \
        % SAMPLE_RUNS + \
        format_table(sample_headers, sample_rows) + "\n"
    write_result("table2_stats.txt", text)

    # Shape assertions: the allocator is the largest benchmark by source
    # size, as in the paper (its lock-free core has no inlined lock
    # bodies, so lock-heavy benchmarks can exceed it in IR instructions);
    # every algorithm has candidate insertion points.
    assert len(stats) == 13
    allocator = stats["michael_allocator"]
    for name, s in stats.items():
        assert s["insertion_points"] >= 1, name
        if name != "michael_allocator":
            assert allocator["source_loc"] > s["source_loc"], name
    # CAS-based algorithms actually contain CAS.
    for name in ("chase_lev", "msn_queue", "harris_set",
                 "michael_allocator"):
        assert stats[name]["cas_count"] >= 1
