"""Table 3 — fences inferred per algorithm x specification x memory model.

The central result of the paper.  For every benchmark and every supported
specification we run the full synthesis pipeline on TSO and PSO and print
the inferred fence set next to the paper's cell.

Absolute line numbers differ (our MiniC sources are not the authors' C),
so the comparison target is the *shape*: which functions need fences,
which model triggers them, and where nothing is needed.
"""

import pytest

from common import describe, format_table, synthesize_bundle, write_result
from paper_data import PAPER_TABLE3

from repro.algorithms import ALGORITHMS

#: Cheaper budgets for the big sweep; tuned per-bundle flush probs apply.
K = 600
SEED = 7


def run_sweep():
    cells = {}
    for name, bundle in ALGORITHMS.items():
        for kind in bundle.supports:
            for model in ("tso", "pso"):
                result = synthesize_bundle(
                    name, model, kind, executions_per_round=K, seed=SEED)
                cells[(name, kind, model)] = result
    return cells


@pytest.fixture(scope="module")
def sweep():
    return run_sweep()


def test_table3_report(sweep, benchmark):
    # Timing: one representative synthesis run (Chase-Lev, PSO, SC).
    benchmark.pedantic(
        lambda: synthesize_bundle("chase_lev", "pso", "sc",
                                  executions_per_round=200, seed=3),
        rounds=1, iterations=1)

    headers = ["algorithm", "spec", "model", "measured fences",
               "paper (Table 3)"]
    rows = []
    for (name, kind, model), result in sorted(sweep.items()):
        paper = PAPER_TABLE3.get((name, kind, model), "n/a")
        rows.append([name, kind, model, describe(result), paper])
    text = ("Table 3 — inferred fences, measured vs paper\n"
            "(K=%d executions/round, seed=%d; line numbers are ours)\n\n"
            % (K, SEED)) + format_table(headers, rows) + "\n"
    write_result("table3_fences.txt", text)
    assert len(rows) >= 50


class TestShapeMatchesPaper:
    """The robust qualitative claims of Table 3."""

    def test_tso_subset_of_pso(self, sweep):
        # PSO demands at least as many fences as TSO for every cell.
        for name, bundle in ALGORITHMS.items():
            for kind in bundle.supports:
                tso = sweep[(name, kind, "tso")]
                pso = sweep[(name, kind, "pso")]
                if tso.outcome.value == "cannot_fix" or \
                        pso.outcome.value == "cannot_fix":
                    continue
                assert pso.fence_count >= tso.fence_count, (name, kind)

    def test_lock_based_need_nothing(self, sweep):
        for name in ("ms2_queue", "lazy_list"):
            for kind in ("memory_safety", "sc", "lin"):
                for model in ("tso", "pso"):
                    assert sweep[(name, kind, model)].fence_count == 0, \
                        (name, kind, model)

    def test_memory_safety_ineffective_for_wsqs(self, sweep):
        # Section 6.6: memory safety almost never triggers for the WSQs.
        for name in ("chase_lev", "cilk_the", "fifo_wsq", "lifo_wsq",
                     "anchor_wsq"):
            for model in ("tso", "pso"):
                assert sweep[(name, "memory_safety", model)].fence_count \
                    == 0, (name, model)

    def test_fifo_wsq_fence_free_on_tso_under_sc(self, sweep):
        assert sweep[("fifo_wsq", "sc", "tso")].fence_count == 0

    def test_chase_lev_core_fences(self, sweep):
        tso_sc = sweep[("chase_lev", "sc", "tso")]
        assert any(p.function == "take" for p in tso_sc.placements)
        pso_sc = sweep[("chase_lev", "sc", "pso")]
        functions = {p.function for p in pso_sc.placements}
        assert {"put", "take"} <= functions

    def test_allocator_tso_clean_pso_fenced(self, sweep):
        for kind in ("memory_safety", "sc", "lin"):
            assert sweep[("michael_allocator", kind, "tso")].fence_count \
                == 0, kind
            pso = sweep[("michael_allocator", kind, "pso")]
            assert any(p.function == "MallocFromNewSB"
                       for p in pso.placements), kind

    def test_iwsq_no_fences_on_tso(self, sweep):
        for name in ("fifo_iwsq", "lifo_iwsq", "anchor_iwsq"):
            assert sweep[(name, "memory_safety", "tso")].fence_count == 0
