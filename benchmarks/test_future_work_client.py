"""Section 6.6 future work — the pointer-payload client, realised.

The paper conjectures that storing freshly allocated pointers in the
queue and freeing them on fetch would make memory safety strong enough to
catch WSQ duplication bugs, and leaves the experiment as future work.
This bench runs it: the same Chase-Lev queue with value clients (memory
safety finds nothing) vs pointer clients (memory safety finds the SC-level
fences).
"""

from common import describe, format_table, synthesize_bundle, write_result

from repro.algorithms import CHASE_LEV_PTR
from repro.synth import SynthesisConfig, SynthesisEngine

K = 600
SEED = 7


def synthesize_ptr(model):
    config = SynthesisConfig(
        memory_model=model, flush_prob=CHASE_LEV_PTR.flush_prob[model],
        executions_per_round=K, max_rounds=10, seed=SEED)
    engine = SynthesisEngine(config)
    return engine.synthesize(
        CHASE_LEV_PTR.compile(), CHASE_LEV_PTR.spec("memory_safety"),
        entries=CHASE_LEV_PTR.entries,
        operations=CHASE_LEV_PTR.operations)


def test_future_work_pointer_client(benchmark):
    rows = []
    ptr_results = {}
    for model in ("tso", "pso"):
        plain = synthesize_bundle("chase_lev", model, "memory_safety",
                                  executions_per_round=K, seed=SEED)
        sc = synthesize_bundle("chase_lev", model, "sc",
                               executions_per_round=K, seed=SEED)
        ptr = synthesize_ptr(model)
        ptr_results[model] = ptr
        rows.append([model, describe(plain), describe(ptr), describe(sc)])

    benchmark.pedantic(lambda: synthesize_ptr("tso"),
                       rounds=1, iterations=1)

    text = ("Section 6.6 future work — pointer-payload client "
            "(Chase-Lev, K=%d)\n\n" % K
            + format_table(
                ["model", "memory safety (value client)",
                 "memory safety (pointer client)", "SC spec (value client)"],
                rows)
            + "\n\nPaper's conjecture: the pointer client makes memory "
              "safety catch duplicate returns.\nConfirmed: the pointer "
              "client recovers the SC-level fence set from crashes "
              "alone.\n")
    write_result("future_work_ptr_client.txt", text)

    # Memory safety finds nothing on the value client (Table 3)...
    plain_tso = synthesize_bundle("chase_lev", "tso", "memory_safety",
                                  executions_per_round=K, seed=SEED)
    assert plain_tso.fence_count == 0
    # ...but finds the take fence with pointer payloads.
    assert any(p.function == "take"
               for p in ptr_results["tso"].placements)
    assert any(p.function == "put"
               for p in ptr_results["pso"].placements)
