"""Section 6.4 — client quality as coverage.

"A good client should achieve good coverage; at the least, it would allow
for all program points in each method to be visited."  This bench
measures exactly that: the fraction of each algorithm's *operation*
instructions its clients execute across a sampling budget, per memory
model.
"""

from common import format_table, write_result

from repro.algorithms import ALGORITHMS
from repro.memory import make_model
from repro.sched import FlushDelayScheduler
from repro.vm.driver import run_execution

RUNS = 200
SEED = 3


def measure_coverage(bundle, model_name):
    module = bundle.compile()
    model = make_model(model_name)
    covered = set()
    for i in range(RUNS):
        entry = bundle.entries[i % len(bundle.entries)]
        scheduler = FlushDelayScheduler(
            seed=SEED + i, flush_prob=bundle.flush_prob[model_name])
        run_execution(module, model, scheduler, entry=entry,
                      operations=bundle.operations, coverage=covered)
    # Coverage of the algorithm's operations only (clients excluded).
    op_labels = {instr.label
                 for op in bundle.operations
                 for instr in module.function(op).body}
    helper_names = set(module.functions) - set(bundle.entries) \
        - set(bundle.operations)
    return len(covered & op_labels), len(op_labels), sorted(helper_names)


def test_client_coverage(benchmark):
    rows = []
    ratios = {}
    for name, bundle in ALGORITHMS.items():
        hit, total, _helpers = measure_coverage(bundle, "pso")
        ratio = hit / total
        ratios[name] = ratio
        rows.append([name, "%d/%d" % (hit, total), "%.0f%%" % (100 * ratio)])

    benchmark.pedantic(
        lambda: measure_coverage(ALGORITHMS["chase_lev"], "pso"),
        rounds=1, iterations=1)

    text = ("Section 6.4 — client coverage of operation code "
            "(%d runs per algorithm, PSO)\n\n" % RUNS
            + format_table(["algorithm", "op instructions hit",
                            "coverage"], rows)
            + "\n\nThe paper's client-quality criterion: clients should "
              "reach (nearly) all program points of each method.\n")
    write_result("client_coverage.txt", text)

    # Every algorithm's clients reach the overwhelming majority of its
    # operation code; unreached instructions are rare corner branches
    # (e.g. helping paths needing 3-way races).
    for name, ratio in ratios.items():
        assert ratio >= 0.75, (name, ratio)
    assert sum(ratios.values()) / len(ratios) >= 0.9
