"""Section 6.6 — fences vs specification strength.

Regenerates the paper's qualitative findings about the interplay of
specifications and fences:

* memory safety alone is (almost always) too weak to expose WSQ bugs;
* linearizability requires at least as many fences as SC;
* FIFO WSQ on TSO becomes fence-free when linearizability is weakened to
  SC — an algorithm "without fences on TSO";
* Cilk's THE queue is not linearizable at all (deterministic sequential
  spec), yet is SC — reproduced as a cannot_fix outcome vs a clean one.
"""

import pytest

from common import describe, format_table, synthesize_bundle, write_result

from repro.algorithms import ALGORITHMS
from repro.synth import SynthesisOutcome

K = 600
SEED = 7
SUBJECTS = ["chase_lev", "fifo_wsq", "lifo_wsq", "michael_allocator"]


@pytest.fixture(scope="module")
def grid():
    cells = {}
    for name in SUBJECTS:
        bundle = ALGORITHMS[name]
        for kind in bundle.supports:
            for model in ("tso", "pso"):
                cells[(name, kind, model)] = synthesize_bundle(
                    name, model, kind, executions_per_round=K, seed=SEED)
    return cells


def test_spec_comparison_report(grid, benchmark):
    benchmark.pedantic(
        lambda: synthesize_bundle("fifo_wsq", "tso", "sc",
                                  executions_per_round=150, seed=1),
        rounds=1, iterations=1)
    headers = ["algorithm", "model", "memory_safety", "sc", "lin"]
    rows = []
    for name in SUBJECTS:
        for model in ("tso", "pso"):
            row = [name, model]
            for kind in ("memory_safety", "sc", "lin"):
                cell = grid.get((name, kind, model))
                row.append(describe(cell) if cell else "n/a")
            rows.append(row)
    text = ("Section 6.6 — specification strength vs fences (K=%d)\n\n"
            % K) + format_table(headers, rows) + "\n"
    write_result("spec_comparison.txt", text)


def test_linearizability_needs_at_least_sc_fences(grid):
    for name in SUBJECTS:
        for model in ("tso", "pso"):
            sc = grid[(name, "sc", model)]
            lin = grid[(name, "lin", model)]
            if SynthesisOutcome.CANNOT_FIX in (sc.outcome, lin.outcome):
                continue
            assert lin.fence_count >= sc.fence_count, (name, model)


def test_memory_safety_weakest(grid):
    for name in SUBJECTS:
        for model in ("tso", "pso"):
            ms = grid[(name, "memory_safety", model)]
            sc = grid[(name, "sc", model)]
            if sc.outcome is SynthesisOutcome.CANNOT_FIX:
                continue
            assert ms.fence_count <= sc.fence_count, (name, model)


def test_fifo_wsq_tso_sc_fence_free(grid):
    assert grid[("fifo_wsq", "sc", "tso")].fence_count == 0
    # While PSO does require put fences under the same spec.
    assert grid[("fifo_wsq", "sc", "pso")].fence_count >= 1
