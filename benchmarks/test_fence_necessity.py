"""Necessity of the synthesized fences (the paper's minimality claim).

The engine promises *necessary* ordering constraints: it should neither
under-fence (violations remain) nor over-fence (a fence whose removal
stays violation-free was unnecessary).  This bench validates both
directions on Chase-Lev: the repaired program is clean, and removing any
single synthesized fence re-exposes violations.
"""

from common import format_table, synthesize_bundle, write_result

from repro.algorithms import ALGORITHMS
from repro.synth import SynthesisConfig, SynthesisEngine

NAME = "chase_lev"
MODEL = "pso"
SPEC = "sc"
K = 800
SEED = 7
CHECK_RUNS = 2500


def violations_of(program, seed=991):
    bundle = ALGORITHMS[NAME]
    engine = SynthesisEngine(SynthesisConfig(
        memory_model=MODEL, flush_prob=bundle.flush_prob[MODEL],
        seed=seed))
    _runs, violations, _ = engine.test_program(
        program, bundle.spec(SPEC), entries=bundle.entries,
        operations=bundle.operations, executions=CHECK_RUNS)
    return violations


def test_each_fence_is_necessary(benchmark):
    result = benchmark.pedantic(
        lambda: synthesize_bundle(NAME, MODEL, SPEC,
                                  executions_per_round=K, seed=SEED),
        rounds=1, iterations=1)
    assert result.outcome.value == "clean"
    assert result.fence_count >= 2  # F1 + F2

    rows = [["(none removed)", violations_of(result.program)]]
    assert rows[0][1] == 0, "repaired program must be clean"

    for placement in result.placements:
        ablated = result.program.clone()
        fn = ablated.function(placement.function)
        fn.remove(placement.fence_label)
        count = violations_of(ablated)
        rows.append(["removed %s %s" % (placement.location(),
                                        placement.kind.value), count])

    text = ("Fence necessity — Chase-Lev, PSO, SC spec "
            "(%d validation runs per variant)\n\n" % CHECK_RUNS
            + format_table(["variant", "violations"], rows)
            + "\nEvery synthesized fence is necessary: removing any one "
              "re-exposes violations.\n")
    write_result("fence_necessity.txt", text)

    for row in rows[1:]:
        assert row[1] > 0, "fence %s was not necessary" % row[0]
