"""The paper's reported results, transcribed for side-by-side comparison.

Table 3 of the paper, as (algorithm, spec, model) → human-readable fence
set.  "0" means no fences inferred; "-" means the property cannot be
satisfied (Cilk's THE under linearizability) or no specification was
available (iWSQ under SC/linearizability).
"""

#: (algorithm, spec, model) -> the paper's Table 3 cell.
PAPER_TABLE3 = {
    ("chase_lev", "memory_safety", "tso"): "0",
    ("chase_lev", "memory_safety", "pso"): "0",
    ("chase_lev", "sc", "tso"): "F1 (take)",
    ("chase_lev", "sc", "pso"): "F1 (take), F2 (put)",
    ("chase_lev", "lin", "tso"): "F1, F2",
    ("chase_lev", "lin", "pso"): "F1, F2, F3 (end of put)",
    ("cilk_the", "memory_safety", "tso"): "0",
    ("cilk_the", "memory_safety", "pso"): "0",
    ("cilk_the", "sc", "tso"): "(put,11:13) (take,5:7)",
    ("cilk_the", "sc", "pso"): "(put,11:13) (take,5:7) (steal,6:8)",
    ("cilk_the", "lin", "tso"): "- (not linearizable)",
    ("cilk_the", "lin", "pso"): "- (not linearizable)",
    ("fifo_iwsq", "memory_safety", "tso"): "0",
    ("fifo_iwsq", "memory_safety", "pso"):
        "(put,4:5) (put,5:-) (take,5:-)",
    ("lifo_iwsq", "memory_safety", "tso"): "0",
    ("lifo_iwsq", "memory_safety", "pso"): "(put,3:4) (take,4:-)",
    ("anchor_iwsq", "memory_safety", "tso"): "0",
    ("anchor_iwsq", "memory_safety", "pso"): "(put,3:4) (take,4:-)",
    ("fifo_wsq", "memory_safety", "tso"): "0",
    ("fifo_wsq", "memory_safety", "pso"): "0",
    ("fifo_wsq", "sc", "tso"): "0   <- headline: fence-free",
    ("fifo_wsq", "sc", "pso"): "(put,4:5) (put,5:-)",
    ("fifo_wsq", "lin", "tso"): "(put,4:5)",
    ("fifo_wsq", "lin", "pso"): "(put,4:5) (put,5:-)",
    ("lifo_wsq", "memory_safety", "tso"): "0",
    ("lifo_wsq", "memory_safety", "pso"): "0",
    ("lifo_wsq", "sc", "tso"): "0",
    ("lifo_wsq", "sc", "pso"): "(put,3:4)",
    ("lifo_wsq", "lin", "tso"): "0",
    ("lifo_wsq", "lin", "pso"): "(put,3:4)",
    ("anchor_wsq", "memory_safety", "tso"): "0",
    ("anchor_wsq", "memory_safety", "pso"): "0",
    ("anchor_wsq", "sc", "tso"): "0",
    ("anchor_wsq", "sc", "pso"): "(put,3:4)",
    ("anchor_wsq", "lin", "tso"): "0",
    ("anchor_wsq", "lin", "pso"): "(put,3:4)",
    ("ms2_queue", "memory_safety", "tso"): "0",
    ("ms2_queue", "memory_safety", "pso"): "0",
    ("ms2_queue", "sc", "tso"): "0",
    ("ms2_queue", "sc", "pso"): "0",
    ("ms2_queue", "lin", "tso"): "0",
    ("ms2_queue", "lin", "pso"): "0",
    ("msn_queue", "memory_safety", "tso"): "0",
    ("msn_queue", "memory_safety", "pso"): "0",
    ("msn_queue", "sc", "tso"): "0",
    ("msn_queue", "sc", "pso"): "(enqueue,E3:E4)",
    ("msn_queue", "lin", "tso"): "0",
    ("msn_queue", "lin", "pso"): "(enqueue,E3:E4)",
    ("lazy_list", "memory_safety", "tso"): "0",
    ("lazy_list", "memory_safety", "pso"): "0",
    ("lazy_list", "sc", "tso"): "0",
    ("lazy_list", "sc", "pso"): "0",
    ("lazy_list", "lin", "tso"): "0",
    ("lazy_list", "lin", "pso"): "0",
    ("harris_set", "memory_safety", "tso"): "0",
    ("harris_set", "memory_safety", "pso"): "0",
    ("harris_set", "sc", "tso"): "0",
    ("harris_set", "sc", "pso"): "(insert,8:9)",
    ("harris_set", "lin", "tso"): "0",
    ("harris_set", "lin", "pso"): "(insert,8:9)",
    ("michael_allocator", "memory_safety", "tso"): "0",
    ("michael_allocator", "memory_safety", "pso"):
        "(MFNSB,11:13) (DescAlloc,5:8) (DescRetire,2:4)",
    ("michael_allocator", "sc", "tso"): "0",
    ("michael_allocator", "sc", "pso"):
        "(MFNSB,11:13) (DescAlloc,5:8) (DescRetire,2:4) (free,16:18)",
    ("michael_allocator", "lin", "tso"): "0",
    ("michael_allocator", "lin", "pso"):
        "(MFNSB,11:13) (DescAlloc,5:8) (DescRetire,2:4) (free,16:18)",
}

#: Table 3 size columns from the paper (source LOC, bytecode LOC,
#: insertion points) — the authors' C/LLVM numbers, for scale comparison.
PAPER_SIZES = {
    "chase_lev": (150, 696, 96),
    "cilk_the": (167, 778, 105),
    "fifo_iwsq": (149, 686, 102),
    "lifo_iwsq": (152, 702, 101),
    "anchor_iwsq": (162, 843, 107),
    "fifo_wsq": (143, 789, 91),
    "lifo_wsq": (136, 693, 92),
    "anchor_wsq": (152, 863, 101),
    "ms2_queue": (62, 351, 46),
    "msn_queue": (81, 426, 43),
    "lazy_list": (121, 613, 68),
    "harris_set": (155, 695, 86),
    "michael_allocator": (771, 2699, 244),
}

#: Fig. 4 reference points (Cilk THE, PSO, SC): the paper needs ~1000
#: executions per round (<= 4 rounds) to infer all three fences, and
#: ~200,000 executions when restricted to a single round — a ~65x gap.
PAPER_FIG4 = {
    "multi_round_k": 1000,
    "one_round_k": 200_000,
    "fence_target": 3,
}

#: Fig. 5 reference shape (Cilk THE, PSO, SC): flush probability below
#: ~0.4 inflates the fence count with redundant fences; above ~0.8 the
#: run behaves almost sequentially consistent and misses fences.
PAPER_FIG5 = {
    "low_threshold": 0.4,
    "high_threshold": 0.8,
    "max_predicates_observed": 36,
}
