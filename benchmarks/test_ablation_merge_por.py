"""Ablations — the fence-merge pass and the partial-order reduction.

* **Merge pass** (paper §5.2 "Enforcing"): re-run synthesis with the
  redundant-fence merge disabled and count how many extra fences survive.
* **POR** (paper §5.2 "Scheduler"): the local-access partial-order
  reduction trades scheduling points for speed; measure per-execution
  steps and wall time with it on and off, and confirm it does not change
  what the engine infers.
"""

import time

from common import format_table, synthesize_bundle, write_result

from repro.algorithms import ALGORITHMS
from repro.memory import make_model
from repro.sched import FlushDelayScheduler
from repro.synth import SynthesisConfig, SynthesisEngine
from repro.vm import VM

SEED = 7


class TestMergeAblation:
    def run_with_merge(self, merge):
        bundle = ALGORITHMS["michael_allocator"]
        config = SynthesisConfig(
            memory_model="pso", flush_prob=bundle.flush_prob["pso"],
            executions_per_round=500, max_rounds=12, seed=SEED,
            merge_fences=merge)
        engine = SynthesisEngine(config)
        return engine.synthesize(bundle.compile(),
                                 bundle.spec("memory_safety"),
                                 entries=bundle.entries,
                                 operations=bundle.operations)

    def test_merge_reduces_or_equals_fence_count(self, benchmark):
        with_merge = benchmark.pedantic(
            lambda: self.run_with_merge(True), rounds=1, iterations=1)
        without_merge = self.run_with_merge(False)
        text = ("Ablation — redundant-fence merge pass "
                "(Michael's allocator, PSO, memory safety)\n\n"
                "merge enabled : %d fences  %s\n"
                "merge disabled: %d fences  %s\n"
                % (with_merge.fence_count,
                   with_merge.fence_locations(),
                   without_merge.fence_count,
                   without_merge.fence_locations()))
        write_result("ablation_merge.txt", text)
        assert with_merge.fence_count <= without_merge.fence_count
        assert with_merge.outcome.value == "clean"


class TestPorAblation:
    def measure(self, por, runs=150):
        bundle = ALGORITHMS["chase_lev"]
        module = bundle.compile()
        start = time.perf_counter()
        total_steps = 0
        for i in range(runs):
            model = make_model("pso")
            vm = VM(module, model, entry=bundle.entries[i % len(bundle.entries)],
                    operations=bundle.operations)
            FlushDelayScheduler(seed=SEED + i, flush_prob=0.2,
                                por=por).run(vm)
            total_steps += vm.steps
        elapsed = time.perf_counter() - start
        return total_steps, elapsed

    def test_por_preserves_inference(self, benchmark):
        steps_on, time_on = benchmark.pedantic(
            lambda: self.measure(True), rounds=1, iterations=1)
        steps_off, time_off = self.measure(False)

        def infer(por, flush_prob):
            bundle = ALGORITHMS["chase_lev"]
            config = SynthesisConfig(
                memory_model="pso", flush_prob=flush_prob,
                executions_per_round=600, max_rounds=10, seed=SEED,
                por=por)
            engine = SynthesisEngine(config)
            result = engine.synthesize(bundle.compile(), bundle.spec("sc"),
                                       entries=bundle.entries,
                                       operations=bundle.operations)
            return {p.function for p in result.placements}

        fences_on = infer(True, 0.2)
        fences_off = infer(False, 0.2)
        fences_off_tuned = infer(False, 0.05)
        rows = [
            ["POR on, p=0.2", steps_on, "%.3fs" % time_on,
             sorted(fences_on)],
            ["POR off, p=0.2", steps_off, "%.3fs" % time_off,
             sorted(fences_off)],
            ["POR off, p=0.05", "-", "-", sorted(fences_off_tuned)],
        ]
        text = ("Ablation — local-access partial-order reduction "
                "(Chase-Lev, PSO)\n\n"
                + format_table(["config", "steps/150 runs", "time",
                                "fenced functions (SC)"], rows)
                + "\n\nWithout POR every local instruction is a "
                "scheduling point, so at equal flush probability buffers "
                "drain much faster relative to program progress and "
                "violations hide; the probability must be re-tuned "
                "downward.\n")
        write_result("ablation_por.txt", text)
        # POR exposes the core inference at the paper's tuned probability;
        # disabling it loses coverage at the same setting...
        assert "put" in fences_on
        assert len(fences_off) <= len(fences_on)
        # ...and a re-tuned (much lower) probability recovers it.
        assert "put" in fences_off_tuned
        assert steps_on > 0 and steps_off > 0
