"""Tool performance: end-to-end synthesis time per benchmark.

Not a paper table (the paper reports no timing figures), but the natural
"how long does the tool take" companion: one full PSO synthesis run per
algorithm under its strongest supported specification, timed with
pytest-benchmark.
"""

import pytest

from common import synthesize_bundle, write_result

from repro.algorithms import ALGORITHMS

K = 300
SEED = 7

_RESULTS = {}


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_synthesis_time(benchmark, name):
    bundle = ALGORITHMS[name]
    kind = bundle.supports[-1]  # strongest spec the bundle supports

    def run():
        return synthesize_bundle(name, "pso", kind,
                                 executions_per_round=K, seed=SEED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = (kind, result)
    assert result.total_executions >= K


def test_zz_timing_report():
    """Write the collected outcomes (runs after the parametrized tests)."""
    if not _RESULTS:
        pytest.skip("timing tests did not run")
    lines = ["Tool performance — one PSO synthesis run per benchmark "
             "(K=%d)\n" % K]
    for name in sorted(_RESULTS):
        kind, result = _RESULTS[name]
        lines.append("%-18s %-14s %-10s %5d executions, %d fences"
                     % (name, kind, result.outcome.value,
                        result.total_executions, result.fence_count))
    write_result("timing.txt", "\n".join(lines) + "\n")
