"""Extra algorithms — fences for Dekker, Peterson and the Treiber stack.

Not in the paper's Table 2, but the classic fence-demanding algorithms:
Dekker/Peterson are *the* store-load-fence clients (each thread raises a
flag and must then really see the other's flag), and Treiber's stack is
the minimal publication-fence client on PSO.
"""

from common import describe, format_table, write_result

from repro.algorithms import DEKKER, PETERSON, TREIBER_STACK
from repro.synth import SynthesisConfig, SynthesisEngine

SEED = 7


def synthesize(bundle, model, k=1000):
    config = SynthesisConfig(
        memory_model=model, flush_prob=bundle.flush_prob[model],
        executions_per_round=k, max_rounds=14, seed=SEED,
        max_steps=5000)
    engine = SynthesisEngine(config)
    return engine.synthesize(bundle.compile(),
                             bundle.spec(bundle.supports[-1]),
                             entries=bundle.entries,
                             operations=bundle.operations)


def test_extras_fences(benchmark):
    rows = []
    results = {}
    for bundle in (DEKKER, PETERSON, TREIBER_STACK):
        for model in ("tso", "pso"):
            result = synthesize(bundle, model)
            results[(bundle.name, model)] = result
            rows.append([bundle.name, model, bundle.supports[-1],
                         describe(result)])

    benchmark.pedantic(lambda: synthesize(DEKKER, "tso", k=300),
                       rounds=1, iterations=1)

    text = ("Extra algorithms — inferred fences (K=1000, seed %d)\n\n"
            % SEED + format_table(
                ["algorithm", "model", "spec", "fences"], rows) + "\n")
    write_result("extras_fences.txt", text)

    # Dekker/Peterson: store-load fences in both entry protocols on TSO.
    for name in ("dekker", "peterson"):
        placements = results[(name, "tso")].placements
        assert {p.function for p in placements} >= {"enter0", "enter1"}
    # Treiber: fence-free on TSO, publication fence in push on PSO.
    assert results[("treiber_stack", "tso")].fence_count == 0
    assert any(p.function == "push"
               for p in results[("treiber_stack", "pso")].placements)
