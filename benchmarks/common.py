"""Shared helpers for the benchmark harness.

Every benchmark writes its regenerated table/figure to
``benchmarks/results/<name>.txt`` so the artifacts survive pytest's
output capturing; the same text is also printed (visible with ``-s``).
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.algorithms import ALGORITHMS
from repro.synth import SynthesisConfig, SynthesisEngine, SynthesisResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text)
    print(text)
    return path


def synthesize_bundle(name: str, model: str, kind: str,
                      executions_per_round: int = 800,
                      max_rounds: int = 12, seed: int = 7,
                      flush_prob: Optional[float] = None) -> SynthesisResult:
    """Run the engine on a named benchmark with its tuned parameters."""
    bundle = ALGORITHMS[name]
    if flush_prob is None:
        flush_prob = bundle.flush_prob[model]
    config = SynthesisConfig(
        memory_model=model, flush_prob=flush_prob,
        executions_per_round=executions_per_round,
        max_rounds=max_rounds, seed=seed)
    engine = SynthesisEngine(config)
    return engine.synthesize(bundle.compile(), bundle.spec(kind),
                             entries=bundle.entries,
                             operations=bundle.operations)


def describe(result: SynthesisResult) -> str:
    """One-cell description of a synthesis outcome (Table 3 style)."""
    if result.outcome.value == "cannot_fix":
        return "- (cannot satisfy)"
    locations = result.fence_locations()
    return " ".join(locations) if locations else "0"


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [max(len(str(row[i])) for row in [headers] + rows)
              for i in range(len(headers))]
    lines = []
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
