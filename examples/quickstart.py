#!/usr/bin/env python
"""Quickstart: infer the fences of the Chase-Lev work-stealing deque.

This reproduces the paper's motivating example (Section 2): run the
de-fenced Chase-Lev queue under TSO and PSO, let the engine expose
sequential-consistency violations with the flush-delaying scheduler, and
read back the synthesized fences:

* F1 — a store-load fence in ``take`` between the tail decrement and the
  head read (needed already on TSO);
* F2 — a store-store fence in ``put`` between the task store and the tail
  publish (needed on PSO).

Run:  python examples/quickstart.py
"""

from repro import infer_fences


def main():
    for model in ("tso", "pso"):
        print("=" * 60)
        print("Chase-Lev work-stealing queue on %s (spec: operation-level "
              "sequential consistency)" % model.upper())
        print("=" * 60)
        result = infer_fences("chase_lev", memory_model=model, spec="sc",
                              executions_per_round=400, seed=7)
        print("outcome: %s after %d rounds / %d executions"
              % (result.outcome.value, len(result.rounds),
                 result.total_executions))
        for round_report in result.rounds:
            print("  round %d: %d violations, %d distinct predicates, "
                  "%d fences inserted"
                  % (round_report.index, round_report.violations,
                     round_report.distinct_predicates,
                     len(round_report.inserted)))
        if result.placements:
            print("synthesized fences:")
            for placement in result.placements:
                print("  %s  kind=%s  (from predicate %r)"
                      % (placement.location(), placement.kind.value,
                         placement.predicate))
        else:
            print("no fences needed")
        print()


if __name__ == "__main__":
    main()
