#!/usr/bin/env python
"""Infer fences for your own algorithm: a Treiber stack written in MiniC.

Demonstrates the full user workflow on code the library has never seen:

1. write the concurrent algorithm + clients in MiniC;
2. compile to DIR;
3. give the engine a sequential specification (here the library's
   ``StackSpec``) and a specification strength;
4. synthesize fences on PSO and validate the repaired program.

The Treiber stack's push initialises a node and publishes it with CAS;
under PSO the initialising stores can be overtaken by the publication —
the engine finds the store-store fence in push.

Run:  python examples/custom_algorithm.py
"""

from repro.minic import compile_source
from repro.spec import SequentialConsistencySpec, StackSpec
from repro.synth import SynthesisConfig, SynthesisEngine

TREIBER_STACK = """
// Treiber's lock-free stack.
const EMPTY = 0 - 1;

struct Node {
  int value;
  struct Node* next;
};

struct Node* Top;

void push(int v) {
  struct Node* node = pagealloc(sizeof(struct Node));
  node->value = v;
  while (1) {
    struct Node* top = Top;
    node->next = top;
    if (cas(&Top, top, node)) {
      return;
    }
  }
}

int pop() {
  while (1) {
    struct Node* top = Top;
    if (top == 0) {
      return EMPTY;
    }
    struct Node* next = top->next;
    if (cas(&Top, top, next)) {
      return top->value;
    }
  }
  return EMPTY;
}

// ---- clients ----------------------------------------------------------

void worker() { pop(); push(30); pop(); }

int client0() {
  push(10);
  int tid = fork(worker);
  push(11);
  pop();
  pop();
  join(tid);
  return 0;
}

int client1() {
  int tid = fork(worker);
  push(20);
  push(21);
  pop();
  join(tid);
  return 0;
}
"""


def main():
    module = compile_source(TREIBER_STACK, "treiber_stack")
    print("compiled: %d IR instructions, %d candidate insertion points"
          % (module.instruction_count(), module.store_count()))

    spec = SequentialConsistencySpec(StackSpec())
    config = SynthesisConfig(memory_model="pso", flush_prob=0.3,
                             executions_per_round=500, max_rounds=10,
                             seed=11)
    engine = SynthesisEngine(config)
    result = engine.synthesize(module, spec,
                               entries=("client0", "client1"),
                               operations=("push", "pop"))

    print("outcome: %s (%d executions)"
          % (result.outcome.value, result.total_executions))
    for placement in result.placements:
        print("  fence %s kind=%s" % (placement.location(),
                                      placement.kind.value))

    # Validate: the repaired stack no longer violates SC on PSO.
    checker = SynthesisEngine(SynthesisConfig(
        memory_model="pso", flush_prob=0.3, seed=999))
    runs, violations, example = checker.test_program(
        result.program, spec, entries=("client0", "client1"),
        operations=("push", "pop"), executions=500)
    print("validation: %d violations in %d runs" % (violations, runs))
    if violations:
        print("  e.g.", example)


if __name__ == "__main__":
    main()
