#!/usr/bin/env python
"""The full tool workflow on one program, end to end.

A guided tour: write a buggy concurrent MiniC program, then

1. **explore** — enumerate its schedules exhaustively per memory model to
   see exactly which outcomes relaxation adds;
2. **check** — sample executions and count specification violations;
3. **synthesize** — run the dynamic fence-inference engine;
4. **annotate** — print the source with the inserted fences;
5. **replay** — reproduce one of the recorded violating executions on the
   original program, and show it is gone on the repaired one.

Run:  python examples/full_workflow.py [--workers N]

``--workers`` fans the sampling/synthesis rounds out to N worker
processes (0 = one per CPU); the results are identical to the serial run.
"""

import argparse

from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import explore
from repro.spec import MemorySafetySpec
from repro.synth import (
    SynthesisConfig,
    SynthesisEngine,
    annotate_source,
    summarize,
)
from repro.vm.driver import run_execution

PROGRAM = """
// A seqlock-flavoured publisher: VERSION should only be odd while the
// payload is mid-update.  Without fences, PSO lets the version bump
// overtake the payload stores.
int VERSION;
int PAYLOAD_A;
int PAYLOAD_B;

void reader() {
  while (VERSION < 2) {}
  assert(PAYLOAD_A == 7 && PAYLOAD_B == 9);
}

int main() {
  int t = fork(reader);
  VERSION = 1;
  PAYLOAD_A = 7;
  PAYLOAD_B = 9;
  VERSION = 2;
  join(t);
  return 0;
}
"""


def step(title):
    print()
    print("=" * 66)
    print(title)
    print("=" * 66)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: serial; "
                             "0 = one per CPU)")
    args = parser.parse_args(argv)
    module = compile_source(PROGRAM, "seqlock_demo")

    step("1. exhaustive exploration (bounded variant)")
    # The spinning reader makes full enumeration unbounded, so explore a
    # snapshot variant for the exact picture.
    bounded = compile_source(PROGRAM.replace(
        "while (VERSION < 2) {}",
        "if (VERSION < 2) { return; }"), "seqlock_bounded")
    for model in ("sc", "pso"):
        result = explore(bounded, model, outcome_fn=lambda vm: (),
                         max_paths=30000)
        print("%-4s: %5d paths, %d distinct violations"
              % (model.upper(), result.paths, len(result.violations)))
        for violation in sorted(result.violations)[:2]:
            print("      %s" % violation[:90])

    step("2. sampling check (PSO, no repair)")
    engine = SynthesisEngine(SynthesisConfig(
        memory_model="pso", flush_prob=0.3, executions_per_round=400,
        seed=3, workers=args.workers))
    stats = engine.test_program(module, MemorySafetySpec())
    print("%d violations in %d sampled runs (%d discarded)"
          % (stats.violations, stats.runs, stats.discarded))
    print("e.g. %s" % stats.example)

    step("3. dynamic fence synthesis")
    result = engine.synthesize(module, MemorySafetySpec())
    print(summarize(result))

    step("4. annotated source")
    print(annotate_source(result))

    step("5. witness replay")
    witness = result.witnesses[0]
    print("replaying %r" % witness)
    on_original = run_execution(module, make_model("pso"),
                                witness.scheduler(), entry=witness.entry)
    on_repaired = run_execution(result.program, make_model("pso"),
                                witness.scheduler(), entry=witness.entry)
    print("original program : %s" % on_original.status.value)
    print("repaired program : %s" % on_repaired.status.value)
    assert on_original.crashed and not on_repaired.crashed


if __name__ == "__main__":
    main()
