#!/usr/bin/env python
"""Specification strength vs. required fences (paper Section 6.6).

For one algorithm, compare the fences inferred under the three
specification strengths the paper studies — memory safety,
operation-level sequential consistency, and linearizability — on both
TSO and PSO.  The paper's observations to look for:

* memory safety alone is almost never strong enough for the WSQs;
* linearizability generally demands at least as many fences as SC;
* FIFO WSQ on TSO: weakening linearizability to SC removes *all* fences.

Run:  python examples/spec_comparison.py [algorithm]
"""

import sys

from repro.algorithms import ALGORITHMS
from repro.synth import SynthesisConfig, SynthesisEngine


def fences_for(bundle, model, kind, seed=7):
    config = SynthesisConfig(
        memory_model=model, flush_prob=bundle.flush_prob[model],
        executions_per_round=400, max_rounds=10, seed=seed)
    engine = SynthesisEngine(config)
    result = engine.synthesize(bundle.compile(), bundle.spec(kind),
                               entries=bundle.entries,
                               operations=bundle.operations)
    if result.outcome.value == "cannot_fix":
        return "- (not satisfiable)"
    locations = result.fence_locations()
    return "; ".join(locations) if locations else "0"


def main():
    names = sys.argv[1:] or ["fifo_wsq", "chase_lev"]
    for name in names:
        bundle = ALGORITHMS[name]
        print("=" * 72)
        print("%s — %s" % (name, bundle.description))
        print("=" * 72)
        for model in ("tso", "pso"):
            for kind in bundle.supports:
                fences = fences_for(bundle, model, kind)
                print("  %-4s %-16s %s" % (model, kind, fences))
        print()


if __name__ == "__main__":
    main()
