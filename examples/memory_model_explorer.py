#!/usr/bin/env python
"""Explore relaxed-memory behaviours with classic litmus tests.

Runs the two canonical litmus tests many times under SC, TSO and PSO and
tabulates the observed outcomes:

* **SB** (store buffering / Dekker): both threads store then load the
  other's flag.  ``r1 = r2 = 0`` is impossible under SC, appears under
  TSO and PSO (loads bypass buffered stores).
* **MP** (message passing): writer stores DATA then FLAG; reader spins on
  FLAG then loads DATA.  ``DATA = 0`` at the reader is impossible under
  SC *and* TSO (stores stay ordered), appears under PSO only.

This is the behaviour matrix that motivates the whole fence-synthesis
problem.  Run:  python examples/memory_model_explorer.py
"""

from collections import Counter

from repro.memory import make_model
from repro.minic import compile_source
from repro.sched import FlushDelayScheduler
from repro.vm import VM

SB = """
int X; int Y;
int R1; int R2;

void t1() {
  X = 1;
  R1 = Y;
}

int main() {
  int t = fork(t1);
  Y = 1;
  R2 = X;
  join(t);
  return 0;
}
"""

MP = """
int DATA; int FLAG;
int OUT;

void reader() {
  while (FLAG == 0) {}
  OUT = DATA;
}

int main() {
  int t = fork(reader);
  DATA = 1;
  FLAG = 1;
  join(t);
  return 0;
}
"""


def observe(source, globals_to_read, runs=400, flush_prob=0.25):
    module = compile_source(source)
    table = {}
    for model_name in ("sc", "tso", "pso"):
        outcomes = Counter()
        for seed in range(runs):
            vm = VM(module, make_model(model_name))
            FlushDelayScheduler(seed=seed, flush_prob=flush_prob).run(vm)
            values = tuple(vm.memory.read(vm.memory.global_addr[g])
                           for g in globals_to_read)
            outcomes[values] += 1
        table[model_name] = outcomes
    return table


def report(title, globals_to_read, table, forbidden):
    print("=" * 64)
    print(title)
    print("=" * 64)
    header = ", ".join(globals_to_read)
    for model_name, outcomes in table.items():
        print("%s:" % model_name.upper())
        for values, count in sorted(outcomes.items()):
            marker = "   <-- relaxed behaviour" if values in forbidden else ""
            print("   (%s) = %-10s x%d%s"
                  % (header, values, count, marker))
    print()


def main():
    sb = observe(SB, ("R1", "R2"))
    report("SB / Dekker: X=1; r1=Y  ||  Y=1; r2=X", ("R1", "R2"), sb,
           forbidden={(0, 0)})
    assert (0, 0) not in sb["sc"], "SC must forbid r1=r2=0"

    mp = observe(MP, ("OUT",))
    report("MP / message passing: DATA=1; FLAG=1  ||  spin(FLAG); OUT=DATA",
           ("OUT",), mp, forbidden={(0,)})
    assert (0,) not in mp["sc"] and (0,) not in mp["tso"], \
        "only PSO may lose the data/flag ordering"

    print("Summary: SB breaks on TSO and PSO; MP breaks only on PSO — "
          "matching the models' allowed reorderings.")


if __name__ == "__main__":
    main()
