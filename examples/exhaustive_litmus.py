#!/usr/bin/env python
"""Exact memory-model semantics via exhaustive schedule enumeration.

Where `memory_model_explorer.py` samples schedules randomly, this example
*enumerates* them: the stateless DFS explorer visits every interleaving
and flush ordering of bounded litmus tests and prints the exact outcome
sets each memory model admits — the ground truth the random scheduler is
sampling from.

Run:  python examples/exhaustive_litmus.py
"""

from repro.minic import compile_source
from repro.sched import explore

SB = """
int X; int Y;
int t1() { X = 1; int r = Y; return r; }
int main() {
  int t = fork(t1);
  Y = 1;
  int r = X;
  join(t);
  return r;
}
"""

MP = """
int D; int F;
int reader() {
  if (F == 1) { return D; }
  return 9;        // flag not seen yet
}
int main() {
  int t = fork(reader);
  D = 1; F = 1;
  join(t);
  return 0;
}
"""


def thread_results(vm):
    return tuple(vm.threads[tid].result for tid in sorted(vm.threads))


def show(title, source, legend):
    print("=" * 64)
    print(title)
    print("=" * 64)
    module = compile_source(source)
    for model in ("sc", "tso", "pso"):
        result = explore(module, model, outcome_fn=thread_results)
        status = "exact" if result.complete else "budget hit"
        outcomes = ", ".join(str(o) for o in sorted(result.outcomes))
        print("%-4s (%5d paths, %s): %s"
              % (model.upper(), result.paths, status, outcomes))
    print(legend)
    print()


def main():
    show("SB / Dekker — outcomes are (main's read of X, t1's read of Y)",
         SB,
         "(0, 0) is the store-buffering relaxation: forbidden under SC,\n"
         "admitted by TSO and PSO.")
    show("MP / message passing — outcomes are (0, reader's result)",
         MP,
         "(0, 0) means the reader saw the flag but stale data: only PSO\n"
         "(store-store reordering) admits it; 9 = flag not yet visible.")


if __name__ == "__main__":
    main()
